//! Property-based tests of the d/stream core invariants, driving the full
//! stack with arbitrary shapes:
//!
//! * **roundtrip identity** — any collection of variable-sized elements,
//!   written under any (nprocs, distribution) and read back with `read`
//!   under any other (nprocs, distribution), is reproduced exactly,
//!   element-for-element;
//! * **unsorted multiset equality** — `unsortedRead` delivers exactly the
//!   written elements, each once, element-atomically;
//! * **interleaving law** — k inserts before one write extract in the
//!   same order, per element, regardless of how many inserts there were;
//! * **size-table consistency** — the self-describing file's recorded
//!   sizes always sum to the data region's length (checked implicitly:
//!   corrupt sums fail `read`);
//! * **decode totality** — no truncation or bit-flip of a valid file can
//!   panic or hang the reader: `IStream::open`/`read`, `inspect_bytes`
//!   and `recovery_scan` return a value or a typed error on *any* damaged
//!   prefix.

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::{IStream, OStream};
use dstreams::machine::{Machine, MachineConfig};
use dstreams::pfs::Pfs;
use dstreams_core::impl_stream_data;
use proptest::prelude::*;

#[derive(Debug, Default, Clone, PartialEq)]
struct Blob {
    n: i64,
    payload: Vec<u8>,
    tag: f64,
}

impl_stream_data!(Blob {
    prim n,
    slice payload: u8 [n],
    prim tag,
});

fn blob_for(gid: usize, seed: u8, size_class: usize) -> Blob {
    // Sizes vary per element, including empty payloads.
    let n = (gid * 7 + seed as usize) % (size_class + 1);
    Blob {
        n: n as i64,
        payload: (0..n)
            .map(|k| (gid as u8).wrapping_add(k as u8) ^ seed)
            .collect(),
        tag: gid as f64 * 1.5 + seed as f64,
    }
}

/// A valid two-record image (built once), the damage corpus for the
/// decode-totality property below.
fn base_image() -> &'static [u8] {
    use std::sync::OnceLock;
    static BASE: OnceLock<Vec<u8>> = OnceLock::new();
    BASE.get_or_init(|| {
        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        let mut out = Machine::run(MachineConfig::functional(1), move |ctx| {
            let layout = Layout::dense(6, 1, DistKind::Block).unwrap();
            let mut s = OStream::create(ctx, &p, &layout, "base").unwrap();
            for rec in 0..2u8 {
                let g = Collection::new(ctx, layout.clone(), |i| blob_for(i, rec, 5)).unwrap();
                s.insert_collection(&g).unwrap();
                s.write().unwrap();
            }
            s.close().unwrap();
            let fh = p
                .open(false, "base", dstreams::pfs::OpenMode::Read)
                .unwrap();
            let mut bytes = vec![0u8; fh.len() as usize];
            fh.read_at(ctx, 0, &mut bytes).unwrap();
            bytes
        })
        .unwrap();
        out.pop().unwrap()
    })
}

fn dist_strategy() -> impl Strategy<Value = DistKind> {
    prop_oneof![
        Just(DistKind::Block),
        Just(DistKind::Cyclic),
        (1usize..5).prop_map(DistKind::BlockCyclic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn sorted_roundtrip_is_identity_across_any_shapes(
        n in 0usize..40,
        wprocs in 1usize..6,
        rprocs in 1usize..6,
        wkind in dist_strategy(),
        rkind in dist_strategy(),
        seed in any::<u8>(),
        size_class in 0usize..30,
    ) {
        let pfs = Pfs::in_memory(wprocs.max(rprocs));

        let p = pfs.clone();
        Machine::run(MachineConfig::functional(wprocs), move |ctx| {
            let layout = Layout::dense(n, wprocs, wkind).unwrap();
            let g = Collection::new(ctx, layout.clone(), |i| blob_for(i, seed, size_class))
                .unwrap();
            let mut s = OStream::create(ctx, &p, &layout, "prop").unwrap();
            s.insert_collection(&g).unwrap();
            s.write().unwrap();
            s.close().unwrap();
        })
        .unwrap();

        let p = pfs.clone();
        Machine::run(MachineConfig::functional(rprocs), move |ctx| {
            let layout = Layout::dense(n, rprocs, rkind).unwrap();
            let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
            let mut r = IStream::open(ctx, &p, &layout, "prop").unwrap();
            r.read().unwrap();
            r.extract_collection(&mut g).unwrap();
            r.close().unwrap();
            for (gid, e) in g.iter() {
                assert_eq!(e, &blob_for(gid, seed, size_class), "element {gid}");
            }
        })
        .unwrap();
    }

    #[test]
    fn unsorted_read_is_a_permutation_of_the_written_elements(
        n in 0usize..40,
        wprocs in 1usize..6,
        rprocs in 1usize..6,
        wkind in dist_strategy(),
        rkind in dist_strategy(),
        seed in any::<u8>(),
    ) {
        let pfs = Pfs::in_memory(wprocs.max(rprocs));
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(wprocs), move |ctx| {
            let layout = Layout::dense(n, wprocs, wkind).unwrap();
            let g = Collection::new(ctx, layout.clone(), |i| blob_for(i, seed, 12)).unwrap();
            let mut s = OStream::create(ctx, &p, &layout, "uprop").unwrap();
            s.insert_collection(&g).unwrap();
            s.write().unwrap();
            s.close().unwrap();
        })
        .unwrap();

        let p = pfs.clone();
        let collected = Machine::run(MachineConfig::functional(rprocs), move |ctx| {
            let layout = Layout::dense(n, rprocs, rkind).unwrap();
            let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
            let mut r = IStream::open(ctx, &p, &layout, "uprop").unwrap();
            r.unsorted_read().unwrap();
            r.extract_collection(&mut g).unwrap();
            r.close().unwrap();
            g.local().to_vec()
        })
        .unwrap();

        let mut got: Vec<Blob> = collected.into_iter().flatten().collect();
        let mut want: Vec<Blob> = (0..n).map(|i| blob_for(i, seed, 12)).collect();
        let key = |b: &Blob| (b.n, b.payload.clone(), b.tag.to_bits());
        got.sort_by_key(key);
        want.sort_by_key(key);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn interleaved_inserts_extract_in_order(
        n in 1usize..24,
        nprocs in 1usize..5,
        kind in dist_strategy(),
        k_inserts in 1usize..6,
        seed in any::<u8>(),
    ) {
        let pfs = Pfs::in_memory(nprocs);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(nprocs), move |ctx| {
            let layout = Layout::dense(n, nprocs, kind).unwrap();
            let g = Collection::new(ctx, layout.clone(), |i| i as u64).unwrap();
            let mut s = OStream::create(ctx, &p, &layout, "il").unwrap();
            for k in 0..k_inserts {
                // Each insert writes a distinct projection of the element.
                s.insert_with(&g, |e, ins| ins.prim(e * 10 + k as u64 + seed as u64))
                    .unwrap();
            }
            s.write().unwrap();
            s.close().unwrap();

            let mut r = IStream::open(ctx, &p, &layout, "il").unwrap();
            r.read().unwrap();
            let mut h = Collection::new(ctx, layout.clone(), |_| 0u64).unwrap();
            for k in 0..k_inserts {
                r.extract_with(&mut h, |e, ext| {
                    *e = ext.prim()?;
                    Ok(())
                })
                .unwrap();
                for (gid, v) in h.iter() {
                    assert_eq!(*v, gid as u64 * 10 + k as u64 + seed as u64);
                }
            }
            r.close().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn multiple_records_roundtrip_in_order(
        n in 1usize..16,
        nprocs in 1usize..4,
        kind in dist_strategy(),
        records in 1usize..5,
    ) {
        let pfs = Pfs::in_memory(nprocs);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(nprocs), move |ctx| {
            let layout = Layout::dense(n, nprocs, kind).unwrap();
            let mut s = OStream::create(ctx, &p, &layout, "multi").unwrap();
            for rec in 0..records {
                let g = Collection::new(ctx, layout.clone(), |i| blob_for(i, rec as u8, 9))
                    .unwrap();
                s.insert_collection(&g).unwrap();
                s.write().unwrap();
            }
            s.close().unwrap();

            let mut r = IStream::open(ctx, &p, &layout, "multi").unwrap();
            for rec in 0..records {
                let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
                r.read().unwrap();
                r.extract_collection(&mut g).unwrap();
                for (gid, e) in g.iter() {
                    assert_eq!(e, &blob_for(gid, rec as u8, 9));
                }
            }
            assert!(r.at_end());
            r.close().unwrap();
        })
        .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        ..ProptestConfig::default()
    })]

    #[test]
    fn damaged_files_never_panic_the_reader(
        cut in 0usize..10_000,
        pos in 0usize..10_000,
        bit in 0u32..9, // 8 = truncation only, no flip
    ) {
        let base = base_image();
        let mut bytes = base.to_vec();
        bytes.truncate(cut % (base.len() + 1));
        if bit < 8 && !bytes.is_empty() {
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
        }

        // The pure decoders must be total.
        let _ = dstreams::core::inspect_bytes(&bytes);
        let _ = dstreams::core::recovery_scan(&bytes);

        // So must the full reader stack: any outcome but a panic or hang.
        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p.open(true, "dmg", dstreams::pfs::OpenMode::Create).unwrap();
            fh.write_at(ctx, 0, &bytes).unwrap();
            let layout = Layout::dense(6, 1, DistKind::Block).unwrap();
            let Ok(mut r) = IStream::open(ctx, &p, &layout, "dmg") else {
                return;
            };
            for _ in 0..4 {
                if r.read().is_err() {
                    break;
                }
                let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
                if r.extract_collection(&mut g).is_err() {
                    break;
                }
            }
            let _ = r.close();
        })
        .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Pipelining moves virtual time, never bytes: a write-behind run and
    /// a synchronous run over the same inserts produce byte-identical
    /// files, and a read-ahead reader reproduces every element.
    #[test]
    fn pipelined_and_synchronous_runs_are_element_identical(
        n in 1usize..24,
        nprocs in 1usize..5,
        kind in dist_strategy(),
        records in 1usize..5,
        depth in 1usize..4,
        seed in any::<u8>(),
    ) {
        use dstreams::pipeline::{OStream as PipeO, IStream as PipeI, PipelineOptions};

        let file_bytes = |pipelined: bool| {
            let pfs = Pfs::in_memory(nprocs);
            let p = pfs.clone();
            Machine::run(MachineConfig::functional(nprocs), move |ctx| {
                let layout = Layout::dense(n, nprocs, kind).unwrap();
                let opts = dstreams::core::StreamOptions::default();
                if pipelined {
                    let mut s = PipeO::create_with(
                        ctx, &p, &layout, "pp", opts, PipelineOptions { depth },
                    ).unwrap();
                    for rec in 0..records {
                        let g = Collection::new(ctx, layout.clone(), |i| {
                            blob_for(i, seed.wrapping_add(rec as u8), 9)
                        }).unwrap();
                        s.insert_collection(&g).unwrap();
                        s.write().unwrap();
                    }
                    s.close().unwrap();
                } else {
                    let mut s = OStream::create(ctx, &p, &layout, "pp").unwrap();
                    for rec in 0..records {
                        let g = Collection::new(ctx, layout.clone(), |i| {
                            blob_for(i, seed.wrapping_add(rec as u8), 9)
                        }).unwrap();
                        s.insert_collection(&g).unwrap();
                        s.write().unwrap();
                    }
                    s.close().unwrap();
                }
                let fh = p.open(false, "pp", dstreams::pfs::OpenMode::Read).unwrap();
                let mut bytes = vec![0u8; fh.len() as usize];
                fh.read_at(ctx, 0, &mut bytes).unwrap();
                bytes
            })
            .unwrap()
            .remove(0)
        };
        let sync = file_bytes(false);
        let pipe = file_bytes(true);
        prop_assert_eq!(sync, pipe);

        // Read the pipelined file back with read-ahead: identity holds.
        let pfs = Pfs::in_memory(nprocs);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(nprocs), move |ctx| {
            let layout = Layout::dense(n, nprocs, kind).unwrap();
            let opts = dstreams::core::StreamOptions::default();
            let mut s = PipeO::create_with(
                ctx, &p, &layout, "pp", opts, PipelineOptions { depth },
            ).unwrap();
            for rec in 0..records {
                let g = Collection::new(ctx, layout.clone(), |i| {
                    blob_for(i, seed.wrapping_add(rec as u8), 9)
                }).unwrap();
                s.insert_collection(&g).unwrap();
                s.write().unwrap();
            }
            s.close().unwrap();

            let mut r = PipeI::open(ctx, &p, &layout, "pp").unwrap();
            r.start(true).unwrap();
            for rec in 0..records {
                let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
                r.read().unwrap();
                r.extract_collection(&mut g).unwrap();
                for (gid, e) in g.iter() {
                    assert_eq!(
                        e,
                        &blob_for(gid, seed.wrapping_add(rec as u8), 9),
                        "record {rec} element {gid}"
                    );
                }
            }
            r.close().unwrap();
        })
        .unwrap();
    }
}
