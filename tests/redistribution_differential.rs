//! Differential tests of the two-phase redistribution planner: a file
//! written under any (machine size, distribution) must read back
//! element-exact under any other, while the planned read path moves
//! *exactly* the analytic minimum number of bytes over the message
//! layer.
//!
//! * **exhaustive small-shape sweep** — every writer/reader rank-count
//!   pair in 1..=6, every distribution-kind pair over BLOCK, CYCLIC(1),
//!   CYCLIC(3), and a composed 2-D pattern, with ragged element sizes:
//!   readback is element-exact and measured `RedistShuttle` bytes equal
//!   the plan's lower bound;
//! * **conservation** — live traces of random cross-shape reads pass the
//!   dsverify redist-conservation rule;
//! * **idempotence** — reading under the writer's own layout schedules
//!   zero transfers;
//! * **round-trip** — redistributing A→B and back B→A reproduces the
//!   original file image byte-for-byte;
//! * **chaos** — crashing any reader rank at any PFS op never hangs the
//!   machine, never damages the (read-only) file, and replays
//!   byte-identical traces under a fixed fault seed. The fault seed
//!   honors `DSTREAMS_FAULT_SEED` so CI can sweep its seed matrix.

use dstreams::collections::{Collection, Composed2d, DistKind, Layout};
use dstreams::core::{to_bytes, IStream, OStream, ReadStrategy};
use dstreams::machine::{FaultPlan, Machine, MachineConfig};
use dstreams::pfs::{OpenMode, Pfs};
use dstreams::redist::RedistPlan;
use dstreams::trace::chrome::to_chrome_json;
use dstreams::trace::{EventKind, TraceSink};
use dstreams::verify::analyze;
use dstreams_core::impl_stream_data;
use proptest::prelude::*;

#[derive(Debug, Default, Clone, PartialEq)]
struct Blob {
    n: i64,
    payload: Vec<u8>,
}

impl_stream_data!(Blob {
    prim n,
    slice payload: u8 [n],
});

/// Ragged reference element: sizes vary per gid (8..=8+size_class bytes
/// on the wire), contents are gid- and seed-dependent.
fn blob_for(gid: usize, seed: u8, size_class: usize) -> Blob {
    let n = (gid * 11 + seed as usize) % (size_class + 1);
    Blob {
        n: n as i64,
        payload: (0..n)
            .map(|k| (gid as u8).wrapping_mul(7) ^ (k as u8) ^ seed)
            .collect(),
    }
}

/// The four sweep kinds for a given machine size: BLOCK, CYCLIC(1),
/// CYCLIC(3), and a composed 2-D pattern (row-cyclic x column-block on
/// the widest processor grid that divides `nprocs`).
fn sweep_kinds(nprocs: usize) -> [DistKind; 4] {
    [
        DistKind::Block,
        DistKind::Cyclic,
        DistKind::BlockCyclic(3),
        DistKind::Composed2d(Composed2d {
            rows: 4,
            grid_rows: if nprocs.is_multiple_of(2) { 2 } else { 1 },
            row_k: 1,
            col_k: 0,
        }),
    ]
}

/// The exact minimum the planner must hit for this shape: element sizes
/// and destination owners in file order (writer-rank-major), fed through
/// the same DP the readers run.
fn analytic_min(
    n: usize,
    wprocs: usize,
    wkind: DistKind,
    rprocs: usize,
    rkind: DistKind,
    seed: u8,
    size_class: usize,
) -> u64 {
    let wl = Layout::dense(n, wprocs, wkind).unwrap();
    let rl = Layout::dense(n, rprocs, rkind).unwrap();
    let mut sizes = Vec::with_capacity(n);
    let mut dst = Vec::with_capacity(n);
    for r in 0..wprocs {
        for gid in wl.local_elements(r) {
            sizes.push(to_bytes(&blob_for(gid, seed, size_class), false).len() as u64);
            dst.push(rl.owner(gid).unwrap());
        }
    }
    RedistPlan::new(rprocs, &sizes, &dst).lower_bound()
}

fn write_file(pfs: &Pfs, n: usize, wprocs: usize, wkind: DistKind, seed: u8, size_class: usize) {
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(wprocs), move |ctx| {
        let layout = Layout::dense(n, wprocs, wkind).unwrap();
        let g = Collection::new(ctx, layout.clone(), |i| blob_for(i, seed, size_class)).unwrap();
        let mut s = OStream::create(ctx, &p, &layout, "diff").unwrap();
        s.insert_collection(&g).unwrap();
        s.write().unwrap();
        s.close().unwrap();
    })
    .unwrap();
}

/// Planned read under `(rprocs, rkind)`, asserting element-exact
/// readback against the generator. Returns the run's trace.
fn read_exact(
    pfs: &Pfs,
    n: usize,
    rprocs: usize,
    rkind: DistKind,
    seed: u8,
    size_class: usize,
) -> dstreams::trace::Trace {
    let sink = TraceSink::new(rprocs);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::functional(rprocs).traced(sink.clone()),
        move |ctx| {
            let layout = Layout::dense(n, rprocs, rkind).unwrap();
            let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
            let mut s =
                IStream::open_with(ctx, &p, &layout, "diff", ReadStrategy::Planned).unwrap();
            s.read().unwrap();
            s.extract_collection(&mut g).unwrap();
            s.close().unwrap();
            for (gid, v) in g.iter() {
                assert_eq!(
                    *v,
                    blob_for(gid, seed, size_class),
                    "element {gid} corrupted crossing shapes"
                );
            }
        },
    )
    .unwrap();
    sink.take()
}

/// Raw on-PFS image of `name`, for byte-identity comparisons.
fn file_image(pfs: &Pfs, name: &'static str) -> Vec<u8> {
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(1), move |ctx| {
        let fh = p.open(false, name, OpenMode::Read).unwrap();
        let mut buf = vec![0u8; fh.len() as usize];
        fh.read_at(ctx, 0, &mut buf).unwrap();
        buf
    })
    .unwrap()
    .remove(0)
}

/// Every (writer ranks, reader ranks) in 1..=6, every kind pair, ragged
/// sizes: element-exact readback and measured shuttle bytes exactly at
/// the analytic lower bound. The same-layout diagonal doubles as an
/// idempotence check (zero bytes moved).
#[test]
fn cross_shape_sweep_is_element_exact_and_minimal() {
    const N: usize = 24;
    const SIZE_CLASS: usize = 5;
    for wprocs in 1..=6usize {
        for rprocs in 1..=6usize {
            for (wi, &wkind) in sweep_kinds(wprocs).iter().enumerate() {
                for (ri, &rkind) in sweep_kinds(rprocs).iter().enumerate() {
                    let seed = (wprocs * 41 + rprocs * 7 + wi * 3 + ri) as u8;
                    let pfs = Pfs::in_memory(wprocs.max(rprocs));
                    write_file(&pfs, N, wprocs, wkind, seed, SIZE_CLASS);
                    let trace = read_exact(&pfs, N, rprocs, rkind, seed, SIZE_CLASS);
                    let moved = trace.op_counts().redist_shuttle_bytes;
                    let min = analytic_min(N, wprocs, wkind, rprocs, rkind, seed, SIZE_CLASS);
                    assert_eq!(
                        moved, min,
                        "{wprocs}x{wkind:?} -> {rprocs}x{rkind:?}: moved {moved} B, \
                         analytic minimum is {min} B"
                    );
                }
            }
        }
    }
}

/// The all-pairs sweep above fixes one seed per combination; here the
/// sizes themselves are adversarial, including the all-empty and
/// single-element edges.
#[test]
fn sweep_covers_degenerate_element_counts() {
    for n in [1usize, 2, 5] {
        for (wprocs, rprocs) in [(6, 1), (1, 6), (5, 3)] {
            let pfs = Pfs::in_memory(wprocs.max(rprocs));
            write_file(&pfs, n, wprocs, DistKind::Cyclic, 9, 4);
            let trace = read_exact(&pfs, n, rprocs, DistKind::Block, 9, 4);
            assert_eq!(
                trace.op_counts().redist_shuttle_bytes,
                analytic_min(n, wprocs, DistKind::Cyclic, rprocs, DistKind::Block, 9, 4),
                "degenerate n={n}, {wprocs}->{rprocs}"
            );
        }
    }
}

fn dist_strategy() -> impl Strategy<Value = DistKind> {
    prop_oneof![
        Just(DistKind::Block),
        Just(DistKind::Cyclic),
        (1usize..5).prop_map(DistKind::BlockCyclic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random cross-shape reads conserve every byte and element per
    /// directed rank pair: the live trace passes every dsverify rule,
    /// including redist-conservation.
    #[test]
    fn random_cross_shape_reads_conserve_through_dsverify(
        wprocs in 1usize..6,
        rprocs in 1usize..6,
        wkind in dist_strategy(),
        rkind in dist_strategy(),
        n in 1usize..40,
        seed in 0u8..=255,
    ) {
        let pfs = Pfs::in_memory(wprocs.max(rprocs));
        write_file(&pfs, n, wprocs, wkind, seed, 6);
        let trace = read_exact(&pfs, n, rprocs, rkind, seed, 6);
        let moved = trace.op_counts().redist_shuttle_bytes;
        prop_assert_eq!(moved, analytic_min(n, wprocs, wkind, rprocs, rkind, seed, 6));
        let report = analyze(&trace);
        prop_assert!(report.clean(), "dsverify flagged a healthy shuffle: {report}");
    }

    /// Reading under the writer's own layout is a no-op plan: zero
    /// transfers, zero shuttle events, zero bytes.
    #[test]
    fn same_layout_read_schedules_nothing(
        nprocs in 1usize..6,
        kind in dist_strategy(),
        n in 1usize..40,
        seed in 0u8..=255,
    ) {
        let pfs = Pfs::in_memory(nprocs);
        write_file(&pfs, n, nprocs, kind, seed, 6);
        let trace = read_exact(&pfs, n, nprocs, kind, seed, 6);
        let shuttles = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RedistShuttle { .. }))
            .count();
        prop_assert_eq!(shuttles, 0, "same-layout read still shuttled data");
        prop_assert_eq!(trace.op_counts().redist_shuttle_bytes, 0);
    }

    /// A->B->A round trip: redistribute to a foreign shape, write from
    /// there, redistribute back, write again under the original shape —
    /// the final file image is byte-identical to the original.
    #[test]
    fn round_trip_reproduces_the_original_image(
        aprocs in 1usize..6,
        bprocs in 1usize..6,
        akind in dist_strategy(),
        bkind in dist_strategy(),
        n in 1usize..32,
        seed in 0u8..=255,
    ) {
        let pfs = Pfs::in_memory(aprocs.max(bprocs));
        write_file(&pfs, n, aprocs, akind, seed, 6);
        let original = file_image(&pfs, "diff");

        // A -> B: read under B, persist under B.
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(bprocs), move |ctx| {
            let layout = Layout::dense(n, bprocs, bkind).unwrap();
            let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
            let mut s = IStream::open(ctx, &p, &layout, "diff").unwrap();
            s.read().unwrap();
            s.extract_collection(&mut g).unwrap();
            s.close().unwrap();
            let mut o = OStream::create(ctx, &p, &layout, "hop").unwrap();
            o.insert_collection(&g).unwrap();
            o.write().unwrap();
            o.close().unwrap();
        })
        .unwrap();

        // B -> A: read the hop under A, persist under A.
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(aprocs), move |ctx| {
            let layout = Layout::dense(n, aprocs, akind).unwrap();
            let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
            let mut s = IStream::open(ctx, &p, &layout, "hop").unwrap();
            s.read().unwrap();
            s.extract_collection(&mut g).unwrap();
            s.close().unwrap();
            let mut o = OStream::create(ctx, &p, &layout, "back").unwrap();
            o.insert_collection(&g).unwrap();
            o.write().unwrap();
            o.close().unwrap();
        })
        .unwrap();

        prop_assert_eq!(
            file_image(&pfs, "back"),
            original,
            "A->B->A round trip altered the file image"
        );
    }
}

// ---------------------------------------------------------------------
// Chaos: crash injection into the cross-shape read path.
// ---------------------------------------------------------------------

const CHAOS_W: usize = 4;
const CHAOS_R: usize = 3;
const CHAOS_N: usize = 24;
const CHAOS_SEED: u8 = 17;

fn fault_seed() -> u64 {
    std::env::var("DSTREAMS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00D5_EA11)
}

/// Cross-shape planned read tolerating injected failures. Per rank:
/// (PFS ops issued, error that stopped it, if any).
fn chaos_read(pfs: &Pfs, config: MachineConfig) -> Vec<(u64, Option<String>)> {
    let p = pfs.clone();
    Machine::run(config, move |ctx| {
        let layout = Layout::dense(CHAOS_N, CHAOS_R, DistKind::Block).unwrap();
        let res = (|| -> Result<(), dstreams::core::StreamError> {
            let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
            let mut s = IStream::open_with(ctx, &p, &layout, "diff", ReadStrategy::Planned)?;
            s.read()?;
            s.extract_collection(&mut g)?;
            s.close()?;
            for (gid, v) in g.iter() {
                assert_eq!(*v, blob_for(gid, CHAOS_SEED, 5), "element {gid} corrupt");
            }
            Ok(())
        })();
        (ctx.pfs_op_count(), res.err().map(|e| e.to_string()))
    })
    .unwrap()
}

/// Crash every reader rank at every PFS op index: the machine always
/// terminates (peers observe the crash instead of hanging), the
/// read-only file survives with its full sealed prefix intact, and a
/// clean re-read is element-exact.
#[test]
fn chaos_crash_sweep_never_hangs_and_preserves_the_file() {
    let pfs = Pfs::in_memory(CHAOS_W.max(CHAOS_R));
    write_file(
        &pfs,
        CHAOS_N,
        CHAOS_W,
        DistKind::BlockCyclic(3),
        CHAOS_SEED,
        5,
    );
    let clean = chaos_read(&pfs, MachineConfig::functional(CHAOS_R));
    assert!(clean.iter().all(|(_, e)| e.is_none()), "{clean:?}");
    let total_ops = clean.iter().map(|(n, _)| *n).max().unwrap();
    assert!(total_ops > 0);

    let seed = fault_seed();
    let mut crashed_runs = 0;
    for rank in 0..CHAOS_R {
        for k in 0..total_ops {
            let plan = FaultPlan::seeded(seed ^ ((rank as u64) << 32) ^ k).crash_at(rank, k);
            let out = chaos_read(&pfs, MachineConfig::functional(CHAOS_R).with_faults(plan));
            if out.iter().any(|(_, e)| e.is_some()) {
                crashed_runs += 1;
            }
            // Reads never write: the image must still scan as fully
            // sealed, nothing torn.
            let image = file_image(&pfs, "diff");
            let report = dstreams::core::recovery_scan(&image)
                .unwrap_or_else(|e| panic!("crash of rank {rank} at op {k}: scan failed: {e}"));
            assert!(
                !report.torn,
                "crash of rank {rank} at op {k} tore a read-only file"
            );
            // And the survivors' next read sees everything.
            let reread = chaos_read(&pfs, MachineConfig::functional(CHAOS_R));
            assert!(
                reread.iter().all(|(_, e)| e.is_none()),
                "crash of rank {rank} at op {k}: clean re-read failed: {reread:?}"
            );
        }
    }
    assert!(crashed_runs > 0, "the sweep never actually crashed a run");
}

/// Two runs under the same fault seed replay byte-identical traces, and
/// the trace shows both the shuttle traffic and the injected crash.
#[test]
fn chaos_cross_shape_traces_byte_identically_per_seed() {
    let pfs = Pfs::in_memory(CHAOS_W.max(CHAOS_R));
    write_file(
        &pfs,
        CHAOS_N,
        CHAOS_W,
        DistKind::BlockCyclic(3),
        CHAOS_SEED,
        5,
    );
    // A clean traced read crosses shapes, so it must shuttle elements.
    let sink = TraceSink::new(CHAOS_R);
    let clean = chaos_read(
        &pfs,
        MachineConfig::functional(CHAOS_R).traced(sink.clone()),
    );
    assert!(
        to_chrome_json(&sink.take()).contains("redist.shuttle_out"),
        "the cross-shape read never shuttled an element"
    );

    let k = clean[1].0 / 2;
    let seed = fault_seed();
    let run = || {
        let sink = TraceSink::new(CHAOS_R);
        let plan = FaultPlan::seeded(seed).crash_at(1, k);
        let _ = chaos_read(
            &pfs,
            MachineConfig::functional(CHAOS_R)
                .with_faults(plan)
                .traced(sink.clone()),
        );
        to_chrome_json(&sink.take())
    };
    let a = run();
    assert_eq!(a, run(), "same fault seed must replay bit-identically");
    assert!(
        a.contains("fault.crash"),
        "the injected crash never reached the trace layer"
    );
}
