//! Differential tests of stripe-aware collective buffering: the
//! aggregated I/O path (`CollectiveConfig`) must be a pure *schedule*
//! change — shipping rank contributions to aggregator ranks, coalescing
//! them into large stripe-aligned operations, sieving unaligned heads —
//! with no observable effect on file contents or on what readers see.
//!
//! * **byte identity** — for any element count, distribution, processor
//!   count, aggregator count and record-size mix, the file image written
//!   under aggregation is byte-for-byte the image written directly;
//! * **read equivalence** — an aggregated reader extracts every element
//!   exactly, whether the file was produced by the direct or the
//!   aggregated writer, and across a *different* read-side aggregator
//!   count and distribution;
//! * **alignment knob** — both `stripe_align` settings yield the same
//!   bytes (sieving is invisible to the logical file).

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::{IStream, OStream};
use dstreams::machine::{CollectiveConfig, Machine, MachineConfig};
use dstreams::pfs::Pfs;
use dstreams_core::impl_stream_data;
use proptest::prelude::*;

#[derive(Debug, Default, Clone, PartialEq)]
struct Blob {
    n: i64,
    payload: Vec<u8>,
}

impl_stream_data!(Blob {
    prim n,
    slice payload: u8 [n],
});

fn blob_for(gid: usize, seed: u8, size_class: usize) -> Blob {
    let n = (gid * 11 + seed as usize) % (size_class + 1);
    Blob {
        n: n as i64,
        payload: (0..n)
            .map(|k| (gid as u8).wrapping_mul(7) ^ (k as u8) ^ seed)
            .collect(),
    }
}

fn dist_strategy() -> impl Strategy<Value = DistKind> {
    prop_oneof![
        Just(DistKind::Block),
        Just(DistKind::Cyclic),
        (1usize..5).prop_map(DistKind::BlockCyclic),
    ]
}

fn config(nprocs: usize, cc: Option<CollectiveConfig>) -> MachineConfig {
    match cc {
        Some(cc) => MachineConfig::functional(nprocs).with_collective(cc),
        None => MachineConfig::functional(nprocs),
    }
}

/// Write `records` records of `n` blobs and return the raw file image.
#[allow(clippy::too_many_arguments)]
fn write_image(
    pfs: &Pfs,
    nprocs: usize,
    cc: Option<CollectiveConfig>,
    n: usize,
    kind: DistKind,
    records: usize,
    seed: u8,
    size_class: usize,
) -> Vec<u8> {
    let p = pfs.clone();
    Machine::run(config(nprocs, cc), move |ctx| {
        let layout = Layout::dense(n, nprocs, kind).unwrap();
        let mut s = OStream::create(ctx, &p, &layout, "diff").unwrap();
        for rec in 0..records {
            let g = Collection::new(ctx, layout.clone(), |i| {
                blob_for(i, seed.wrapping_add(rec as u8), size_class)
            })
            .unwrap();
            s.insert_collection(&g).unwrap();
            s.write().unwrap();
        }
        s.close().unwrap();
        let fh = p
            .open(false, "diff", dstreams::pfs::OpenMode::Read)
            .unwrap();
        let mut bytes = vec![0u8; fh.len() as usize];
        fh.read_at(ctx, 0, &mut bytes).unwrap();
        bytes
    })
    .unwrap()
    .remove(0)
}

/// Read every record back under `cc` and assert element-exactness.
#[allow(clippy::too_many_arguments)]
fn read_exact(
    pfs: &Pfs,
    nprocs: usize,
    cc: Option<CollectiveConfig>,
    n: usize,
    kind: DistKind,
    records: usize,
    seed: u8,
    size_class: usize,
) {
    let p = pfs.clone();
    Machine::run(config(nprocs, cc), move |ctx| {
        let layout = Layout::dense(n, nprocs, kind).unwrap();
        let mut r = IStream::open(ctx, &p, &layout, "diff").unwrap();
        for rec in 0..records {
            let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
            r.read().unwrap();
            r.extract_collection(&mut g).unwrap();
            for (gid, e) in g.iter() {
                assert_eq!(
                    e,
                    &blob_for(gid, seed.wrapping_add(rec as u8), size_class),
                    "record {rec} element {gid}"
                );
            }
        }
        r.close().unwrap();
    })
    .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn aggregated_writes_are_byte_identical_to_direct(
        n in 0usize..32,
        nprocs in 1usize..7,
        aggregators in 1usize..7, // clamped to 1..=nprocs inside
        stripe_align in any::<bool>(),
        kind in dist_strategy(),
        records in 1usize..4,
        seed in any::<u8>(),
        size_class in 0usize..24,
    ) {
        let cc = CollectiveConfig { aggregators, stripe_align };

        let direct = Pfs::in_memory(nprocs);
        let direct_img =
            write_image(&direct, nprocs, None, n, kind, records, seed, size_class);

        let agg = Pfs::in_memory(nprocs);
        let agg_img =
            write_image(&agg, nprocs, Some(cc), n, kind, records, seed, size_class);

        prop_assert_eq!(&direct_img, &agg_img, "file images diverge");

        // The aggregated file reads back exactly, with and without
        // read-side aggregation, and the direct file survives an
        // aggregated reader: the paths are fully interchangeable.
        read_exact(&agg, nprocs, None, n, kind, records, seed, size_class);
        read_exact(&agg, nprocs, Some(cc), n, kind, records, seed, size_class);
        read_exact(&direct, nprocs, Some(cc), n, kind, records, seed, size_class);
    }

    #[test]
    fn aggregated_files_read_back_under_any_other_shape(
        n in 1usize..24,
        wprocs in 1usize..6,
        rprocs in 1usize..6,
        waggs in 1usize..6,
        raggs in 1usize..6,
        wkind in dist_strategy(),
        rkind in dist_strategy(),
        seed in any::<u8>(),
    ) {
        // Write under one aggregated shape, read under a completely
        // different one (processor count, aggregator count, distribution):
        // element identity must still hold.
        let pfs = Pfs::in_memory(wprocs.max(rprocs));
        let wcc = CollectiveConfig { aggregators: waggs, stripe_align: true };
        let rcc = CollectiveConfig { aggregators: raggs, stripe_align: false };
        write_image(&pfs, wprocs, Some(wcc), n, wkind, 2, seed, 13);
        read_exact(&pfs, rprocs, Some(rcc), n, rkind, 2, seed, 13);
    }

    #[test]
    fn stripe_alignment_knob_never_changes_the_bytes(
        n in 1usize..24,
        nprocs in 2usize..6,
        aggregators in 1usize..4,
        kind in dist_strategy(),
        seed in any::<u8>(),
    ) {
        let image = |stripe_align: bool| {
            let pfs = Pfs::in_memory(nprocs);
            let cc = CollectiveConfig { aggregators, stripe_align };
            write_image(&pfs, nprocs, Some(cc), n, kind, 2, seed, 17)
        };
        prop_assert_eq!(image(false), image(true));
    }
}
