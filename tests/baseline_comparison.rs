//! The paper's related-work claims (§5), demonstrated executably:
//!
//! * where elements are fixed-size, the Chameleon- and Panda-style
//!   baselines and pC++/streams all roundtrip the same data;
//! * variable-sized elements are *structurally impossible* for the
//!   baselines (no per-element size table) and routine for d/streams;
//! * Panda-style interleaving and HPF distributions match d/streams
//!   feature-for-feature on fixed data — the differentiator is variable
//!   size plus the object-parallel element model.

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::{IStream, OStream};
use dstreams::machine::{Machine, MachineConfig};
use dstreams::pfs::Pfs;
use dstreams_core::impl_stream_data;
use dstreams_fixedio::{chameleon, panda, FixedIoError};

#[derive(Debug, Default, Clone, PartialEq)]
struct Particles {
    n: i64,
    mass: Vec<f64>,
}

impl_stream_data!(Particles {
    prim n,
    slice mass: f64 [n],
});

#[test]
fn fixed_size_data_roundtrips_through_all_three_libraries() {
    let pfs = Pfs::in_memory(4);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(4), move |ctx| {
        let layout = Layout::dense(12, 4, DistKind::Block).unwrap();
        let c = Collection::new(ctx, layout.clone(), |i| i as f64 * 2.5).unwrap();

        // Chameleon-style.
        chameleon::write_block_array(ctx, &p, "cham", &c, 8, |v| v.to_le_bytes().to_vec()).unwrap();
        // Panda-style.
        let schema = panda::Schema {
            fields: vec![panda::SchemaField {
                name: "value".into(),
                elem_size: 8,
            }],
        };
        panda::write_array(ctx, &p, "panda", &c, &schema, |_, v| {
            v.to_le_bytes().to_vec()
        })
        .unwrap();
        // d/streams.
        let mut s = OStream::create(ctx, &p, &layout, "dstr").unwrap();
        s.insert_collection(&c).unwrap();
        s.write().unwrap();
        s.close().unwrap();

        // All three read back correctly.
        let mut a = Collection::new(ctx, layout.clone(), |_| 0.0f64).unwrap();
        chameleon::read_block_array(ctx, &p, "cham", &mut a, 8, |v, b| {
            *v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
        })
        .unwrap();
        let mut b = Collection::new(ctx, layout.clone(), |_| 0.0f64).unwrap();
        panda::read_field(ctx, &p, "panda", &mut b, "value", |v, raw| {
            *v = f64::from_le_bytes(raw.try_into().expect("8 bytes"));
        })
        .unwrap();
        let mut d = Collection::new(ctx, layout.clone(), |_| 0.0f64).unwrap();
        let mut r = IStream::open(ctx, &p, &layout, "dstr").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut d).unwrap();
        r.close().unwrap();

        for (((ga, va), (_, vb)), (_, vd)) in a.iter().zip(b.iter()).zip(d.iter()) {
            assert_eq!(*va, ga as f64 * 2.5);
            assert_eq!(va, vb);
            assert_eq!(va, vd);
        }
    })
    .unwrap();
}

#[test]
fn variable_sized_elements_separate_dstreams_from_the_baselines() {
    let pfs = Pfs::in_memory(3);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(3), move |ctx| {
        let layout = Layout::dense(9, 3, DistKind::Block).unwrap();
        // Variable-size particle lists: element i holds i % 4 particles.
        let c = Collection::new(ctx, layout.clone(), |i| Particles {
            n: (i % 4) as i64,
            mass: (0..i % 4).map(|k| (i * 10 + k) as f64).collect(),
        })
        .unwrap();

        // Chameleon-style: rejected at the first size violation.
        let err = chameleon::write_block_array(ctx, &p, "c", &c, 16, |e| {
            let mut v = e.n.to_le_bytes().to_vec();
            for m in &e.mass {
                v.extend_from_slice(&m.to_le_bytes());
            }
            v
        })
        .unwrap_err();
        assert!(matches!(err, FixedIoError::SizeViolation { .. }));

        // Panda-style: same structural limitation.
        let schema = panda::Schema {
            fields: vec![panda::SchemaField {
                name: "particles".into(),
                elem_size: 16,
            }],
        };
        let err = panda::write_array(ctx, &p, "pa", &c, &schema, |_, e| {
            let mut v = e.n.to_le_bytes().to_vec();
            for m in &e.mass {
                v.extend_from_slice(&m.to_le_bytes());
            }
            v
        })
        .unwrap_err();
        assert!(matches!(err, FixedIoError::SizeViolation { .. }));

        // d/streams: routine — per-element sizes are bookkept in the file.
        let mut s = OStream::create(ctx, &p, &layout, "d").unwrap();
        s.insert_collection(&c).unwrap();
        s.write().unwrap();
        s.close().unwrap();
        let mut back = Collection::new(ctx, layout.clone(), |_| Particles::default()).unwrap();
        let mut r = IStream::open(ctx, &p, &layout, "d").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut back).unwrap();
        r.close().unwrap();
        for ((ga, a), (_, b)) in c.iter().zip(back.iter()) {
            assert_eq!(a, b, "element {ga}");
        }
    })
    .unwrap();
}

#[test]
fn panda_interleaving_matches_dstreams_interleaving_byte_for_byte() {
    // Same two fixed-size fields, interleaved, through both libraries: the
    // *data regions* must be identical byte sequences (headers differ).
    let pfs = Pfs::in_memory(2);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let layout = Layout::dense(6, 2, DistKind::Block).unwrap();
        let a = Collection::new(ctx, layout.clone(), |i| i as f64).unwrap();
        let b = Collection::new(ctx, layout.clone(), |i| 100.0 + i as f64).unwrap();

        let schema = panda::Schema {
            fields: vec![
                panda::SchemaField {
                    name: "a".into(),
                    elem_size: 8,
                },
                panda::SchemaField {
                    name: "b".into(),
                    elem_size: 8,
                },
            ],
        };
        // Panda writes field pairs per element; mirror with one combined
        // source collection.
        let pairs = Collection::new(ctx, layout.clone(), |i| (i as f64, 100.0 + i as f64)).unwrap();
        panda::write_array(ctx, &p, "pv", &pairs, &schema, |k, (x, y)| {
            if k == 0 { x } else { y }.to_le_bytes().to_vec()
        })
        .unwrap();

        let mut s = OStream::create(ctx, &p, &layout, "dv").unwrap();
        s.insert_with(&a, |v, ins| ins.prim(*v)).unwrap();
        s.insert_with(&b, |v, ins| ins.prim(*v)).unwrap();
        s.write().unwrap();
        s.close().unwrap();

        // Compare the trailing 96 data bytes (6 elements x 2 fields x
        // 8 B); the d/stream file ends with its commit seal, the
        // Panda-style file with the data itself.
        ctx.barrier().unwrap();
        if ctx.is_root() {
            let read_tail = |name: &str, skip: u64| {
                let fh = p
                    .open(false, name, dstreams::pfs::OpenMode::Create)
                    .unwrap();
                let mut buf = vec![0u8; 96];
                fh.read_at(ctx, fh.len() - 96 - skip, &mut buf).unwrap();
                buf
            };
            let seal = dstreams::core::RecordSeal::LEN as u64;
            assert_eq!(read_tail("pv", 0), read_tail("dv", seal));
        }
        ctx.barrier().unwrap();
    })
    .unwrap();
}
