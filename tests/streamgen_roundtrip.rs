//! Compile-and-run check of stream-gen's output: the checked-in generated
//! file for the paper's Figure 3 declarations must (a) still match what
//! the tool produces today (no drift), (b) compile, and (c) roundtrip
//! through a real d/stream on a simulated machine.

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::{IStream, OStream};
use dstreams::machine::{Machine, MachineConfig};
use dstreams::pfs::Pfs;

// The generated code (structs + StreamData impls).
include!("generated_figure3.rs");

fn sample_particle_list(g: usize) -> ParticleList {
    let n = (g % 4) + 1;
    ParticleList {
        number_of_particles: n as i32,
        mass: (0..n).map(|k| (g * 10 + k) as f64).collect(),
        position: (0..n)
            .map(|k| Position {
                x: g as f64,
                y: k as f64,
                z: (g + k) as f64 * 0.5,
            })
            .collect(),
    }
}

#[test]
fn generated_code_matches_the_tool_today() {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/assets/figure3.pcxx"))
        .expect("declaration file");
    let fresh = dstreams_streamgen::generate_from_source(
        &src,
        dstreams_streamgen::GenOptions::default(),
        "assets/figure3.pcxx",
    )
    .expect("generation succeeds");
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/generated_figure3.rs"
    ))
    .expect("golden file");
    assert_eq!(
        fresh, golden,
        "tests/generated_figure3.rs is stale; regenerate with \
         `cargo run -p dstreams-streamgen --bin stream-gen -- assets/figure3.pcxx -o tests/generated_figure3.rs`"
    );
}

#[test]
fn generated_particle_list_roundtrips_through_a_dstream() {
    let pfs = Pfs::in_memory(3);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(3), move |ctx| {
        let layout = Layout::dense(11, 3, DistKind::Cyclic).unwrap();
        let g = Collection::new(ctx, layout.clone(), sample_particle_list).unwrap();

        let mut s = OStream::create(ctx, &p, &layout, "fig3").unwrap();
        s.insert_collection(&g).unwrap();
        s.write().unwrap();
        s.close().unwrap();

        // Read back on the same machine with a sorted read: every element
        // must be bit-identical at its own index.
        let mut h = Collection::new(ctx, layout.clone(), |_| ParticleList::default()).unwrap();
        let mut r = IStream::open(ctx, &p, &layout, "fig3").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut h).unwrap();
        r.close().unwrap();
        for (gid, e) in h.iter() {
            assert_eq!(e, &sample_particle_list(gid));
        }
    })
    .unwrap();
}

#[test]
fn generated_grid_cell_with_nested_and_fixed_fields_roundtrips() {
    let make = |g: usize| {
        let n = g % 3;
        GridCell {
            cell_id: g as i64 * 7,
            flags: [g as i32, 1, 2, 3],
            corner: Position {
                x: 1.0,
                y: 2.0,
                z: g as f64,
            },
            number_of_particles: n as i32,
            density: (0..n).map(|k| k as f64 * 0.25).collect(),
        }
    };
    let pfs = Pfs::in_memory(2);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let layout = Layout::dense(6, 2, DistKind::Block).unwrap();
        let g = Collection::new(ctx, layout.clone(), make).unwrap();
        let mut s = OStream::create(ctx, &p, &layout, "cells").unwrap();
        s.insert_collection(&g).unwrap();
        s.write().unwrap();
        s.close().unwrap();

        let mut h = Collection::new(ctx, layout.clone(), |_| GridCell::default()).unwrap();
        let mut r = IStream::open(ctx, &p, &layout, "cells").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut h).unwrap();
        r.close().unwrap();
        for (gid, e) in h.iter() {
            assert_eq!(e, &make(gid));
        }
    })
    .unwrap();
}
