//! Compile-and-run check of stream-gen's output: the checked-in generated
//! file for the paper's Figure 3 declarations must (a) still match what
//! the tool produces today (no drift), (b) compile, and (c) roundtrip
//! through a real d/stream on a simulated machine.

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::{IStream, OStream};
use dstreams::machine::{Machine, MachineConfig};
use dstreams::pfs::Pfs;

// The generated code (structs + StreamData impls).
include!("generated_figure3.rs");

fn sample_particle_list(g: usize) -> ParticleList {
    let n = (g % 4) + 1;
    ParticleList {
        number_of_particles: n as i32,
        mass: (0..n).map(|k| (g * 10 + k) as f64).collect(),
        position: (0..n)
            .map(|k| Position {
                x: g as f64,
                y: k as f64,
                z: (g + k) as f64 * 0.5,
            })
            .collect(),
    }
}

#[test]
fn generated_code_matches_the_tool_today() {
    let src = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/assets/figure3.pcxx"))
        .expect("declaration file");
    let fresh = dstreams_streamgen::generate_from_source(
        &src,
        dstreams_streamgen::GenOptions::default(),
        "assets/figure3.pcxx",
    )
    .expect("generation succeeds");
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/generated_figure3.rs"
    ))
    .expect("golden file");
    assert_eq!(
        fresh, golden,
        "tests/generated_figure3.rs is stale; regenerate with \
         `cargo run -p dstreams-streamgen --bin stream-gen -- assets/figure3.pcxx -o tests/generated_figure3.rs`"
    );
}

#[test]
fn generated_particle_list_roundtrips_through_a_dstream() {
    let pfs = Pfs::in_memory(3);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(3), move |ctx| {
        let layout = Layout::dense(11, 3, DistKind::Cyclic).unwrap();
        let g = Collection::new(ctx, layout.clone(), sample_particle_list).unwrap();

        let mut s = OStream::create(ctx, &p, &layout, "fig3").unwrap();
        s.insert_collection(&g).unwrap();
        s.write().unwrap();
        s.close().unwrap();

        // Read back on the same machine with a sorted read: every element
        // must be bit-identical at its own index.
        let mut h = Collection::new(ctx, layout.clone(), |_| ParticleList::default()).unwrap();
        let mut r = IStream::open(ctx, &p, &layout, "fig3").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut h).unwrap();
        r.close().unwrap();
        for (gid, e) in h.iter() {
            assert_eq!(e, &sample_particle_list(gid));
        }
    })
    .unwrap();
}

/// The structured-diagnostics pass: an unhooked raw pointer, an unused
/// hook, and a zero-size record each warn with their stable code and the
/// declaration's line number; registering the hook silences the pointer
/// warning and switches codegen to the programmer's hook methods.
#[test]
fn streamgen_diagnostics_carry_codes_and_spans() {
    use dstreams_streamgen::{generate_checked, DiagCode, GenOptions, Hook, Severity};

    let src = "class Node {\n  int v;\n  Node * next;\n};\nclass Empty { };";
    let (code, warnings) =
        generate_checked(src, GenOptions::default(), "diag.pcxx").expect("warnings don't abort");
    assert!(
        code.contains("TODO(stream-gen)"),
        "unhooked pointer keeps the comment hook"
    );

    let codes: Vec<_> = warnings.iter().map(|w| (w.code, w.line)).collect();
    assert!(
        codes.contains(&(DiagCode::PointerWithoutHook, 3)),
        "{codes:?}"
    );
    assert!(codes.contains(&(DiagCode::ZeroSizeRecord, 5)), "{codes:?}");
    assert!(warnings.iter().all(|w| w.severity == Severity::Warning));

    // Hooking the pointer clears both its warning and the TODO comment,
    // generating calls into the programmer-supplied methods instead.
    let opts = GenOptions {
        hooks: vec![Hook {
            class: "Node".into(),
            field: "next".into(),
        }],
        ..GenOptions::default()
    };
    let (hooked, warnings) =
        generate_checked("class Node { int v; Node * next; };", opts, "diag.pcxx").unwrap();
    assert!(warnings.is_empty(), "{warnings:?}");
    assert!(hooked.contains("self.insert_next(ins);"));
    assert!(hooked.contains("self.extract_next(ext)?;"));

    // A hook that matches nothing is itself flagged.
    let opts = GenOptions {
        hooks: vec![Hook {
            class: "Node".into(),
            field: "ghost".into(),
        }],
        ..GenOptions::default()
    };
    let (_, warnings) =
        generate_checked("class Node { int v; Node * next; };", opts, "diag.pcxx").unwrap();
    let codes: Vec<_> = warnings.iter().map(|w| w.code).collect();
    assert!(codes.contains(&DiagCode::UnusedHook), "{codes:?}");
    assert!(codes.contains(&DiagCode::PointerWithoutHook), "{codes:?}");
}

/// `stream-gen --deny-warnings` must exit nonzero on a warning-carrying
/// input and write nothing; the same input without the flag succeeds.
#[test]
fn streamgen_deny_warnings_exits_nonzero() {
    let dir = std::env::temp_dir().join(format!("sg-deny-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("node.pcxx");
    let output = dir.join("gen.rs");
    std::fs::write(&input, "class Node { int v; Node * next; };").unwrap();

    let bin = concat!(env!("CARGO_MANIFEST_DIR"), "/target/debug/stream-gen");
    if !std::path::Path::new(bin).exists() {
        // The binary is built by the workspace test invocation; if this
        // test runs in isolation before it exists, the library-level
        // coverage above still guards the behavior.
        eprintln!("skipping: {bin} not built");
        return;
    }

    let denied = std::process::Command::new(bin)
        .arg(&input)
        .arg("-o")
        .arg(&output)
        .arg("--deny-warnings")
        .output()
        .unwrap();
    assert!(!denied.status.success(), "{denied:?}");
    let err = String::from_utf8(denied.stderr).unwrap();
    assert!(
        err.contains("warning[pointer-without-hook]"),
        "stderr: {err}"
    );
    assert!(!output.exists(), "--deny-warnings must not write output");

    let allowed = std::process::Command::new(bin)
        .arg(&input)
        .arg("-o")
        .arg(&output)
        .output()
        .unwrap();
    assert!(allowed.status.success(), "{allowed:?}");
    assert!(output.exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generated_grid_cell_with_nested_and_fixed_fields_roundtrips() {
    let make = |g: usize| {
        let n = g % 3;
        GridCell {
            cell_id: g as i64 * 7,
            flags: [g as i32, 1, 2, 3],
            corner: Position {
                x: 1.0,
                y: 2.0,
                z: g as f64,
            },
            number_of_particles: n as i32,
            density: (0..n).map(|k| k as f64 * 0.25).collect(),
        }
    };
    let pfs = Pfs::in_memory(2);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let layout = Layout::dense(6, 2, DistKind::Block).unwrap();
        let g = Collection::new(ctx, layout.clone(), make).unwrap();
        let mut s = OStream::create(ctx, &p, &layout, "cells").unwrap();
        s.insert_collection(&g).unwrap();
        s.write().unwrap();
        s.close().unwrap();

        let mut h = Collection::new(ctx, layout.clone(), |_| GridCell::default()).unwrap();
        let mut r = IStream::open(ctx, &p, &layout, "cells").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut h).unwrap();
        r.close().unwrap();
        for (gid, e) in h.iter() {
            assert_eq!(e, &make(gid));
        }
    })
    .unwrap();
}
