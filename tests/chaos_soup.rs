//! Chaos soup: end-to-end survival of the full stack on an unreliable
//! transport.
//!
//! Where `chaos_sweep.rs` injects *storage* faults (power cuts, torn
//! writes), this sweep injects *message* faults: seeded drop, duplicate,
//! delay and reorder on every edge of the simulated interconnect, plus
//! deterministic data-plane kills of aggregator ranks mid-write. The
//! reliable-delivery layer (retransmit under virtual-time backoff,
//! receive-side dedup and resequencing, timeout-based failure detection)
//! plus aggregator failover must keep the durable bytes exactly what a
//! fault-free run produces — or, when data is genuinely unreachable,
//! leave records unsealed so recovery truncates to the newest sealed
//! generation instead of serving torn data.
//!
//! The message-fault seed honors `DSTREAMS_MSG_SEED` so CI can soak a
//! seed matrix over the same tests and archive failing seeds.

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::CheckpointManager;
use dstreams::machine::{CollectiveConfig, FaultPlan, Machine, MachineConfig, MsgFaultPlan};
use dstreams::pfs::Pfs;
use dstreams::trace::chrome::to_chrome_json;
use dstreams::trace::TraceSink;
use dstreams::verify::analyze;

const NPROCS: usize = 4;
const N: usize = 16;

fn layout() -> Layout {
    Layout::dense(N, NPROCS, DistKind::Block).unwrap()
}

fn msg_seed() -> u64 {
    std::env::var("DSTREAMS_MSG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A0_55ED)
}

/// Combined drop + duplicate + delay + reorder soup at rates high enough
/// that every mechanism fires on every run of the checkpoint workload.
fn soup(seed: u64) -> MsgFaultPlan {
    MsgFaultPlan::seeded(seed)
        .drop_ppm(100_000)
        .dup_ppm(80_000)
        .delay_ppm(80_000)
        .reorder_ppm(80_000)
}

fn aggregated() -> CollectiveConfig {
    CollectiveConfig {
        aggregators: 2,
        stripe_align: true,
    }
}

/// The three-generation checkpoint workload. Per rank: (generations
/// whose save completed on that rank, error that stopped it, if any).
fn checkpoint_run(pfs: &Pfs, config: MachineConfig) -> Vec<(Vec<u64>, Option<String>)> {
    let p = pfs.clone();
    Machine::run(config, move |ctx| {
        let l = layout();
        let mgr = CheckpointManager::new("ck", 2);
        let mut g = Collection::new(ctx, l.clone(), |i| i as u64).unwrap();
        let mut completed = Vec::new();
        let mut err = None;
        for step in 1..=3u64 {
            g.apply(|v| *v += 100);
            match mgr.save(ctx, &p, &g, step) {
                Ok(()) => completed.push(step),
                Err(e) => {
                    err = Some(e.to_string());
                    break;
                }
            }
        }
        (completed, err)
    })
    .unwrap()
}

/// Restart on whatever survived; per rank, the restored generation
/// (element-exactness asserted inside).
fn restore_run(pfs: &Pfs, label: &str) -> Vec<Option<u64>> {
    let p = pfs.clone();
    let label = label.to_string();
    Machine::run(MachineConfig::functional(NPROCS), move |ctx| {
        let l = layout();
        let mgr = CheckpointManager::new("ck", 2);
        let mut g = Collection::new(ctx, l.clone(), |_| 0u64).unwrap();
        match mgr.restore_latest(ctx, &p, &l, &mut g) {
            Ok(generation) => {
                for (gid, v) in g.iter() {
                    assert_eq!(
                        *v,
                        gid as u64 + 100 * generation,
                        "{label}: generation {generation} not element-exact"
                    );
                }
                Some(generation)
            }
            Err(_) => None,
        }
    })
    .unwrap()
}

/// Serialize every surviving file so durable bytes can be compared
/// across runs.
fn freeze(pfs: &Pfs) -> Vec<(String, Vec<u8>)> {
    let p = pfs.clone();
    let mut out = Machine::run(MachineConfig::functional(1), move |ctx| {
        let mut files = Vec::new();
        for name in p.list() {
            let fh = p.open(false, &name, dstreams::pfs::OpenMode::Read).unwrap();
            let mut bytes = vec![0u8; fh.len() as usize];
            fh.read_at(ctx, 0, &mut bytes).unwrap();
            files.push((name, bytes));
        }
        files
    })
    .unwrap()
    .remove(0);
    out.sort();
    out
}

#[test]
fn chaos_soup_preserves_every_durable_byte() {
    // Fault-free reference: the exact bytes a healthy run persists.
    let clean_pfs = Pfs::in_memory(NPROCS);
    let clean = checkpoint_run(
        &clean_pfs,
        MachineConfig::functional(NPROCS).with_collective(aggregated()),
    );
    assert!(clean
        .iter()
        .all(|(c, e)| c == &vec![1, 2, 3] && e.is_none()));
    let reference = freeze(&clean_pfs);

    let base = msg_seed();
    for k in 0..5u64 {
        let seed = base.wrapping_add(k.wrapping_mul(0x9E37_79B9));
        // Direct and aggregated layouts both have to survive the soup.
        for (label, cc) in [("direct", None), ("aggregated", Some(aggregated()))] {
            let pfs = Pfs::in_memory(NPROCS);
            let mut config = MachineConfig::functional(NPROCS)
                .with_faults(FaultPlan::default().with_msg(soup(seed)));
            if let Some(cc) = cc {
                config = config.with_collective(cc);
            }
            let out = checkpoint_run(&pfs, config);
            for (rank, (completed, err)) in out.iter().enumerate() {
                assert_eq!(
                    err, &None,
                    "{label} seed {seed:#x}: rank {rank} failed under chaos"
                );
                assert_eq!(
                    completed,
                    &vec![1, 2, 3],
                    "{label} seed {seed:#x}: rank {rank} lost generations"
                );
            }
            if label == "aggregated" {
                assert_eq!(
                    freeze(&pfs),
                    reference,
                    "{label} seed {seed:#x}: durable bytes diverged from the \
                     fault-free run"
                );
            }
            let restored = restore_run(&pfs, &format!("{label} seed {seed:#x}"));
            assert_eq!(restored, vec![Some(3); NPROCS], "{label} seed {seed:#x}");
        }
    }
}

#[test]
fn chaos_soup_replays_bit_identically_per_seed() {
    let seed = msg_seed();
    let run = || {
        let sink = TraceSink::new(NPROCS);
        let pfs = Pfs::in_memory(NPROCS);
        let _ = checkpoint_run(
            &pfs,
            MachineConfig::functional(NPROCS)
                .with_faults(FaultPlan::default().with_msg(soup(seed)))
                .with_collective(aggregated())
                .traced(sink.clone()),
        );
        to_chrome_json(&sink.take())
    };
    let a = run();
    assert_eq!(a, run(), "same message seed must replay bit-identically");
    assert!(
        a.contains("msg.retransmit"),
        "the soup never dropped a message — rates too low to be a test"
    );
    assert!(
        a.contains("msg.dup_dropped"),
        "the soup never duplicated a message"
    );
}

#[test]
fn live_chaos_traces_pass_all_analyzer_rules() {
    let sink = TraceSink::new(NPROCS);
    let pfs = Pfs::in_memory(NPROCS);
    let out = checkpoint_run(
        &pfs,
        MachineConfig::functional(NPROCS)
            .with_faults(FaultPlan::default().with_msg(soup(msg_seed())))
            .with_collective(aggregated())
            .traced(sink.clone()),
    );
    assert!(out.iter().all(|(_, e)| e.is_none()), "{out:?}");
    // Round-trip through the portable format, then run every analyzer
    // rule — including duplicate-suppression and retransmit-accounting,
    // which exist precisely to catch a broken reliability layer.
    let json = sink.take().to_events_json();
    let trace = dstreams::trace::Trace::from_events_json(&json).unwrap();
    let report = analyze(&trace);
    assert!(report.clean(), "chaos trace flagged: {report}");
}

#[test]
fn killed_aggregator_mid_write_truncates_to_newest_sealed_generation() {
    // Baseline for one aggregator rank (rank 0 is always an aggregator
    // under `aggregated()`): kill its data plane at increasing message
    // indices so the cut lands before, inside, and after each of the
    // three generation writes.
    let base = msg_seed();
    let mut degraded_runs = 0;
    let mut recovered_runs = 0;
    for k in [0u64, 2, 4, 6, 8, 12, 16, 24, 48] {
        let pfs = Pfs::in_memory(NPROCS);
        let plan = FaultPlan::default().with_msg(MsgFaultPlan::seeded(base ^ k).kill_at(0, k));
        let out = checkpoint_run(
            &pfs,
            MachineConfig::functional(NPROCS)
                .with_faults(plan)
                .with_collective(aggregated()),
        );
        // A data-plane kill must never hang or corrupt — ranks either
        // complete (with the record left unsealed) or fail loudly.
        let restored = restore_run(&pfs, &format!("kill at {k}"));
        assert!(
            restored.windows(2).all(|w| w[0] == w[1]),
            "kill at {k}: ranks disagree on the restored generation: {restored:?}"
        );
        match restored[0] {
            Some(3) => recovered_runs += 1,
            _ => degraded_runs += 1,
        }
        // Whatever was restored is element-exact (asserted inside
        // restore_run); additionally it can never exceed what completed.
        if let Some(r) = restored[0] {
            let max_completed = out
                .iter()
                .map(|(c, _)| c.last().copied().unwrap_or(0))
                .max()
                .unwrap();
            assert!(
                r <= max_completed.max(1),
                "kill at {k}: restored generation {r} was never written"
            );
        }
    }
    assert!(
        degraded_runs > 0,
        "no kill ever cost a generation — the sweep is vacuous"
    );
    assert!(
        recovered_runs > 0,
        "no kill was ever absorbed — the sweep only tested total loss"
    );
}
