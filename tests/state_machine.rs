//! Enforcement of the d/stream state machine (paper Figure 2) and failure
//! injection: corrupted files, mismatched extracts, and misuse must all
//! surface as typed errors, never as silent corruption or hangs.

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::{IStream, OStream, StreamError};
use dstreams::machine::{Machine, MachineConfig};
use dstreams::pfs::{OpenMode, Pfs};
use proptest::prelude::*;

fn layout(n: usize, np: usize) -> Layout {
    Layout::dense(n, np, DistKind::Block).unwrap()
}

/// Write a simple one-record file of `n` u32 elements.
fn write_simple(pfs: &Pfs, np: usize, n: usize, name: &str) {
    let p = pfs.clone();
    let name = name.to_string();
    Machine::run(MachineConfig::functional(np), move |ctx| {
        let l = layout(n, np);
        let g = Collection::new(ctx, l.clone(), |i| i as u32).unwrap();
        let mut s = OStream::create(ctx, &p, &l, &name).unwrap();
        s.insert_collection(&g).unwrap();
        s.write().unwrap();
        s.close().unwrap();
    })
    .unwrap();
}

#[test]
fn extract_before_read_is_a_state_violation() {
    let pfs = Pfs::in_memory(2);
    write_simple(&pfs, 2, 6, "f");
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(6, 2);
        let mut g = Collection::new(ctx, l.clone(), |_| 0u32).unwrap();
        let mut r = IStream::open(ctx, &p, &l, "f").unwrap();
        let err = r.extract_collection(&mut g).unwrap_err();
        assert!(matches!(
            err,
            StreamError::StateViolation { op: "extract", .. }
        ));
    })
    .unwrap();
}

#[test]
fn too_many_extracts_are_rejected() {
    let pfs = Pfs::in_memory(2);
    write_simple(&pfs, 2, 6, "f");
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(6, 2);
        let mut g = Collection::new(ctx, l.clone(), |_| 0u32).unwrap();
        let mut r = IStream::open(ctx, &p, &l, "f").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut g).unwrap();
        // The record held one insert; a second extract has no partner.
        let err = r.extract_collection(&mut g).unwrap_err();
        assert!(matches!(
            err,
            StreamError::ExtractCountExceeded { inserts: 1 }
        ));
    })
    .unwrap();
}

#[test]
fn read_with_missing_extracts_is_rejected() {
    let pfs = Pfs::in_memory(2);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(6, 2);
        let g = Collection::new(ctx, l.clone(), |i| i as u32).unwrap();
        let mut s = OStream::create(ctx, &p, &l, "f").unwrap();
        for _ in 0..2 {
            s.insert_collection(&g).unwrap();
            s.insert_collection(&g).unwrap();
            s.write().unwrap();
        }
        s.close().unwrap();

        let mut h = Collection::new(ctx, l.clone(), |_| 0u32).unwrap();
        let mut r = IStream::open(ctx, &p, &l, "f").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut h).unwrap(); // 1 of 2 extracts
        let err = r.read().unwrap_err();
        assert!(matches!(
            err,
            StreamError::UnconsumedData {
                extracts_remaining: 1
            }
        ));
        // Closing in this state is also a violation.
        let err = r.close().unwrap_err();
        assert!(matches!(
            err,
            StreamError::StateViolation { op: "close", .. }
        ));
    })
    .unwrap();
}

#[test]
fn extract_overrun_within_an_element_is_caught() {
    let pfs = Pfs::in_memory(1);
    write_simple(&pfs, 1, 4, "f"); // elements are 4-byte u32s
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(1), move |ctx| {
        let l = layout(4, 1);
        let mut g = Collection::new(ctx, l.clone(), |_| 0u64).unwrap();
        let mut r = IStream::open(ctx, &p, &l, "f").unwrap();
        r.read().unwrap();
        // Extracting u64 from 4-byte elements overruns.
        let err = r
            .extract_with(&mut g, |e, ext| {
                *e = ext.prim()?;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, StreamError::ExtractOverrun { .. }));
    })
    .unwrap();
}

#[test]
fn not_a_dstream_file_is_rejected_at_open() {
    let pfs = Pfs::in_memory(2);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        // A raw file that is not a d/stream.
        let fh = p.open(ctx.is_root(), "raw", OpenMode::Create).unwrap();
        fh.write_ordered(ctx, b"this is not a dstream file at all")
            .unwrap();
        let l = layout(4, 2);
        let Err(err) = IStream::open(ctx, &p, &l, "raw") else {
            panic!("raw file accepted as a d/stream");
        };
        assert!(matches!(err, StreamError::BadMagic));
        // Missing files are PFS errors.
        let Err(err) = IStream::open(ctx, &p, &l, "missing") else {
            panic!("missing file opened");
        };
        assert!(matches!(err, StreamError::Pfs(_)));
    })
    .unwrap();
}

#[test]
fn truncated_file_fails_cleanly_on_all_ranks() {
    let pfs = Pfs::in_memory(2);
    write_simple(&pfs, 2, 8, "f");

    // Truncate mid-record by copying a prefix into a new file.
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(1), move |ctx| {
        let src = p.open(false, "f", OpenMode::Read).unwrap();
        let keep = (src.len() / 2) as usize;
        let mut buf = vec![0u8; keep];
        src.read_at(ctx, 0, &mut buf).unwrap();
        let dst = p.open(true, "trunc", OpenMode::Create).unwrap();
        dst.write_at(ctx, 0, &buf).unwrap();
    })
    .unwrap();

    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(8, 2);
        // The file header survived, but the open-time chain scan spots
        // the unsealed (torn) record — on every rank, with no hangs.
        let Err(err) = IStream::open(ctx, &p, &l, "trunc") else {
            panic!("truncated file opened");
        };
        assert!(matches!(err, StreamError::TornTail { .. }));
    })
    .unwrap();
}

#[test]
fn wrong_element_count_reports_both_sides() {
    let pfs = Pfs::in_memory(2);
    write_simple(&pfs, 2, 8, "f");
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(10, 2);
        let mut r = IStream::open(ctx, &p, &l, "f").unwrap();
        let err = r.read().unwrap_err();
        assert!(matches!(
            err,
            StreamError::WrongElementCount {
                file: 8,
                stream: 10
            }
        ));
    })
    .unwrap();
}

#[test]
fn end_of_stream_is_distinguishable_from_errors() {
    let pfs = Pfs::in_memory(2);
    write_simple(&pfs, 2, 6, "f");
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(6, 2);
        let mut g = Collection::new(ctx, l.clone(), |_| 0u32).unwrap();
        let mut r = IStream::open(ctx, &p, &l, "f").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut g).unwrap();
        assert!(r.at_end());
        assert!(matches!(r.read(), Err(StreamError::EndOfStream)));
        // skip_record at end also reports EndOfStream.
        assert!(matches!(r.skip_record(), Err(StreamError::EndOfStream)));
        r.close().unwrap();
    })
    .unwrap();
}

#[test]
fn checked_mode_catches_a_wrong_extraction_mirror() {
    let pfs = Pfs::in_memory(2);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(4, 2);
        let g = Collection::new(ctx, l.clone(), |i| i as f64).unwrap();
        let opts = dstreams::core::StreamOptions {
            checked: true,
            ..Default::default()
        };
        let mut s = OStream::create_with(ctx, &p, &l, "chk", opts).unwrap();
        s.insert_collection(&g).unwrap();
        s.write().unwrap();
        s.close().unwrap();

        // Reader mirrors the insert with the wrong type: caught by tags.
        let mut h = Collection::new(ctx, l.clone(), |_| 0i64).unwrap();
        let mut r = IStream::open(ctx, &p, &l, "chk").unwrap();
        r.read().unwrap();
        let err = r
            .extract_with(&mut h, |e, ext| {
                *e = ext.prim()?; // i64, but f64 was inserted
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(
            err,
            StreamError::TypeMismatch {
                wrote: "f64",
                read: "i64"
            }
        ));
    })
    .unwrap();
}

#[test]
fn unchecked_same_width_misuse_is_the_documented_hazard() {
    // Without checked mode, extracting i64 where f64 was inserted is NOT
    // detectable (same width) — the paper's format stores sizes only.
    // This test documents the behavior boundary.
    let pfs = Pfs::in_memory(1);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(1), move |ctx| {
        let l = layout(2, 1);
        let g = Collection::new(ctx, l.clone(), |i| i as f64 + 0.5).unwrap();
        let mut s = OStream::create(ctx, &p, &l, "hazard").unwrap();
        s.insert_collection(&g).unwrap();
        s.write().unwrap();
        s.close().unwrap();

        let mut h = Collection::new(ctx, l.clone(), |_| 0i64).unwrap();
        let mut r = IStream::open(ctx, &p, &l, "hazard").unwrap();
        r.read().unwrap();
        // Succeeds (sizes match) but yields reinterpreted bits.
        r.extract_with(&mut h, |e, ext| {
            *e = ext.prim()?;
            Ok(())
        })
        .unwrap();
        assert_eq!(*h.get(0).unwrap(), (0.5f64).to_bits() as i64);
        r.close().unwrap();
    })
    .unwrap();
}

// ---- split-collective (asynchronous pipeline) orders ----

#[test]
fn write_begin_twice_without_new_inserts_is_empty() {
    // write_begin consumes the interleave group, so an immediate second
    // write_begin has nothing to flush.
    let pfs = Pfs::in_memory(2);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(6, 2);
        let g = Collection::new(ctx, l.clone(), |i| i as u32).unwrap();
        let mut s = OStream::create(ctx, &p, &l, "f").unwrap();
        s.insert_collection(&g).unwrap();
        let pending = s.write_begin().unwrap();
        assert!(matches!(s.write_begin(), Err(StreamError::EmptyWrite)));
        s.write_end(pending).unwrap();
        s.close().unwrap();
    })
    .unwrap();
}

#[test]
fn close_with_a_flush_in_flight_is_a_state_violation() {
    // The raw core stream refuses to close over an un-retired flush; the
    // pipeline wrapper's close drains its pool and succeeds.
    let pfs = Pfs::in_memory(2);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(6, 2);
        let g = Collection::new(ctx, l.clone(), |i| i as u32).unwrap();
        let mut s = OStream::create(ctx, &p, &l, "f").unwrap();
        s.insert_collection(&g).unwrap();
        let pending = s.write_begin().unwrap();
        assert_eq!(s.writes_in_flight(), 1);
        let err = s.close().unwrap_err();
        assert!(matches!(
            err,
            StreamError::StateViolation { op: "close", .. }
        ));

        let mut s2 = dstreams::pipeline::OStream::create(ctx, &p, &l, "f2").unwrap();
        for _ in 0..3 {
            s2.insert_collection(&g).unwrap();
            s2.write().unwrap();
        }
        assert!(s2.in_flight() > 0);
        s2.close().unwrap(); // drains the pool

        drop(pending); // the refused close left the flush to leak here
    })
    .unwrap();
}

#[test]
fn two_flushes_in_flight_match_two_synchronous_writes() {
    // With fresh inserts between them, two write_begins may be in flight
    // at once; the file must be byte-identical to the synchronous order.
    let write = |split: bool| {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let l = layout(6, 2);
            let mut s = OStream::create(ctx, &p, &l, "f").unwrap();
            let a = Collection::new(ctx, l.clone(), |i| i as u32).unwrap();
            let b = Collection::new(ctx, l.clone(), |i| (i * 10) as u32).unwrap();
            if split {
                s.insert_collection(&a).unwrap();
                let p1 = s.write_begin().unwrap();
                s.insert_collection(&b).unwrap();
                let p2 = s.write_begin().unwrap();
                assert_eq!(s.writes_in_flight(), 2);
                s.write_end(p1).unwrap();
                s.write_end(p2).unwrap();
            } else {
                s.insert_collection(&a).unwrap();
                s.write().unwrap();
                s.insert_collection(&b).unwrap();
                s.write().unwrap();
            }
            s.close().unwrap();
            let fh = p.open(false, "f", OpenMode::Read).unwrap();
            let mut bytes = vec![0u8; fh.len() as usize];
            fh.read_at(ctx, 0, &mut bytes).unwrap();
            bytes
        })
        .unwrap()
        .remove(0)
    };
    assert_eq!(write(false), write(true));
}

#[test]
fn extract_with_a_prefetch_in_flight_is_a_state_violation() {
    // prefetch starts the collective read but does not make the record
    // current: extract still requires read().
    let pfs = Pfs::in_memory(2);
    write_simple(&pfs, 2, 6, "f");
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(6, 2);
        let mut g = Collection::new(ctx, l.clone(), |_| 0u32).unwrap();
        let mut r = IStream::open(ctx, &p, &l, "f").unwrap();
        assert!(r.prefetch().unwrap());
        assert!(r.prefetch_in_flight());
        let err = r.extract_collection(&mut g).unwrap_err();
        assert!(matches!(
            err,
            StreamError::StateViolation { op: "extract", .. }
        ));
        // A second prefetch, and skipping over the in-flight record, are
        // also misorderings.
        assert!(matches!(
            r.prefetch(),
            Err(StreamError::StateViolation { op: "prefetch", .. })
        ));
        assert!(matches!(
            r.skip_record(),
            Err(StreamError::StateViolation {
                op: "skip_record",
                ..
            })
        ));
        // Consuming with the other read mode is refused (the spans were
        // chosen for sorted routing).
        assert!(matches!(
            r.unsorted_read(),
            Err(StreamError::StateViolation {
                op: "unsorted_read",
                ..
            })
        ));
        // The right mode consumes it and the stream is usable again.
        r.read().unwrap();
        r.extract_collection(&mut g).unwrap();
        r.close().unwrap();
    })
    .unwrap();
}

#[test]
fn prefetch_unsorted_violations_report_their_own_op_name() {
    // The unsorted prefetch must not masquerade as `prefetch` in its
    // diagnostics: a doubled prefetch names `prefetch_unsorted`, and a
    // sorted read over an unsorted prefetch names `read`.
    let pfs = Pfs::in_memory(2);
    write_simple(&pfs, 2, 6, "f");
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let l = layout(6, 2);
        let mut g = Collection::new(ctx, l.clone(), |_| 0u32).unwrap();
        let mut r = IStream::open(ctx, &p, &l, "f").unwrap();
        assert!(r.prefetch_unsorted().unwrap());
        assert!(matches!(
            r.prefetch_unsorted(),
            Err(StreamError::StateViolation {
                op: "prefetch_unsorted",
                ..
            })
        ));
        // Each violation names the primitive that was *attempted*.
        assert!(matches!(
            r.prefetch(),
            Err(StreamError::StateViolation { op: "prefetch", .. })
        ));
        assert!(matches!(
            r.read(),
            Err(StreamError::StateViolation { op: "read", .. })
        ));
        r.unsorted_read().unwrap();
        r.extract_collection(&mut g).unwrap();
        r.close().unwrap();
    })
    .unwrap();
}

// ---- exhaustive model-checking corpus (crates/verify) ----
//
// Every op sequence up to the stated depth is driven through both the
// Figure 2 reference automaton and the real stream; any accept/reject
// disagreement, wrong rejection class, or panic fails the check. The
// ostream alphabet includes the split-collective write_begin/write_end,
// so the asynchronous API is covered at the same depth as the
// synchronous one.

#[test]
fn ostream_matches_the_reference_automaton_to_depth_6() {
    let report = dstreams::verify::check_ostream_parity(1, 6, false).unwrap();
    assert!(report.sequences > 5_000, "{report:?}");
    assert!(report.rejections > 0, "{report:?}");
}

#[test]
fn ostream_parity_holds_on_multiple_ranks() {
    dstreams::verify::check_ostream_parity(2, 4, false).unwrap();
    dstreams::verify::check_ostream_parity(3, 3, false).unwrap();
}

#[test]
fn ostream_parity_holds_under_smp_single_buffer() {
    dstreams::verify::check_ostream_parity(2, 3, true).unwrap();
}

#[test]
fn istream_matches_the_reference_automaton_to_depth_6() {
    let report = dstreams::verify::check_istream_parity(1, 6).unwrap();
    assert!(report.sequences > 50_000, "{report:?}");
    assert!(report.rejections > 0, "{report:?}");
}

#[test]
fn istream_parity_holds_on_multiple_ranks() {
    dstreams::verify::check_istream_parity(2, 4).unwrap();
}

// ---- randomized misuse: arbitrary op sequences must never panic ----

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Any sequence of ostream primitives — legal or not — produces
    /// `Ok` or a typed `StreamError`, never a panic or a hang, and the
    /// stream stays usable after every rejection.
    #[test]
    fn random_ostream_op_sequences_never_panic(
        np in 1usize..4,
        ops in proptest::collection::vec(0u8..4, 0..24),
    ) {
        let pfs = Pfs::in_memory(np);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(np), move |ctx| {
            let l = layout(2 * np, np);
            let g = Collection::new(ctx, l.clone(), |i| i as u32).unwrap();
            let mut s = OStream::create(ctx, &p, &l, "rand").unwrap();
            let mut pending = std::collections::VecDeque::new();
            for op in &ops {
                match op {
                    0 => {
                        let _ = s.insert_collection(&g);
                    }
                    1 => {
                        let _ = s.write();
                    }
                    2 => {
                        if let Ok(h) = s.write_begin() {
                            pending.push_back(h);
                        }
                    }
                    _ => {
                        if let Some(h) = pending.pop_front() {
                            let _ = s.write_end(h);
                        }
                    }
                }
            }
            while let Some(h) = pending.pop_front() {
                let _ = s.write_end(h);
            }
            let _ = s.close();
        })
        .unwrap();
    }

    /// The istream twin: arbitrary read/extract/prefetch/skip orders over
    /// a real multi-record file never panic, whatever they return.
    #[test]
    fn random_istream_op_sequences_never_panic(
        np in 1usize..4,
        ops in proptest::collection::vec(0u8..6, 0..24),
    ) {
        let pfs = Pfs::in_memory(np);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(np), move |ctx| {
            let l = layout(2 * np, np);
            let g = Collection::new(ctx, l.clone(), |i| i as u32).unwrap();
            let mut s = OStream::create(ctx, &p, &l, "rand").unwrap();
            for _ in 0..2 {
                s.insert_collection(&g).unwrap();
                s.write().unwrap();
            }
            s.close().unwrap();

            let mut h = Collection::new(ctx, l.clone(), |_| 0u32).unwrap();
            let mut r = IStream::open(ctx, &p, &l, "rand").unwrap();
            for op in &ops {
                match op {
                    0 => {
                        let _ = r.read();
                    }
                    1 => {
                        let _ = r.unsorted_read();
                    }
                    2 => {
                        let _ = r.extract_collection(&mut h);
                    }
                    3 => {
                        let _ = r.prefetch();
                    }
                    4 => {
                        let _ = r.prefetch_unsorted();
                    }
                    _ => {
                        let _ = r.skip_record();
                    }
                }
            }
            let _ = r.close();
        })
        .unwrap();
    }
}
