//! Trace-based tests of the paper's communication claims (§4.1–§4.2),
//! checked against the recorded event stream rather than against timings:
//!
//! * **unsortedRead avoids communication** — reading without the sorting
//!   (routing) step emits zero point-to-point messages, no all-to-all and
//!   no route phase, while a sorted read under a different distribution
//!   demonstrably does route;
//! * **metadata strategies** — gathered-metadata mode performs the
//!   gather-to-node-0 and a single collective write per record (no
//!   parallel size-table write); parallel mode performs no gather and two
//!   collective writes per record, one of them inside the size-table
//!   phase;
//! * **SMP single-buffer mode** — one plain write per record, issued by
//!   one processor, and no collective writes at all;
//! * **determinism** — identical (seed, ranks, distribution, sizes)
//!   produce byte-identical merged traces across two runs, and the trace
//!   op counts agree exactly with the PFS statistics counters.

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::{
    IStream, LocalFile, MetaMode, MetaPolicy, OStream, ReadStrategy, StreamOptions,
};
use dstreams::machine::{Machine, MachineConfig};
use dstreams::pfs::Pfs;
use dstreams::trace::{CollOp, EventKind, PfsOp, StreamPhase, Trace, TraceSink};
use dstreams_core::impl_stream_data;
use proptest::prelude::*;

#[derive(Debug, Default, Clone, PartialEq)]
struct Blob {
    n: i64,
    payload: Vec<u8>,
}

impl_stream_data!(Blob {
    prim n,
    slice payload: u8 [n],
});

fn blob_for(gid: usize, seed: u8) -> Blob {
    let n = (gid * 5 + seed as usize) % 13;
    Blob {
        n: n as i64,
        payload: (0..n)
            .map(|k| (gid as u8).wrapping_mul(3) ^ (k as u8) ^ seed)
            .collect(),
    }
}

/// Write `n` blobs to `name` on a fresh functional machine, untraced.
fn write_blobs(pfs: &Pfs, nprocs: usize, n: usize, name: &'static str) {
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(nprocs), move |ctx| {
        let layout = Layout::dense(n, nprocs, DistKind::Block).unwrap();
        let g = Collection::new(ctx, layout.clone(), |i| blob_for(i, 7)).unwrap();
        let mut s = OStream::create(ctx, &p, &layout, name).unwrap();
        s.insert_collection(&g).unwrap();
        s.write().unwrap();
        s.close().unwrap();
    })
    .unwrap();
}

fn p2p_sends(trace: &Trace) -> usize {
    trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::MsgSend {
                    collective: false,
                    ..
                }
            )
        })
        .count()
}

fn collective_entries(trace: &Trace, which: CollOp) -> usize {
    trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Collective { op, .. } if op == which))
        .count()
}

fn phase_begins(trace: &Trace, which: StreamPhase) -> usize {
    trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PhaseBegin { phase } if phase == which))
        .count()
}

fn collective_writes(trace: &Trace) -> usize {
    trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::PfsCollective {
                    op: PfsOp::Write,
                    ..
                }
            )
        })
        .count()
}

#[test]
fn unsorted_read_moves_no_point_to_point_messages() {
    const NPROCS: usize = 4;
    const N: usize = 24;
    let pfs = Pfs::in_memory(NPROCS);
    write_blobs(&pfs, NPROCS, N, "unsorted_claim");

    // Unsorted read under the same element count but a different
    // distribution: elements are dealt to whoever holds buffer space,
    // so no routing is needed.
    let sink = TraceSink::new(NPROCS);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::functional(NPROCS).traced(sink.clone()),
        move |ctx| {
            let layout = Layout::dense(N, NPROCS, DistKind::Cyclic).unwrap();
            let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
            let mut r = IStream::open(ctx, &p, &layout, "unsorted_claim").unwrap();
            r.unsorted_read().unwrap();
            r.extract_collection(&mut g).unwrap();
            r.close().unwrap();
        },
    )
    .unwrap();
    let unsorted = sink.take();
    assert!(!unsorted.is_empty(), "trace recorded nothing");
    assert_eq!(p2p_sends(&unsorted), 0, "unsortedRead sent p2p messages");
    assert_eq!(collective_entries(&unsorted, CollOp::AllToAll), 0);
    assert_eq!(phase_begins(&unsorted, StreamPhase::Route), 0);

    // Contrast: the sorted read under the changed distribution must
    // route, so the claim above is discriminating, not vacuous. Under
    // the default planned strategy routing appears as redistribution
    // shuttle traffic; under the naive baseline, as an all-to-all.
    for strategy in [ReadStrategy::Planned, ReadStrategy::Naive] {
        let sink = TraceSink::new(NPROCS);
        let p = pfs.clone();
        Machine::run(
            MachineConfig::functional(NPROCS).traced(sink.clone()),
            move |ctx| {
                let layout = Layout::dense(N, NPROCS, DistKind::Cyclic).unwrap();
                let mut g = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
                let mut r =
                    IStream::open_with(ctx, &p, &layout, "unsorted_claim", strategy).unwrap();
                r.read().unwrap();
                r.extract_collection(&mut g).unwrap();
                r.close().unwrap();
                for (gid, e) in g.iter() {
                    assert_eq!(e, &blob_for(gid, 7));
                }
            },
        )
        .unwrap();
        let sorted = sink.take();
        let shuttles = sorted
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RedistShuttle { outgoing: true, .. }))
            .count();
        match strategy {
            ReadStrategy::Planned => {
                assert_eq!(collective_entries(&sorted, CollOp::AllToAll), 0);
                assert!(shuttles > 0, "planned cross-distribution read must shuttle");
            }
            ReadStrategy::Naive => {
                assert_eq!(collective_entries(&sorted, CollOp::AllToAll), NPROCS);
                assert_eq!(shuttles, 0);
            }
        }
        assert_eq!(phase_begins(&sorted, StreamPhase::Route), NPROCS);
    }
}

/// Write `records` records of `n` blobs with the given metadata mode,
/// returning the merged trace.
fn traced_write(nprocs: usize, n: usize, records: usize, mode: MetaMode) -> Trace {
    let sink = TraceSink::new(nprocs);
    let pfs = Pfs::in_memory(nprocs);
    Machine::run(
        MachineConfig::functional(nprocs).traced(sink.clone()),
        move |ctx| {
            let layout = Layout::dense(n, nprocs, DistKind::Block).unwrap();
            let g = Collection::new(ctx, layout.clone(), |i| blob_for(i, 3)).unwrap();
            let opts = StreamOptions {
                meta_policy: MetaPolicy::Force(mode),
                ..StreamOptions::default()
            };
            let mut s = OStream::create_with(ctx, &pfs, &layout, "meta_claim", opts).unwrap();
            for _ in 0..records {
                s.insert_collection(&g).unwrap();
                s.write().unwrap();
            }
            s.close().unwrap();
        },
    )
    .unwrap();
    sink.take()
}

#[test]
fn gathered_metadata_gathers_and_writes_once_per_record() {
    const NPROCS: usize = 4;
    const RECORDS: usize = 2;
    let t = traced_write(NPROCS, 24, RECORDS, MetaMode::Gathered);
    // The size tables travel to node 0 by gather — one rank-entry each...
    assert_eq!(collective_entries(&t, CollOp::Gather), NPROCS * RECORDS);
    // ...and there is no separate parallel size-table write:
    assert_eq!(phase_begins(&t, StreamPhase::SizeTable), 0);
    // a single collective write per record carries metadata and data.
    assert_eq!(collective_writes(&t), NPROCS * RECORDS);
}

#[test]
fn parallel_metadata_never_gathers_and_writes_twice_per_record() {
    const NPROCS: usize = 4;
    const RECORDS: usize = 2;
    let t = traced_write(NPROCS, 24, RECORDS, MetaMode::Parallel);
    // No gather-to-node-0 at all — the size table is written in parallel:
    assert_eq!(collective_entries(&t, CollOp::Gather), 0);
    assert_eq!(phase_begins(&t, StreamPhase::SizeTable), NPROCS * RECORDS);
    // two collective writes per record: size table, then data.
    assert_eq!(collective_writes(&t), 2 * NPROCS * RECORDS);

    // Per rank, exactly one of the two writes falls inside the size-table
    // phase (the merged trace keeps each rank's events in program order).
    for rank in 0..NPROCS {
        let lane: Vec<_> = t.events.iter().filter(|e| e.rank == rank).collect();
        let mut in_size_table = false;
        let mut inside = 0usize;
        let mut outside = 0usize;
        for e in &lane {
            match e.kind {
                EventKind::PhaseBegin {
                    phase: StreamPhase::SizeTable,
                } => in_size_table = true,
                EventKind::PhaseEnd {
                    phase: StreamPhase::SizeTable,
                } => in_size_table = false,
                EventKind::PfsCollective {
                    op: PfsOp::Write, ..
                } => {
                    if in_size_table {
                        inside += 1;
                    } else {
                        outside += 1;
                    }
                }
                _ => {}
            }
        }
        assert_eq!(inside, RECORDS, "rank {rank}: size-table writes");
        assert_eq!(outside, RECORDS, "rank {rank}: data writes");
    }
}

#[test]
fn smp_single_buffer_writes_each_record_exactly_once() {
    const NPROCS: usize = 4;
    const RECORDS: usize = 2;
    let sink = TraceSink::new(NPROCS);
    let pfs = Pfs::in_memory(NPROCS);
    Machine::run(
        MachineConfig::sgi_challenge(NPROCS).traced(sink.clone()),
        move |ctx| {
            let layout = Layout::dense(24, NPROCS, DistKind::Block).unwrap();
            let g = Collection::new(ctx, layout.clone(), |i| blob_for(i, 9)).unwrap();
            let opts = StreamOptions {
                smp_single_buffer: true,
                ..StreamOptions::default()
            };
            let mut s = OStream::create_with(ctx, &pfs, &layout, "smp_claim", opts).unwrap();
            for _ in 0..RECORDS {
                s.insert_collection(&g).unwrap();
                s.write().unwrap();
            }
            s.close().unwrap();
        },
    )
    .unwrap();
    let t = sink.take();

    // Every rank packed into the shared buffer, but the file saw exactly
    // one plain write per record, from one processor, and no collective
    // writes at all.
    let writes: Vec<_> = t
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::PfsIndependent {
                    op: PfsOp::Write,
                    ..
                }
            )
        })
        .collect();
    assert_eq!(writes.len(), RECORDS, "one data write per record");
    assert!(writes.iter().all(|e| e.rank == 0), "lone writer is rank 0");
    for w in &writes {
        if let EventKind::PfsIndependent { bytes, .. } = w.kind {
            assert!(bytes > 0, "the single write carries the whole record");
        }
    }
    assert_eq!(collective_writes(&t), 0);
}

#[test]
fn replicated_local_io_has_one_writer_and_broadcast_reads() {
    const NPROCS: usize = 4;
    const PARAMS: &[u8] = b"nbody=1000;dt=0.01;steps=64";
    let sink = TraceSink::new(NPROCS);
    let pfs = Pfs::in_memory(NPROCS);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::functional(NPROCS).traced(sink.clone()),
        move |ctx| {
            let mut f = LocalFile::create(ctx, &p, "params").unwrap();
            f.write(PARAMS).unwrap();
            let mut r = LocalFile::open(ctx, &p, "params").unwrap();
            assert_eq!(r.read(PARAMS.len()).unwrap(), PARAMS);
        },
    )
    .unwrap();
    let t = sink.take();

    // §4.2: "local data is output and input by only one node" — the
    // whole run performs exactly one physical write and one physical
    // read, both from rank 0, each moving the full replicated block.
    let ind: Vec<_> = t
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::PfsIndependent { op, bytes, .. } => Some((e.rank, op, bytes)),
            _ => None,
        })
        .collect();
    assert_eq!(
        ind,
        vec![
            (0, PfsOp::Write, PARAMS.len() as u64),
            (0, PfsOp::Read, PARAMS.len() as u64),
        ],
        "replicated I/O must touch the file exactly twice, from rank 0 only"
    );
    assert_eq!(collective_writes(&t), 0, "no collective writes at all");

    // "For input, the data is broadcast to the rest of the nodes after
    // it is read": one broadcast (entered by every rank), whose payload
    // reaches each of the other NPROCS-1 ranks exactly once — the
    // binomial tree moves NPROCS-1 payload-sized messages in total.
    assert_eq!(collective_entries(&t, CollOp::Broadcast), NPROCS);
    let mut fed: Vec<usize> = t
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::MsgSend {
                to,
                bytes,
                collective: true,
                ..
            } if bytes as usize > PARAMS.len() => Some(to),
            _ => None,
        })
        .collect();
    fed.sort_unstable();
    assert_eq!(
        fed,
        (1..NPROCS).collect::<Vec<_>>(),
        "the broadcast must feed every non-root rank exactly once"
    );
}

/// One full traced write+read roundtrip on a fresh machine and PFS;
/// returns the merged trace and the PFS statistics it must agree with.
fn traced_roundtrip(
    n: usize,
    nprocs: usize,
    kind: DistKind,
    seed: u8,
) -> (Trace, dstreams::pfs::StatsSnapshot) {
    let sink = TraceSink::new(nprocs);
    let pfs = Pfs::in_memory(nprocs);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::paragon(nprocs).traced(sink.clone()),
        move |ctx| {
            let layout = Layout::dense(n, nprocs, kind).unwrap();
            let g = Collection::new(ctx, layout.clone(), |i| blob_for(i, seed)).unwrap();
            let mut s = OStream::create(ctx, &p, &layout, "det").unwrap();
            s.insert_collection(&g).unwrap();
            s.write().unwrap();
            s.close().unwrap();

            let mut h = Collection::new(ctx, layout.clone(), |_| Blob::default()).unwrap();
            let mut r = IStream::open(ctx, &p, &layout, "det").unwrap();
            r.read().unwrap();
            r.extract_collection(&mut h).unwrap();
            r.close().unwrap();
        },
    )
    .unwrap();
    (sink.take(), pfs.stats())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn traces_are_deterministic_and_agree_with_pfs_stats(
        n in 1usize..32,
        nprocs in 1usize..5,
        kind in prop_oneof![
            Just(DistKind::Block),
            Just(DistKind::Cyclic),
            (1usize..4).prop_map(DistKind::BlockCyclic),
        ],
        seed in any::<u8>(),
    ) {
        let (a, stats) = traced_roundtrip(n, nprocs, kind, seed);
        let (b, _) = traced_roundtrip(n, nprocs, kind, seed);

        // Byte-identical merged event streams across two identical runs.
        prop_assert_eq!(a.to_chrome_json(), b.to_chrome_json());

        // The aggregated op counts agree exactly with the PFS counters.
        let counts = a.op_counts();
        prop_assert_eq!(counts.pfs_independent_ops, stats.independent_ops);
        prop_assert_eq!(counts.pfs_independent_bytes, stats.independent_bytes);
        prop_assert_eq!(counts.pfs_disk_regime_ops, stats.disk_regime_ops);
        prop_assert_eq!(counts.pfs_collective_ops, stats.collective_ops);
        prop_assert_eq!(counts.pfs_collective_bytes, stats.collective_bytes);
    }
}
