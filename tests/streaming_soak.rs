//! Log-ingest soak: an unbounded append stream on an unreliable
//! transport, with two tailing readers consuming mid-run.
//!
//! Where `chaos_soup.rs` soaks bounded checkpoints and
//! `service_soak.rs` the serving layer, this sweep drives the streaming
//! subsystem — continuously sealed segments, depth-N write-behind
//! windows, mid-run [`TailReader`] attach, and retention compaction —
//! through seeded message chaos and deterministic data-plane kills. The
//! contract under test is sealed-snapshot isolation's one-liner: **a
//! tailing reader sees a contiguous run of sealed segments,
//! element-exact, never a torn or reclaimed one** — and under an
//! unrecoverable kill the run degrades loudly (an error on some rank)
//! instead of wedging a collective or serving garbage.
//!
//! The message-fault seed honors `DSTREAMS_MSG_SEED` so CI can soak a
//! seed matrix over the same tests and archive failing seeds.

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::machine::{CollectiveConfig, FaultPlan, Machine, MachineConfig, MsgFaultPlan};
use dstreams::pfs::Pfs;
use dstreams::trace::{Trace, TraceSink};
use dstreams::unbounded::{AppendOptions, AppendStream, TailReader};
use dstreams::verify::analyze;

const NPROCS: usize = 4;
const N: usize = 16;
const SEGMENTS: u64 = 4;
const RECORDS: u64 = 3;
/// Reader B attaches after this many segments are sealed (mid-run).
const LATE_ATTACH: u64 = 2;

fn layout() -> Layout {
    Layout::dense(N, NPROCS, DistKind::Block).unwrap()
}

fn msg_seed() -> u64 {
    std::env::var("DSTREAMS_MSG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x106_1E57)
}

/// Combined drop + duplicate + delay + reorder soup at rates high enough
/// that the reliability layer fires constantly under the manifest's
/// broadcast/barrier traffic.
fn soup(seed: u64) -> MsgFaultPlan {
    MsgFaultPlan::seeded(seed)
        .drop_ppm(100_000)
        .dup_ppm(80_000)
        .delay_ppm(80_000)
        .reorder_ppm(80_000)
}

fn aggregated() -> CollectiveConfig {
    CollectiveConfig {
        aggregators: 2,
        stripe_align: true,
    }
}

fn expected(seg: u64, rec: u64, gid: usize) -> u64 {
    seg * 1000 + rec * 100 + gid as u64
}

/// What one reader observed: the contiguous segment indices it consumed.
/// Element-exactness is asserted inside the poll closure; the digest
/// carries only rank-identical facts.
type Digest = (Vec<u64>, Vec<u64>, u64, u64, u64);

/// Drain everything currently sealed into `seen`, asserting every record
/// of every consumed segment is element-exact.
fn drain<'a>(
    ctx: &'a dstreams::machine::NodeCtx,
    l: &Layout,
    reader: &mut TailReader<'a>,
    seen: &mut Vec<u64>,
) -> Result<(), dstreams::core::StreamError> {
    loop {
        let mut consumed = None;
        let advanced = reader.poll(|is, entry| {
            let seg = entry.index;
            assert_eq!(entry.records, RECORDS, "segment {seg} torn");
            let mut g = Collection::new(ctx, l.clone(), |_| 0u64)?;
            for rec in 0..entry.records {
                is.read()?;
                is.extract_collection(&mut g)?;
                for (gid, v) in g.iter() {
                    assert_eq!(
                        *v,
                        expected(seg, rec, gid),
                        "segment {seg} record {rec} not element-exact"
                    );
                }
            }
            consumed = Some(seg);
            Ok(())
        })?;
        if !advanced {
            break;
        }
        seen.push(consumed.expect("poll advanced without consuming"));
    }
    Ok(())
}

/// The log-ingest workload: a producer seals `SEGMENTS` segments of
/// `RECORDS` windowed appends each; reader A tails from the start,
/// reader B attaches after `LATE_ATTACH` seals. Returns per rank what
/// each reader saw plus producer counters, or the error that stopped it.
fn ingest_run(
    pfs: &Pfs,
    config: MachineConfig,
    retention: Option<u64>,
) -> Vec<Result<Digest, String>> {
    let p = pfs.clone();
    Machine::run(config, move |ctx| {
        let l = layout();
        let run = || -> Result<Digest, dstreams::core::StreamError> {
            let opts = AppendOptions {
                window_depth: 3,
                retention_bytes: retention,
                ..Default::default()
            };
            let mut s = AppendStream::create_with(ctx, &p, &l, "ingest", opts)?;
            let mut a = TailReader::attach(ctx, &p, &l, "ingest")?;
            let mut b = None;
            let (mut a_seen, mut b_seen) = (Vec::new(), Vec::new());
            for seg in 0..SEGMENTS {
                for rec in 0..RECORDS {
                    let c = Collection::new(ctx, l.clone(), move |g| expected(seg, rec, g))?;
                    s.insert_collection(&c)?;
                    s.append()?;
                }
                s.seal()?;
                if seg + 1 == LATE_ATTACH {
                    b = Some(TailReader::attach(ctx, &p, &l, "ingest")?);
                }
                drain(ctx, &l, &mut a, &mut a_seen)?;
                if let Some(rb) = b.as_mut() {
                    drain(ctx, &l, rb, &mut b_seen)?;
                }
            }
            let stats = s.stats();
            a.detach()?;
            if let Some(rb) = b {
                rb.detach()?;
            }
            s.close()?;
            Ok((
                a_seen,
                b_seen,
                stats.records_appended,
                stats.segments_sealed,
                stats.segments_compacted,
            ))
        };
        run().map_err(|e| e.to_string())
    })
    .expect("the machine itself must survive the soak")
}

fn assert_contiguous_to_end(seen: &[u64], label: &str) {
    assert!(!seen.is_empty(), "{label}: reader consumed nothing");
    assert!(
        seen.windows(2).all(|w| w[1] == w[0] + 1),
        "{label}: reader skipped a sealed segment: {seen:?}"
    );
    assert_eq!(
        *seen.last().unwrap(),
        SEGMENTS - 1,
        "{label}: reader never caught up to the final seal: {seen:?}"
    );
}

#[test]
fn message_soup_never_tears_a_tailed_segment() {
    let base = msg_seed();
    for k in 0..2u64 {
        let seed = base.wrapping_add(k.wrapping_mul(0x9E37_79B9));
        let label = format!("seed {seed:#x}");
        let sink = TraceSink::new(NPROCS);
        let pfs = Pfs::in_memory(NPROCS);
        let config = MachineConfig::functional(NPROCS)
            .with_faults(FaultPlan::default().with_msg(soup(seed)))
            .with_collective(aggregated())
            .traced(sink.clone());
        let out = ingest_run(&pfs, config, None);
        let first = out[0]
            .as_ref()
            .unwrap_or_else(|e| panic!("{label}: rank 0 failed under recoverable soup: {e}"));
        for (rank, r) in out.iter().enumerate() {
            let d = r
                .as_ref()
                .unwrap_or_else(|e| panic!("{label}: rank {rank} failed: {e}"));
            assert_eq!(d, first, "{label}: rank {rank} diverged from rank 0");
        }
        let (a_seen, b_seen, appended, sealed, _) = first;
        assert_contiguous_to_end(a_seen, &format!("{label} reader A"));
        assert_contiguous_to_end(b_seen, &format!("{label} reader B"));
        assert_eq!(a_seen[0], 0, "{label}: reader A attached at the start");
        assert!(
            b_seen[0] <= LATE_ATTACH,
            "{label}: late reader must start at or before its attach seal"
        );
        assert_eq!(*appended, SEGMENTS * RECORDS);
        assert_eq!(*sealed, SEGMENTS);
        // The live trace must satisfy every analyzer rule — including
        // unsealed-tail-read and compacted-under-reader, with the
        // reliability layer's retransmit noise in the lanes.
        let trace = Trace::from_events_json(&sink.take().to_events_json()).unwrap();
        let report = analyze(&trace);
        assert!(report.clean(), "{label}: soak trace flagged: {report}");
        assert!(report.tail_reads_checked > 0, "{label}: no tail reads seen");
    }
}

#[test]
fn retention_under_chaos_reclaims_only_consumed_segments() {
    let seed = msg_seed() ^ 0xBEEF;
    let sink = TraceSink::new(NPROCS);
    let pfs = Pfs::in_memory(NPROCS);
    let config = MachineConfig::functional(NPROCS)
        .with_faults(FaultPlan::default().with_msg(soup(seed)))
        .with_collective(aggregated())
        .traced(sink.clone());
    // A one-byte budget asks retention to reclaim everything it legally
    // can after every seal; both readers drain fully between seals, so
    // compaction actually fires — yet neither reader may ever observe a
    // reclaimed segment (asserted by drain + the analyzer rule).
    let out = ingest_run(&pfs, config, Some(1));
    for (rank, r) in out.iter().enumerate() {
        let (a_seen, b_seen, _, _, compacted) = r
            .as_ref()
            .unwrap_or_else(|e| panic!("rank {rank} failed: {e}"));
        assert_contiguous_to_end(a_seen, "reader A");
        assert_contiguous_to_end(b_seen, "reader B");
        assert!(*compacted > 0, "retention never fired — vacuous");
    }
    let trace = Trace::from_events_json(&sink.take().to_events_json()).unwrap();
    let report = analyze(&trace);
    assert!(report.clean(), "retention soak trace flagged: {report}");
    assert!(report.compactions_checked > 0, "no compactions audited");
}

#[test]
fn same_seed_replays_the_ingest_byte_identically() {
    let seed = msg_seed();
    let run = || {
        let sink = TraceSink::new(NPROCS);
        let pfs = Pfs::in_memory(NPROCS);
        let config = MachineConfig::functional(NPROCS)
            .with_faults(FaultPlan::default().with_msg(soup(seed)))
            .with_collective(aggregated())
            .traced(sink.clone());
        let out = ingest_run(&pfs, config, None);
        (out, sink.take().to_events_json())
    };
    let (out_a, trace_a) = run();
    let (out_b, trace_b) = run();
    assert_eq!(out_a, out_b, "seed {seed:#x}: reader views diverged");
    assert_eq!(
        trace_a, trace_b,
        "seed {seed:#x}: traces must replay byte-identically"
    );
    assert!(
        trace_a.contains("segment_seal") && trace_a.contains("tail_consume"),
        "trace never recorded streaming events — the soak is vacuous"
    );
}

#[test]
fn killed_rank_degrades_loudly_but_never_tears_or_hangs() {
    let base = msg_seed();
    let mut degraded_runs = 0;
    let mut clean_runs = 0;
    for k in [0u64, 4, 16, 64, 1 << 40] {
        let label = format!("kill at {k}");
        let sink = TraceSink::new(NPROCS);
        let pfs = Pfs::in_memory(NPROCS);
        let plan = FaultPlan::default().with_msg(MsgFaultPlan::seeded(base ^ k).kill_at(0, k));
        let config = MachineConfig::functional(NPROCS)
            .with_faults(plan)
            .with_collective(aggregated())
            .traced(sink.clone());
        // Finishing at all is the headline assertion: a dead data plane
        // must surface as an error on some rank, never a wedged
        // collective — and whatever a reader did consume before the cut
        // was element-exact (asserted inside drain).
        let out = ingest_run(&pfs, config, None);
        let errored = out.iter().any(|r| r.is_err());
        for r in out.iter().flatten() {
            let (a_seen, ..) = r;
            assert!(
                a_seen.windows(2).all(|w| w[1] == w[0] + 1),
                "{label}: a surviving reader skipped a segment: {a_seen:?}"
            );
        }
        if errored {
            degraded_runs += 1;
        } else {
            clean_runs += 1;
        }
        // Dead rank or not, the trace stays explicable: every hazard the
        // analyzer would flag is either absent or crash-excused.
        let trace = Trace::from_events_json(&sink.take().to_events_json()).unwrap();
        let report = analyze(&trace);
        assert!(report.clean(), "{label}: trace flagged: {report}");
    }
    assert!(
        degraded_runs > 0,
        "no kill ever stopped the ingest — the sweep is vacuous"
    );
    assert!(
        clean_runs > 0,
        "every kill was fatal — the sweep never tested the absorbed path"
    );
}
