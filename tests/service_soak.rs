//! Service soak: the multi-tenant serving layer on an unreliable
//! transport.
//!
//! Where `chaos_soup.rs` soaks the checkpoint library directly, this
//! sweep drives the *service* — admission control, DRR scheduling, the
//! working-set cache, and per-tenant sessions — through seeded message
//! chaos and data-plane kills. The contract under test is the service's
//! one-line SLO: **shed or recover, never hang**. A recoverable soup
//! must leave a fully accounted, rank-identical report and a trace every
//! analyzer rule accepts; a dead rank must abort the remaining work
//! loudly (every request still gets exactly one outcome) instead of
//! wedging a collective.
//!
//! The message-fault seed honors `DSTREAMS_MSG_SEED` so CI can soak a
//! seed matrix over the same tests and archive failing seeds.

use dstreams::machine::{CollectiveConfig, FaultPlan, Machine, MachineConfig, MsgFaultPlan};
use dstreams::pfs::Pfs;
use dstreams::serve::{
    generate, run_service, Arrival, OpMix, QosLevel, ServiceConfig, TenantProfile, TrafficSpec,
};
use dstreams::trace::{Trace, TraceSink};
use dstreams::verify::analyze;

const NPROCS: usize = 4;

fn msg_seed() -> u64 {
    std::env::var("DSTREAMS_MSG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EA5_0AC1)
}

/// Combined drop + duplicate + delay + reorder soup, heavy enough that
/// the reliability layer fires constantly under the service workload.
fn soup(seed: u64) -> MsgFaultPlan {
    MsgFaultPlan::seeded(seed)
        .drop_ppm(100_000)
        .dup_ppm(80_000)
        .delay_ppm(80_000)
        .reorder_ppm(80_000)
}

fn tenants() -> Vec<TenantProfile> {
    vec![
        TenantProfile {
            tenant: 1,
            class: QosLevel::Premium,
            elements: 8,
        },
        TenantProfile {
            tenant: 2,
            class: QosLevel::Standard,
            elements: 8,
        },
        TenantProfile {
            tenant: 3,
            class: QosLevel::BestEffort,
            elements: 8,
        },
    ]
}

fn arrivals() -> Vec<Arrival> {
    generate(
        &TrafficSpec {
            seed: 0xD05E_77E5,
            sessions: 12,
            ops_per_session: 3,
            mean_session_gap_ns: 10_000,
            mean_interarrival_ns: 40_000,
            zipf_s: 0.8,
            mix: OpMix::read_mostly(),
        },
        &tenants(),
    )
}

/// One rank's report, reduced to a comparable digest.
type Digest = Vec<(u64, String)>;

fn digest(outcomes: &[(u64, String)]) -> Digest {
    let mut d = outcomes.to_vec();
    d.sort();
    d
}

/// Run the service under `plan`; per rank: (digest, served, aborted,
/// outcome count) or the error that stopped the rank.
#[allow(clippy::type_complexity)]
fn service_run(
    plan: Option<MsgFaultPlan>,
    sink: Option<&TraceSink>,
) -> Vec<Result<(Digest, u64, u64, usize), String>> {
    let pfs = Pfs::in_memory(NPROCS);
    // Aggregated writes route tenant data over the data plane, so
    // message kills actually bite the service's checkpoint traffic.
    let mut config = MachineConfig::functional(NPROCS).with_collective(CollectiveConfig {
        aggregators: 2,
        stripe_align: true,
    });
    if let Some(msg) = plan {
        config = config.with_faults(FaultPlan::default().with_msg(msg));
    }
    if let Some(s) = sink {
        config = config.traced(s.clone());
    }
    let cfg = ServiceConfig::for_model(pfs.model());
    let tenants = tenants();
    let arrivals = arrivals();
    let p = pfs.clone();
    Machine::run(config, move |ctx| {
        match run_service(ctx, &p, &cfg, &tenants, &arrivals) {
            Ok(r) => {
                let outcomes: Vec<(u64, String)> = r
                    .outcomes
                    .iter()
                    .map(|o| (o.request_id, format!("{:?}", o.disposition)))
                    .collect();
                Ok((digest(&outcomes), r.served, r.aborted, r.outcomes.len()))
            }
            Err(e) => Err(e.to_string()),
        }
    })
    .expect("the machine itself must survive the soak")
}

#[test]
fn message_soup_is_absorbed_with_full_accounting_and_clean_traces() {
    let total = arrivals().len();
    let base = msg_seed();
    for k in 0..2u64 {
        let seed = base.wrapping_add(k.wrapping_mul(0x9E37_79B9));
        let sink = TraceSink::new(NPROCS);
        let out = service_run(Some(soup(seed)), Some(&sink));
        let first = out[0].as_ref().unwrap_or_else(|e| {
            panic!("seed {seed:#x}: rank 0 failed under recoverable soup: {e}")
        });
        for (rank, r) in out.iter().enumerate() {
            let (d, _, aborted, n) = r
                .as_ref()
                .unwrap_or_else(|e| panic!("seed {seed:#x}: rank {rank} failed: {e}"));
            assert_eq!(*n, total, "seed {seed:#x}: rank {rank} lost outcomes");
            assert_eq!(*aborted, 0, "seed {seed:#x}: rank {rank} aborted work");
            assert_eq!(
                d, &first.0,
                "seed {seed:#x}: rank {rank} diverged from rank 0"
            );
        }
        // The live trace must satisfy every analyzer rule — including the
        // session-isolation ledger and cache-coherence checks, with the
        // reliability layer's retransmit/dedup noise in the lanes.
        let trace = Trace::from_events_json(&sink.take().to_events_json()).unwrap();
        let report = analyze(&trace);
        assert!(
            report.clean(),
            "seed {seed:#x}: soak trace flagged: {report}"
        );
        assert!(
            report.session_requests > 0,
            "seed {seed:#x}: no sessions checked"
        );
    }
}

#[test]
fn same_seed_replays_the_same_service_decisions() {
    let seed = msg_seed();
    let a = service_run(Some(soup(seed)), None);
    let b = service_run(Some(soup(seed)), None);
    assert_eq!(a, b, "seed {seed:#x} must replay identically");
}

#[test]
fn killed_rank_degrades_loudly_but_never_hangs() {
    let total = arrivals().len();
    let base = msg_seed();

    // Reference: the same machine with the reliability stack engaged but
    // an inert plan — what the service decides when no fault ever fires.
    let reference = service_run(Some(MsgFaultPlan::seeded(base)), None);
    let ref_digest = &reference[0].as_ref().expect("inert plan must succeed").0;

    let mut degraded_runs = 0;
    let mut clean_runs = 0;
    for k in [0u64, 8, 64, 1 << 40] {
        let plan = MsgFaultPlan::seeded(base ^ k).kill_at(0, k);
        let sink = TraceSink::new(NPROCS);
        // Finishing at all is the headline assertion: a dead data plane
        // must convert into failover, failed requests, or a loud abort —
        // not a wedged collective.
        let out = service_run(Some(plan), Some(&sink));
        let mut differs = false;
        let mut aborted_any = false;
        for (rank, r) in out.iter().enumerate() {
            if let Ok((d, _, aborted, n)) = r {
                assert_eq!(
                    *n, total,
                    "kill at {k}: rank {rank} lost outcomes — every request \
                     gets exactly one disposition even when degrading"
                );
                differs |= d != ref_digest;
                aborted_any |= *aborted > 0;
            }
            // An Err rank is acceptable under a kill: it failed loudly.
        }
        let errored = out.iter().any(|r| r.is_err());
        if differs || aborted_any || errored {
            degraded_runs += 1;
        } else {
            clean_runs += 1;
        }
        // Whatever happened, the trace must stay explicable: lost
        // admissions are excused by the suspected-peer relaxation, while
        // shed-request-served or stale-cache-hit hazards are never
        // acceptable, dead rank or not.
        let trace = Trace::from_events_json(&sink.take().to_events_json()).unwrap();
        let report = analyze(&trace);
        assert!(report.clean(), "kill at {k}: trace flagged: {report}");
    }
    assert!(
        degraded_runs > 0,
        "no kill ever perturbed the service — the sweep is vacuous"
    );
    assert!(
        clean_runs > 0,
        "every kill degraded — the sweep never tested the absorbed path"
    );
}

#[test]
fn fault_free_service_reports_are_identical_and_sheddless_only_by_policy() {
    let out = service_run(None, None);
    let first = out[0].as_ref().unwrap();
    for (rank, r) in out.iter().enumerate() {
        let (d, served, aborted, n) = r.as_ref().unwrap();
        assert_eq!(d, &first.0, "rank {rank} diverged without faults");
        assert_eq!(*aborted, 0);
        assert_eq!(*n, arrivals().len());
        assert!(*served > 0);
    }
    // Anything not served was shed by explicit policy, never dropped.
    let shed = first
        .0
        .iter()
        .filter(|(_, d)| d.starts_with("Shed"))
        .count();
    assert_eq!(
        first.1 as usize
            + shed
            + first
                .0
                .iter()
                .filter(|(_, d)| d.contains("ok: false"))
                .count(),
        arrivals().len(),
        "served + shed + failed must account for every request"
    );
    assert!(
        !first.0.iter().any(|(_, d)| d.contains("Aborted")),
        "a fault-free run must never abort a request"
    );
}
