//! Chaos sweep: crash-consistency of checkpointing under exhaustive
//! power-cut injection.
//!
//! The sweep learns how many PFS operations rank 0 issues during a small
//! three-generation checkpoint run, then replays the run once per
//! operation index K with a seeded "power cut" at K. Every replay must
//! terminate (no hangs — the dead rank's peers observe `PeerGone`
//! instead of blocking forever), and a restart on the surviving files
//! must restore the newest commit-sealed generation element-exact.
//!
//! Companion tests cover the other injectables end-to-end: transient
//! faults are retried to success under the PFS backoff policy, torn
//! writes are always caught by the commit seal (never silent
//! corruption), and two runs under the same fault seed produce
//! byte-identical traces.
//!
//! The fault seed honors `DSTREAMS_FAULT_SEED` so CI can sweep a small
//! seed matrix over the same tests.

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::{CheckpointManager, IStream, OStream};
use dstreams::machine::{CollectiveConfig, FaultPlan, Machine, MachineConfig};
use dstreams::pfs::Pfs;
use dstreams::trace::chrome::to_chrome_json;
use dstreams::trace::TraceSink;

const NPROCS: usize = 2;
const N: usize = 8;

fn layout() -> Layout {
    Layout::dense(N, NPROCS, DistKind::Block).unwrap()
}

fn fault_seed() -> u64 {
    std::env::var("DSTREAMS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00D5_EA11)
}

/// Run the three-generation checkpoint workload, tolerating injected
/// failures. Per rank: (generations whose save completed on that rank,
/// PFS ops the rank issued, error that stopped it, if any).
fn checkpoint_run(pfs: &Pfs, config: MachineConfig) -> Vec<(Vec<u64>, u64, Option<String>)> {
    let p = pfs.clone();
    Machine::run(config, move |ctx| {
        let l = layout();
        let mgr = CheckpointManager::new("ck", 2);
        let mut g = Collection::new(ctx, l.clone(), |i| i as u64).unwrap();
        let mut completed = Vec::new();
        let mut err = None;
        for step in 1..=3u64 {
            g.apply(|v| *v += 100);
            match mgr.save(ctx, &p, &g, step) {
                Ok(()) => completed.push(step),
                Err(e) => {
                    err = Some(e.to_string());
                    break;
                }
            }
        }
        (completed, ctx.pfs_op_count(), err)
    })
    .unwrap()
}

/// Restart on whatever files survived; per rank, the generation restored
/// (element-exactness is asserted inside).
fn restore_run(pfs: &Pfs, k: u64) -> Vec<Option<u64>> {
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(NPROCS), move |ctx| {
        let l = layout();
        let mgr = CheckpointManager::new("ck", 2);
        let mut g = Collection::new(ctx, l.clone(), |_| 0u64).unwrap();
        match mgr.restore_latest(ctx, &p, &l, &mut g) {
            Ok(generation) => {
                for (gid, v) in g.iter() {
                    assert_eq!(
                        *v,
                        gid as u64 + 100 * generation,
                        "crash at op {k}: generation {generation} not element-exact"
                    );
                }
                Some(generation)
            }
            Err(_) => None,
        }
    })
    .unwrap()
}

#[test]
fn crash_sweep_recovers_newest_sealed_generation() {
    // Clean run: establish the baseline and rank 0's operation count.
    let clean = checkpoint_run(&Pfs::in_memory(NPROCS), MachineConfig::functional(NPROCS));
    assert_eq!(clean[0].0, vec![1, 2, 3]);
    assert!(clean[0].2.is_none(), "clean run failed: {:?}", clean[0].2);
    let total_ops = clean[0].1;
    assert!(total_ops > 0);

    let seed = fault_seed();
    let mut crashed_runs = 0;
    for k in 0..total_ops {
        let pfs = Pfs::in_memory(NPROCS);
        let plan = FaultPlan::seeded(seed ^ k).crash_at(0, k);
        let out = checkpoint_run(&pfs, MachineConfig::functional(NPROCS).with_faults(plan));
        let (completed, _, err) = &out[0];
        if err.is_some() {
            crashed_runs += 1;
        }

        let restored = restore_run(&pfs, k);
        assert!(
            restored.windows(2).all(|w| w[0] == w[1]),
            "crash at op {k}: ranks disagree on the restored generation: {restored:?}"
        );
        // Saves that completed on rank 0 (the root does the physical
        // writes) are durable: restart must recover one at least as new.
        if let Some(&gen) = completed.last() {
            match restored[0] {
                Some(r) => assert!(
                    r >= gen,
                    "crash at op {k}: restored generation {r} is older than completed {gen}"
                ),
                None => {
                    panic!("crash at op {k}: nothing restored though generation {gen} completed")
                }
            }
        }
    }
    assert!(crashed_runs > 0, "the sweep never actually crashed a run");
}

#[test]
fn same_fault_seed_traces_byte_identically() {
    let clean = checkpoint_run(&Pfs::in_memory(NPROCS), MachineConfig::functional(NPROCS));
    let k = clean[0].1 / 2;
    let seed = fault_seed();
    let run = || {
        let sink = TraceSink::new(NPROCS);
        let pfs = Pfs::in_memory(NPROCS);
        let plan = FaultPlan::seeded(seed).crash_at(0, k);
        let _ = checkpoint_run(
            &pfs,
            MachineConfig::functional(NPROCS)
                .with_faults(plan)
                .traced(sink.clone()),
        );
        to_chrome_json(&sink.take())
    };
    let a = run();
    assert_eq!(a, run(), "same fault seed must replay bit-identically");
    assert!(
        a.contains("fault.crash"),
        "the injected crash never reached the trace layer"
    );
}

#[test]
fn transient_faults_are_retried_to_success() {
    let sink = TraceSink::new(NPROCS);
    let pfs = Pfs::in_memory(NPROCS);
    // Transient failures sprinkled across both ranks' op streams: each
    // fails exactly once and succeeds on retry, so the workload must
    // complete as if nothing happened.
    let plan = FaultPlan::seeded(fault_seed())
        .transient_at(0, 1)
        .transient_at(0, 4)
        .transient_at(1, 2);
    let out = checkpoint_run(
        &pfs,
        MachineConfig::functional(NPROCS)
            .with_faults(plan)
            .traced(sink.clone()),
    );
    for (rank, (completed, _, err)) in out.iter().enumerate() {
        assert_eq!(err, &None, "rank {rank} failed despite retries");
        assert_eq!(completed, &vec![1, 2, 3], "rank {rank} lost generations");
    }
    let restored = restore_run(&pfs, u64::MAX);
    assert_eq!(restored, vec![Some(3); NPROCS]);
    let json = to_chrome_json(&sink.take());
    assert!(json.contains("fault.transient"), "no transient fault fired");
    assert!(json.contains("pfs.retry"), "no retry was traced");
}

#[test]
fn torn_writes_never_pass_off_corrupt_data_as_good() {
    // Baseline: count rank 0's ops for a single-record write, and the
    // expected contents.
    let write_file = |pfs: &Pfs, plan: Option<FaultPlan>| -> Vec<(u64, Option<String>)> {
        let p = pfs.clone();
        let config = match plan {
            Some(plan) => MachineConfig::functional(NPROCS).with_faults(plan),
            None => MachineConfig::functional(NPROCS),
        };
        Machine::run(config, move |ctx| {
            let l = layout();
            let g = Collection::new(ctx, l.clone(), |i| i as u32 * 3).unwrap();
            let res = (|| {
                let mut s = OStream::create(ctx, &p, &l, "t")?;
                s.insert_collection(&g)?;
                s.write()?;
                s.close()
            })();
            (ctx.pfs_op_count(), res.err().map(|e| e.to_string()))
        })
        .unwrap()
    };
    let clean = write_file(&Pfs::in_memory(NPROCS), None);
    let total_ops = clean.iter().map(|(n, _)| *n).max().unwrap();
    assert!(clean.iter().all(|(_, e)| e.is_none()));

    let seed = fault_seed();
    let mut caught = 0;
    for rank in 0..NPROCS {
        for k in 0..total_ops {
            let pfs = Pfs::in_memory(NPROCS);
            let plan = FaultPlan::seeded(seed ^ (rank as u64) << 32 ^ k).torn_at(rank, k);
            let wrote = write_file(&pfs, Some(plan));
            if wrote.iter().any(|(_, e)| e.is_some()) {
                // A torn metadata write can surface already at write time
                // (e.g. a short file seen by a later step) — acceptable,
                // as long as it surfaces.
                caught += 1;
                continue;
            }
            // The write "succeeded". Reading back must either produce
            // exactly the written data or fail loudly — never succeed
            // with corrupt contents.
            let p = pfs.clone();
            let verdicts = Machine::run(MachineConfig::functional(NPROCS), move |ctx| {
                let l = layout();
                let mut g = Collection::new(ctx, l.clone(), |_| 0u32).unwrap();
                let res = (|| {
                    let mut r = IStream::open(ctx, &p, &l, "t")?;
                    r.read()?;
                    r.extract_collection(&mut g)?;
                    r.close()
                })();
                match res {
                    Ok(()) => {
                        for (gid, v) in g.iter() {
                            assert_eq!(
                                *v,
                                gid as u32 * 3,
                                "torn write at rank {}, op {k}: corrupt data passed \
                                 verification",
                                ctx.rank()
                            );
                        }
                        false
                    }
                    Err(_) => true,
                }
            })
            .unwrap();
            assert!(
                verdicts.windows(2).all(|w| w[0] == w[1]),
                "torn write at rank {rank}, op {k}: ranks disagree"
            );
            if verdicts[0] {
                caught += 1;
            }
        }
    }
    assert!(
        caught > 0,
        "no torn write was ever detected — vacuous sweep"
    );
}

/// With two ranks and one aggregator, rank 0 is the aggregator (and
/// root) and rank 1 a pure compute rank — the sweep crashes both kinds.
fn aggregated() -> CollectiveConfig {
    CollectiveConfig {
        aggregators: 1,
        stripe_align: true,
    }
}

#[test]
fn aggregated_crash_sweep_recovers_newest_sealed_generation() {
    let clean = checkpoint_run(
        &Pfs::in_memory(NPROCS),
        MachineConfig::functional(NPROCS).with_collective(aggregated()),
    );
    assert_eq!(clean[0].0, vec![1, 2, 3]);
    assert!(clean[0].2.is_none(), "clean run failed: {:?}", clean[0].2);
    let total_ops = clean.iter().map(|(_, n, _)| *n).max().unwrap();
    assert!(total_ops > 0);

    let seed = fault_seed();
    let mut crashed_runs = 0;
    for rank in 0..NPROCS {
        for k in 0..total_ops {
            let pfs = Pfs::in_memory(NPROCS);
            let plan = FaultPlan::seeded(seed ^ ((rank as u64) << 32) ^ k).crash_at(rank, k);
            let out = checkpoint_run(
                &pfs,
                MachineConfig::functional(NPROCS)
                    .with_faults(plan)
                    .with_collective(aggregated()),
            );
            if out.iter().any(|(_, _, e)| e.is_some()) {
                crashed_runs += 1;
            }

            let restored = restore_run(&pfs, k);
            assert!(
                restored.windows(2).all(|w| w[0] == w[1]),
                "aggregated crash of rank {rank} at op {k}: ranks disagree on the \
                 restored generation: {restored:?}"
            );
            // A generation is durable only once *every* rank finished its
            // save: a peer crash makes survivors complete the collective
            // but suppresses the commit seal, so a save that returned Ok
            // on the survivors alone may legitimately be truncated away.
            let durable = out
                .iter()
                .map(|(completed, _, _)| completed.last().copied())
                .min()
                .flatten();
            if let Some(gen) = durable {
                match restored[0] {
                    Some(r) => assert!(
                        r >= gen,
                        "crash of rank {rank} at op {k}: restored generation {r} is \
                         older than the everywhere-completed {gen}"
                    ),
                    None => panic!(
                        "crash of rank {rank} at op {k}: nothing restored though \
                         generation {gen} completed on every rank"
                    ),
                }
            }
        }
    }
    assert!(crashed_runs > 0, "the sweep never actually crashed a run");
}

#[test]
fn aggregated_runs_trace_byte_identically_per_seed() {
    let clean = checkpoint_run(
        &Pfs::in_memory(NPROCS),
        MachineConfig::functional(NPROCS).with_collective(aggregated()),
    );
    // Crash the *compute* rank mid-run: the aggregator survives and must
    // deterministically absorb the zero-padded shuttle traffic.
    let k = clean[1].1 / 2;
    let seed = fault_seed();
    let run = || {
        let sink = TraceSink::new(NPROCS);
        let pfs = Pfs::in_memory(NPROCS);
        let plan = FaultPlan::seeded(seed).crash_at(1, k);
        let _ = checkpoint_run(
            &pfs,
            MachineConfig::functional(NPROCS)
                .with_faults(plan)
                .with_collective(aggregated())
                .traced(sink.clone()),
        );
        to_chrome_json(&sink.take())
    };
    let a = run();
    assert_eq!(a, run(), "same fault seed must replay bit-identically");
    assert!(
        a.contains("agg.shuttle_out") && a.contains("agg.shuttle_in"),
        "the aggregated path never shipped a shuttle"
    );
    assert!(
        a.contains("fault.crash"),
        "the injected crash never reached the trace layer"
    );
}

/// The pipelined (write-behind) checkpoint workload: three records
/// through `pipeline::OStream`, so a crash can land while a flush is
/// still in flight. Per rank: (PFS ops issued, error, if any).
fn pipelined_write_run(pfs: &Pfs, config: MachineConfig) -> Vec<(u64, Option<String>)> {
    let p = pfs.clone();
    Machine::run(config, move |ctx| {
        let l = layout();
        let res = (|| -> Result<(), dstreams::core::StreamError> {
            let mut s = dstreams::pipeline::OStream::create(ctx, &p, &l, "pp")?;
            for step in 0..3u64 {
                let g = Collection::new(ctx, l.clone(), |i| i as u64 + 1000 * step)?;
                s.insert_collection(&g)?;
                s.write()?;
            }
            s.close()
        })();
        (ctx.pfs_op_count(), res.err().map(|e| e.to_string()))
    })
    .unwrap()
}

#[test]
fn pipelined_crash_sweep_recovers_a_sealed_prefix() {
    let clean = pipelined_write_run(&Pfs::in_memory(NPROCS), MachineConfig::functional(NPROCS));
    assert!(clean.iter().all(|(_, e)| e.is_none()), "{clean:?}");
    let total_ops = clean.iter().map(|(n, _)| *n).max().unwrap();
    assert!(total_ops > 0);

    let seed = fault_seed();
    let mut crashed_runs = 0;
    let mut partial_prefixes = 0;
    for k in 0..total_ops {
        let pfs = Pfs::in_memory(NPROCS);
        let plan = FaultPlan::seeded(seed ^ k).crash_at(0, k);
        let out = pipelined_write_run(&pfs, MachineConfig::functional(NPROCS).with_faults(plan));
        if out.iter().any(|(_, e)| e.is_some()) {
            crashed_runs += 1;
        }

        // Recover whatever survived: the sealed prefix must scan cleanly
        // and read back element-exact, record by record.
        if pfs.file_size("pp").is_err() {
            continue; // crashed before the file header landed
        }
        let p = pfs.clone();
        let sealed = Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p.open(false, "pp", dstreams::pfs::OpenMode::Read).unwrap();
            let mut bytes = vec![0u8; fh.len() as usize];
            fh.read_at(ctx, 0, &mut bytes).unwrap();
            let report = dstreams::core::recovery_scan(&bytes)
                .unwrap_or_else(|e| panic!("crash at op {k}: recovery scan failed: {e}"));
            bytes.truncate(report.sealed_bytes as usize);
            (report.sealed_records, bytes)
        })
        .unwrap()
        .remove(0);
        let (sealed_records, bytes) = sealed;
        if sealed_records < 3 {
            partial_prefixes += 1;
        }

        let p2 = Pfs::in_memory(NPROCS);
        let pc = p2.clone();
        Machine::run(MachineConfig::functional(NPROCS), move |ctx| {
            if ctx.is_root() {
                let fh = pc
                    .open(true, "rec", dstreams::pfs::OpenMode::Create)
                    .unwrap();
                fh.write_at(ctx, 0, &bytes).unwrap();
            }
            ctx.barrier().unwrap();
            if sealed_records == 0 {
                return; // header-only prefix: nothing to read back
            }
            let l = layout();
            let mut r = IStream::open(ctx, &pc, &l, "rec")
                .unwrap_or_else(|e| panic!("crash at op {k}: sealed prefix unreadable: {e}"));
            for step in 0..sealed_records {
                let mut g = Collection::new(ctx, l.clone(), |_| 0u64).unwrap();
                r.read().unwrap();
                r.extract_collection(&mut g).unwrap();
                for (gid, v) in g.iter() {
                    assert_eq!(
                        *v,
                        gid as u64 + 1000 * step as u64,
                        "crash at op {k}: sealed record {step} corrupt"
                    );
                }
            }
            r.close().unwrap();
        })
        .unwrap();
    }
    assert!(crashed_runs > 0, "the sweep never actually crashed a run");
    assert!(
        partial_prefixes > 0,
        "no crash ever landed mid-stream — vacuous sweep"
    );
}

#[test]
fn pipelined_runs_trace_byte_identically_per_seed() {
    let clean = pipelined_write_run(&Pfs::in_memory(NPROCS), MachineConfig::functional(NPROCS));
    let k = clean[0].0 / 2;
    let seed = fault_seed();
    let run = || {
        let sink = TraceSink::new(NPROCS);
        let pfs = Pfs::in_memory(NPROCS);
        let plan = FaultPlan::seeded(seed).crash_at(0, k);
        let _ = pipelined_write_run(
            &pfs,
            MachineConfig::functional(NPROCS)
                .with_faults(plan)
                .traced(sink.clone()),
        );
        to_chrome_json(&sink.take())
    };
    let a = run();
    assert_eq!(a, run(), "same fault seed must replay bit-identically");
    assert!(
        a.contains("async.submit"),
        "the pipelined workload never submitted an async op"
    );
}
