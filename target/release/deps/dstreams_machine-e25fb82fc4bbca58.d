/root/repo/target/release/deps/dstreams_machine-e25fb82fc4bbca58.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/config.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/message.rs crates/machine/src/node.rs crates/machine/src/shared.rs crates/machine/src/time.rs crates/machine/src/wire.rs

/root/repo/target/release/deps/libdstreams_machine-e25fb82fc4bbca58.rlib: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/config.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/message.rs crates/machine/src/node.rs crates/machine/src/shared.rs crates/machine/src/time.rs crates/machine/src/wire.rs

/root/repo/target/release/deps/libdstreams_machine-e25fb82fc4bbca58.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/config.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/message.rs crates/machine/src/node.rs crates/machine/src/shared.rs crates/machine/src/time.rs crates/machine/src/wire.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/config.rs:
crates/machine/src/error.rs:
crates/machine/src/fault.rs:
crates/machine/src/machine.rs:
crates/machine/src/message.rs:
crates/machine/src/node.rs:
crates/machine/src/shared.rs:
crates/machine/src/time.rs:
crates/machine/src/wire.rs:
