/root/repo/target/release/deps/dstreams_bench-e90474e70a49a7e6.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdstreams_bench-e90474e70a49a7e6.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdstreams_bench-e90474e70a49a7e6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
