/root/repo/target/release/deps/dstreams_machine-b6db64b55ecda74a.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/config.rs crates/machine/src/error.rs crates/machine/src/machine.rs crates/machine/src/message.rs crates/machine/src/node.rs crates/machine/src/shared.rs crates/machine/src/time.rs crates/machine/src/wire.rs

/root/repo/target/release/deps/libdstreams_machine-b6db64b55ecda74a.rlib: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/config.rs crates/machine/src/error.rs crates/machine/src/machine.rs crates/machine/src/message.rs crates/machine/src/node.rs crates/machine/src/shared.rs crates/machine/src/time.rs crates/machine/src/wire.rs

/root/repo/target/release/deps/libdstreams_machine-b6db64b55ecda74a.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/config.rs crates/machine/src/error.rs crates/machine/src/machine.rs crates/machine/src/message.rs crates/machine/src/node.rs crates/machine/src/shared.rs crates/machine/src/time.rs crates/machine/src/wire.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/config.rs:
crates/machine/src/error.rs:
crates/machine/src/machine.rs:
crates/machine/src/message.rs:
crates/machine/src/node.rs:
crates/machine/src/shared.rs:
crates/machine/src/time.rs:
crates/machine/src/wire.rs:
