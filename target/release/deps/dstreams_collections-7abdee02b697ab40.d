/root/repo/target/release/deps/dstreams_collections-7abdee02b697ab40.d: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

/root/repo/target/release/deps/libdstreams_collections-7abdee02b697ab40.rlib: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

/root/repo/target/release/deps/libdstreams_collections-7abdee02b697ab40.rmeta: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

crates/collections/src/lib.rs:
crates/collections/src/alignment.rs:
crates/collections/src/collection.rs:
crates/collections/src/distribution.rs:
crates/collections/src/error.rs:
crates/collections/src/grid.rs:
crates/collections/src/layout.rs:
