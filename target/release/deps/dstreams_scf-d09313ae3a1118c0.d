/root/repo/target/release/deps/dstreams_scf-d09313ae3a1118c0.d: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs

/root/repo/target/release/deps/libdstreams_scf-d09313ae3a1118c0.rlib: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs

/root/repo/target/release/deps/libdstreams_scf-d09313ae3a1118c0.rmeta: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs

crates/scf/src/lib.rs:
crates/scf/src/driver.rs:
crates/scf/src/methods.rs:
crates/scf/src/physics.rs:
crates/scf/src/segment.rs:
crates/scf/src/solver.rs:
crates/scf/src/tables.rs:
crates/scf/src/workload.rs:
