/root/repo/target/release/deps/dstreams-a67a3802d226b9c5.d: src/lib.rs

/root/repo/target/release/deps/libdstreams-a67a3802d226b9c5.rlib: src/lib.rs

/root/repo/target/release/deps/libdstreams-a67a3802d226b9c5.rmeta: src/lib.rs

src/lib.rs:
