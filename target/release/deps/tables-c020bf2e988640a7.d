/root/repo/target/release/deps/tables-c020bf2e988640a7.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-c020bf2e988640a7: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
