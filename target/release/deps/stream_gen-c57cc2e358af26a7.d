/root/repo/target/release/deps/stream_gen-c57cc2e358af26a7.d: crates/streamgen/src/main.rs

/root/repo/target/release/deps/stream_gen-c57cc2e358af26a7: crates/streamgen/src/main.rs

crates/streamgen/src/main.rs:
