/root/repo/target/release/deps/dstreams_collections-db94e1f48e051dd4.d: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

/root/repo/target/release/deps/libdstreams_collections-db94e1f48e051dd4.rlib: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

/root/repo/target/release/deps/libdstreams_collections-db94e1f48e051dd4.rmeta: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

crates/collections/src/lib.rs:
crates/collections/src/alignment.rs:
crates/collections/src/collection.rs:
crates/collections/src/distribution.rs:
crates/collections/src/error.rs:
crates/collections/src/grid.rs:
crates/collections/src/layout.rs:
