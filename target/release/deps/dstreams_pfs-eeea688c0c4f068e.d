/root/repo/target/release/deps/dstreams_pfs-eeea688c0c4f068e.d: crates/pfs/src/lib.rs crates/pfs/src/checksum.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/retry.rs crates/pfs/src/storage.rs

/root/repo/target/release/deps/libdstreams_pfs-eeea688c0c4f068e.rlib: crates/pfs/src/lib.rs crates/pfs/src/checksum.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/retry.rs crates/pfs/src/storage.rs

/root/repo/target/release/deps/libdstreams_pfs-eeea688c0c4f068e.rmeta: crates/pfs/src/lib.rs crates/pfs/src/checksum.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/retry.rs crates/pfs/src/storage.rs

crates/pfs/src/lib.rs:
crates/pfs/src/checksum.rs:
crates/pfs/src/error.rs:
crates/pfs/src/file.rs:
crates/pfs/src/model.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/retry.rs:
crates/pfs/src/storage.rs:
