/root/repo/target/release/deps/dstreams_core-a7290aa35f1b81ab.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/data.rs crates/core/src/error.rs crates/core/src/format.rs crates/core/src/inspect.rs crates/core/src/istream.rs crates/core/src/localio.rs crates/core/src/ostream.rs crates/core/src/phase.rs

/root/repo/target/release/deps/libdstreams_core-a7290aa35f1b81ab.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/data.rs crates/core/src/error.rs crates/core/src/format.rs crates/core/src/inspect.rs crates/core/src/istream.rs crates/core/src/localio.rs crates/core/src/ostream.rs crates/core/src/phase.rs

/root/repo/target/release/deps/libdstreams_core-a7290aa35f1b81ab.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/data.rs crates/core/src/error.rs crates/core/src/format.rs crates/core/src/inspect.rs crates/core/src/istream.rs crates/core/src/localio.rs crates/core/src/ostream.rs crates/core/src/phase.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/data.rs:
crates/core/src/error.rs:
crates/core/src/format.rs:
crates/core/src/inspect.rs:
crates/core/src/istream.rs:
crates/core/src/localio.rs:
crates/core/src/ostream.rs:
crates/core/src/phase.rs:
