/root/repo/target/release/deps/dstreams_streamgen-a56d84abc4968062.d: crates/streamgen/src/lib.rs crates/streamgen/src/ast.rs crates/streamgen/src/codegen.rs crates/streamgen/src/lexer.rs crates/streamgen/src/parser.rs crates/streamgen/src/sema.rs

/root/repo/target/release/deps/libdstreams_streamgen-a56d84abc4968062.rlib: crates/streamgen/src/lib.rs crates/streamgen/src/ast.rs crates/streamgen/src/codegen.rs crates/streamgen/src/lexer.rs crates/streamgen/src/parser.rs crates/streamgen/src/sema.rs

/root/repo/target/release/deps/libdstreams_streamgen-a56d84abc4968062.rmeta: crates/streamgen/src/lib.rs crates/streamgen/src/ast.rs crates/streamgen/src/codegen.rs crates/streamgen/src/lexer.rs crates/streamgen/src/parser.rs crates/streamgen/src/sema.rs

crates/streamgen/src/lib.rs:
crates/streamgen/src/ast.rs:
crates/streamgen/src/codegen.rs:
crates/streamgen/src/lexer.rs:
crates/streamgen/src/parser.rs:
crates/streamgen/src/sema.rs:
