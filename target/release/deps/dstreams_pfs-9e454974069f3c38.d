/root/repo/target/release/deps/dstreams_pfs-9e454974069f3c38.d: crates/pfs/src/lib.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/storage.rs

/root/repo/target/release/deps/libdstreams_pfs-9e454974069f3c38.rlib: crates/pfs/src/lib.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/storage.rs

/root/repo/target/release/deps/libdstreams_pfs-9e454974069f3c38.rmeta: crates/pfs/src/lib.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/storage.rs

crates/pfs/src/lib.rs:
crates/pfs/src/error.rs:
crates/pfs/src/file.rs:
crates/pfs/src/model.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/storage.rs:
