/root/repo/target/release/deps/dstreams_bench-ace9c0fc6d532d13.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdstreams_bench-ace9c0fc6d532d13.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdstreams_bench-ace9c0fc6d532d13.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
