/root/repo/target/release/deps/dstreams-fa79ca75aa90b1db.d: src/lib.rs

/root/repo/target/release/deps/libdstreams-fa79ca75aa90b1db.rlib: src/lib.rs

/root/repo/target/release/deps/libdstreams-fa79ca75aa90b1db.rmeta: src/lib.rs

src/lib.rs:
