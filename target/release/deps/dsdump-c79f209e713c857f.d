/root/repo/target/release/deps/dsdump-c79f209e713c857f.d: crates/core/src/bin/dsdump.rs

/root/repo/target/release/deps/dsdump-c79f209e713c857f: crates/core/src/bin/dsdump.rs

crates/core/src/bin/dsdump.rs:
