/root/repo/target/release/deps/dstreams_trace-333ed28b6d2746b4.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/counts.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/libdstreams_trace-333ed28b6d2746b4.rlib: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/counts.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/sink.rs

/root/repo/target/release/deps/libdstreams_trace-333ed28b6d2746b4.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/counts.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/counts.rs:
crates/trace/src/event.rs:
crates/trace/src/json.rs:
crates/trace/src/sink.rs:
