/root/repo/target/release/deps/dsdump-447f61530f97aff7.d: crates/core/src/bin/dsdump.rs

/root/repo/target/release/deps/dsdump-447f61530f97aff7: crates/core/src/bin/dsdump.rs

crates/core/src/bin/dsdump.rs:
