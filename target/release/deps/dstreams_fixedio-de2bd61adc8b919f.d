/root/repo/target/release/deps/dstreams_fixedio-de2bd61adc8b919f.d: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

/root/repo/target/release/deps/libdstreams_fixedio-de2bd61adc8b919f.rlib: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

/root/repo/target/release/deps/libdstreams_fixedio-de2bd61adc8b919f.rmeta: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

crates/fixedio/src/lib.rs:
crates/fixedio/src/chameleon.rs:
crates/fixedio/src/panda.rs:
