/root/repo/target/release/deps/tables-424d65f3388479de.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-424d65f3388479de: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
