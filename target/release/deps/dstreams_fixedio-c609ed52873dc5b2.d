/root/repo/target/release/deps/dstreams_fixedio-c609ed52873dc5b2.d: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

/root/repo/target/release/deps/libdstreams_fixedio-c609ed52873dc5b2.rlib: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

/root/repo/target/release/deps/libdstreams_fixedio-c609ed52873dc5b2.rmeta: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

crates/fixedio/src/lib.rs:
crates/fixedio/src/chameleon.rs:
crates/fixedio/src/panda.rs:
