/root/repo/target/debug/examples/checkpoint_restart-ef8e1ce81f1a5df8.d: examples/checkpoint_restart.rs

/root/repo/target/debug/examples/checkpoint_restart-ef8e1ce81f1a5df8: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
