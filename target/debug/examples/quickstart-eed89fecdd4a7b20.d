/root/repo/target/debug/examples/quickstart-eed89fecdd4a7b20.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-eed89fecdd4a7b20: examples/quickstart.rs

examples/quickstart.rs:
