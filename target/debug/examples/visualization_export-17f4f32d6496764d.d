/root/repo/target/debug/examples/visualization_export-17f4f32d6496764d.d: examples/visualization_export.rs

/root/repo/target/debug/examples/visualization_export-17f4f32d6496764d: examples/visualization_export.rs

examples/visualization_export.rs:
