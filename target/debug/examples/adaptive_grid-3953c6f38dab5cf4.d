/root/repo/target/debug/examples/adaptive_grid-3953c6f38dab5cf4.d: examples/adaptive_grid.rs

/root/repo/target/debug/examples/adaptive_grid-3953c6f38dab5cf4: examples/adaptive_grid.rs

examples/adaptive_grid.rs:
