/root/repo/target/debug/examples/fault_injection-542641444b483e7e.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-542641444b483e7e: examples/fault_injection.rs

examples/fault_injection.rs:
