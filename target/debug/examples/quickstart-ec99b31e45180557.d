/root/repo/target/debug/examples/quickstart-ec99b31e45180557.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ec99b31e45180557: examples/quickstart.rs

examples/quickstart.rs:
