/root/repo/target/debug/examples/adaptive_tree-7c9153b7e9163175.d: examples/adaptive_tree.rs

/root/repo/target/debug/examples/adaptive_tree-7c9153b7e9163175: examples/adaptive_tree.rs

examples/adaptive_tree.rs:
