/root/repo/target/debug/examples/adaptive_grid-d7cc2c9036fa048d.d: examples/adaptive_grid.rs

/root/repo/target/debug/examples/adaptive_grid-d7cc2c9036fa048d: examples/adaptive_grid.rs

examples/adaptive_grid.rs:
