/root/repo/target/debug/examples/visualization_export-aea6ae80cdedda93.d: examples/visualization_export.rs Cargo.toml

/root/repo/target/debug/examples/libvisualization_export-aea6ae80cdedda93.rmeta: examples/visualization_export.rs Cargo.toml

examples/visualization_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
