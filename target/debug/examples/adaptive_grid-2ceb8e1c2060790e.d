/root/repo/target/debug/examples/adaptive_grid-2ceb8e1c2060790e.d: examples/adaptive_grid.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_grid-2ceb8e1c2060790e.rmeta: examples/adaptive_grid.rs Cargo.toml

examples/adaptive_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
