/root/repo/target/debug/examples/_probe-67d19f32aee53c56.d: examples/_probe.rs

/root/repo/target/debug/examples/_probe-67d19f32aee53c56: examples/_probe.rs

examples/_probe.rs:
