/root/repo/target/debug/examples/debug_compare-1d160fc111e5a443.d: examples/debug_compare.rs

/root/repo/target/debug/examples/debug_compare-1d160fc111e5a443: examples/debug_compare.rs

examples/debug_compare.rs:
