/root/repo/target/debug/examples/adaptive_tree-d0308dcb26a8b16e.d: examples/adaptive_tree.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_tree-d0308dcb26a8b16e.rmeta: examples/adaptive_tree.rs Cargo.toml

examples/adaptive_tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
