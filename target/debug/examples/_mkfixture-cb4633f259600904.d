/root/repo/target/debug/examples/_mkfixture-cb4633f259600904.d: examples/_mkfixture.rs

/root/repo/target/debug/examples/_mkfixture-cb4633f259600904: examples/_mkfixture.rs

examples/_mkfixture.rs:
