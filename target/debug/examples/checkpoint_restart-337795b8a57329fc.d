/root/repo/target/debug/examples/checkpoint_restart-337795b8a57329fc.d: examples/checkpoint_restart.rs

/root/repo/target/debug/examples/checkpoint_restart-337795b8a57329fc: examples/checkpoint_restart.rs

examples/checkpoint_restart.rs:
