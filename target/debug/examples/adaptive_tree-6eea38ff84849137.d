/root/repo/target/debug/examples/adaptive_tree-6eea38ff84849137.d: examples/adaptive_tree.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_tree-6eea38ff84849137.rmeta: examples/adaptive_tree.rs Cargo.toml

examples/adaptive_tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
