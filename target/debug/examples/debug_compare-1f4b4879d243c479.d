/root/repo/target/debug/examples/debug_compare-1f4b4879d243c479.d: examples/debug_compare.rs Cargo.toml

/root/repo/target/debug/examples/libdebug_compare-1f4b4879d243c479.rmeta: examples/debug_compare.rs Cargo.toml

examples/debug_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
