/root/repo/target/debug/examples/fault_injection-d35e1f9e8537c511.d: examples/fault_injection.rs Cargo.toml

/root/repo/target/debug/examples/libfault_injection-d35e1f9e8537c511.rmeta: examples/fault_injection.rs Cargo.toml

examples/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
