/root/repo/target/debug/examples/visualization_export-764b2efb904cc39d.d: examples/visualization_export.rs

/root/repo/target/debug/examples/visualization_export-764b2efb904cc39d: examples/visualization_export.rs

examples/visualization_export.rs:
