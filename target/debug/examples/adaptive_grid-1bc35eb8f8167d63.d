/root/repo/target/debug/examples/adaptive_grid-1bc35eb8f8167d63.d: examples/adaptive_grid.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_grid-1bc35eb8f8167d63.rmeta: examples/adaptive_grid.rs Cargo.toml

examples/adaptive_grid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
