/root/repo/target/debug/examples/adaptive_tree-b8e8e7e62e1da037.d: examples/adaptive_tree.rs

/root/repo/target/debug/examples/adaptive_tree-b8e8e7e62e1da037: examples/adaptive_tree.rs

examples/adaptive_tree.rs:
