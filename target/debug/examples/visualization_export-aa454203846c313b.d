/root/repo/target/debug/examples/visualization_export-aa454203846c313b.d: examples/visualization_export.rs Cargo.toml

/root/repo/target/debug/examples/libvisualization_export-aa454203846c313b.rmeta: examples/visualization_export.rs Cargo.toml

examples/visualization_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
