/root/repo/target/debug/examples/debug_compare-66f6569a261a9eef.d: examples/debug_compare.rs

/root/repo/target/debug/examples/debug_compare-66f6569a261a9eef: examples/debug_compare.rs

examples/debug_compare.rs:
