/root/repo/target/debug/deps/dstreams_machine-47bad3462cc7a57f.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/config.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/message.rs crates/machine/src/node.rs crates/machine/src/shared.rs crates/machine/src/time.rs crates/machine/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_machine-47bad3462cc7a57f.rmeta: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/config.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/message.rs crates/machine/src/node.rs crates/machine/src/shared.rs crates/machine/src/time.rs crates/machine/src/wire.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/config.rs:
crates/machine/src/error.rs:
crates/machine/src/fault.rs:
crates/machine/src/machine.rs:
crates/machine/src/message.rs:
crates/machine/src/node.rs:
crates/machine/src/shared.rs:
crates/machine/src/time.rs:
crates/machine/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
