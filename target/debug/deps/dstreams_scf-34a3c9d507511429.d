/root/repo/target/debug/deps/dstreams_scf-34a3c9d507511429.d: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_scf-34a3c9d507511429.rmeta: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs Cargo.toml

crates/scf/src/lib.rs:
crates/scf/src/driver.rs:
crates/scf/src/methods.rs:
crates/scf/src/physics.rs:
crates/scf/src/segment.rs:
crates/scf/src/solver.rs:
crates/scf/src/tables.rs:
crates/scf/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
