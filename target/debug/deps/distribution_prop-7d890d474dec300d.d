/root/repo/target/debug/deps/distribution_prop-7d890d474dec300d.d: crates/collections/tests/distribution_prop.rs

/root/repo/target/debug/deps/distribution_prop-7d890d474dec300d: crates/collections/tests/distribution_prop.rs

crates/collections/tests/distribution_prop.rs:
