/root/repo/target/debug/deps/table_paragon-1a5b5d72fa4fce1d.d: crates/bench/benches/table_paragon.rs Cargo.toml

/root/repo/target/debug/deps/libtable_paragon-1a5b5d72fa4fce1d.rmeta: crates/bench/benches/table_paragon.rs Cargo.toml

crates/bench/benches/table_paragon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
