/root/repo/target/debug/deps/streamgen_roundtrip-55458408bca8a517.d: tests/streamgen_roundtrip.rs tests/generated_figure3.rs Cargo.toml

/root/repo/target/debug/deps/libstreamgen_roundtrip-55458408bca8a517.rmeta: tests/streamgen_roundtrip.rs tests/generated_figure3.rs Cargo.toml

tests/streamgen_roundtrip.rs:
tests/generated_figure3.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
