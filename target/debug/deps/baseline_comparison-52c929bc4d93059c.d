/root/repo/target/debug/deps/baseline_comparison-52c929bc4d93059c.d: tests/baseline_comparison.rs

/root/repo/target/debug/deps/baseline_comparison-52c929bc4d93059c: tests/baseline_comparison.rs

tests/baseline_comparison.rs:
