/root/repo/target/debug/deps/stream_gen-f498d14e79c8784e.d: crates/streamgen/src/main.rs

/root/repo/target/debug/deps/stream_gen-f498d14e79c8784e: crates/streamgen/src/main.rs

crates/streamgen/src/main.rs:
