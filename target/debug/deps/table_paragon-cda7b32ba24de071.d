/root/repo/target/debug/deps/table_paragon-cda7b32ba24de071.d: crates/bench/benches/table_paragon.rs Cargo.toml

/root/repo/target/debug/deps/libtable_paragon-cda7b32ba24de071.rmeta: crates/bench/benches/table_paragon.rs Cargo.toml

crates/bench/benches/table_paragon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
