/root/repo/target/debug/deps/dstreams_core-e18f09aba607458f.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/data.rs crates/core/src/error.rs crates/core/src/format.rs crates/core/src/inspect.rs crates/core/src/istream.rs crates/core/src/localio.rs crates/core/src/ostream.rs crates/core/src/phase.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_core-e18f09aba607458f.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/data.rs crates/core/src/error.rs crates/core/src/format.rs crates/core/src/inspect.rs crates/core/src/istream.rs crates/core/src/localio.rs crates/core/src/ostream.rs crates/core/src/phase.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/data.rs:
crates/core/src/error.rs:
crates/core/src/format.rs:
crates/core/src/inspect.rs:
crates/core/src/istream.rs:
crates/core/src/localio.rs:
crates/core/src/ostream.rs:
crates/core/src/phase.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
