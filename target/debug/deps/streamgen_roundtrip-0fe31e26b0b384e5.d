/root/repo/target/debug/deps/streamgen_roundtrip-0fe31e26b0b384e5.d: tests/streamgen_roundtrip.rs tests/generated_figure3.rs

/root/repo/target/debug/deps/streamgen_roundtrip-0fe31e26b0b384e5: tests/streamgen_roundtrip.rs tests/generated_figure3.rs

tests/streamgen_roundtrip.rs:
tests/generated_figure3.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
