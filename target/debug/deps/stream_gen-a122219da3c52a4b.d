/root/repo/target/debug/deps/stream_gen-a122219da3c52a4b.d: crates/streamgen/src/main.rs

/root/repo/target/debug/deps/stream_gen-a122219da3c52a4b: crates/streamgen/src/main.rs

crates/streamgen/src/main.rs:
