/root/repo/target/debug/deps/proptest_roundtrip-dd5ae6143dd4fe93.d: tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-dd5ae6143dd4fe93: tests/proptest_roundtrip.rs

tests/proptest_roundtrip.rs:
