/root/repo/target/debug/deps/io_modes-93c6d27860634cea.d: crates/pfs/tests/io_modes.rs

/root/repo/target/debug/deps/io_modes-93c6d27860634cea: crates/pfs/tests/io_modes.rs

crates/pfs/tests/io_modes.rs:
