/root/repo/target/debug/deps/dstreams-5763118c76b3c0e2.d: src/lib.rs

/root/repo/target/debug/deps/libdstreams-5763118c76b3c0e2.rlib: src/lib.rs

/root/repo/target/debug/deps/libdstreams-5763118c76b3c0e2.rmeta: src/lib.rs

src/lib.rs:
