/root/repo/target/debug/deps/ablation_interleave-01910ba01c714893.d: crates/bench/benches/ablation_interleave.rs Cargo.toml

/root/repo/target/debug/deps/libablation_interleave-01910ba01c714893.rmeta: crates/bench/benches/ablation_interleave.rs Cargo.toml

crates/bench/benches/ablation_interleave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
