/root/repo/target/debug/deps/dstreams_bench-415c49e581aa20bb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dstreams_bench-415c49e581aa20bb: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
