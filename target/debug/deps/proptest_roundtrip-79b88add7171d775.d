/root/repo/target/debug/deps/proptest_roundtrip-79b88add7171d775.d: tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-79b88add7171d775: tests/proptest_roundtrip.rs

tests/proptest_roundtrip.rs:
