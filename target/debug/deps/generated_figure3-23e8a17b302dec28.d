/root/repo/target/debug/deps/generated_figure3-23e8a17b302dec28.d: tests/generated_figure3.rs

/root/repo/target/debug/deps/generated_figure3-23e8a17b302dec28: tests/generated_figure3.rs

tests/generated_figure3.rs:
