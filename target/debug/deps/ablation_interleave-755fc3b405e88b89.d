/root/repo/target/debug/deps/ablation_interleave-755fc3b405e88b89.d: crates/bench/benches/ablation_interleave.rs Cargo.toml

/root/repo/target/debug/deps/libablation_interleave-755fc3b405e88b89.rmeta: crates/bench/benches/ablation_interleave.rs Cargo.toml

crates/bench/benches/ablation_interleave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
