/root/repo/target/debug/deps/dstreams_streamgen-5ee995895309cf2b.d: crates/streamgen/src/lib.rs crates/streamgen/src/ast.rs crates/streamgen/src/codegen.rs crates/streamgen/src/lexer.rs crates/streamgen/src/parser.rs crates/streamgen/src/sema.rs

/root/repo/target/debug/deps/dstreams_streamgen-5ee995895309cf2b: crates/streamgen/src/lib.rs crates/streamgen/src/ast.rs crates/streamgen/src/codegen.rs crates/streamgen/src/lexer.rs crates/streamgen/src/parser.rs crates/streamgen/src/sema.rs

crates/streamgen/src/lib.rs:
crates/streamgen/src/ast.rs:
crates/streamgen/src/codegen.rs:
crates/streamgen/src/lexer.rs:
crates/streamgen/src/parser.rs:
crates/streamgen/src/sema.rs:
