/root/repo/target/debug/deps/stream_gen-d870b34c581c8299.d: crates/streamgen/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libstream_gen-d870b34c581c8299.rmeta: crates/streamgen/src/main.rs Cargo.toml

crates/streamgen/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
