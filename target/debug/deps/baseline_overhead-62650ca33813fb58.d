/root/repo/target/debug/deps/baseline_overhead-62650ca33813fb58.d: crates/bench/benches/baseline_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_overhead-62650ca33813fb58.rmeta: crates/bench/benches/baseline_overhead.rs Cargo.toml

crates/bench/benches/baseline_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
