/root/repo/target/debug/deps/dstreams_pfs-fc149e16f358bc14.d: crates/pfs/src/lib.rs crates/pfs/src/checksum.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/retry.rs crates/pfs/src/storage.rs

/root/repo/target/debug/deps/dstreams_pfs-fc149e16f358bc14: crates/pfs/src/lib.rs crates/pfs/src/checksum.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/retry.rs crates/pfs/src/storage.rs

crates/pfs/src/lib.rs:
crates/pfs/src/checksum.rs:
crates/pfs/src/error.rs:
crates/pfs/src/file.rs:
crates/pfs/src/model.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/retry.rs:
crates/pfs/src/storage.rs:
