/root/repo/target/debug/deps/smp_buffer-4cd6d58115c6f793.d: crates/core/tests/smp_buffer.rs Cargo.toml

/root/repo/target/debug/deps/libsmp_buffer-4cd6d58115c6f793.rmeta: crates/core/tests/smp_buffer.rs Cargo.toml

crates/core/tests/smp_buffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
