/root/repo/target/debug/deps/dstreams-51c467c91ec6ac88.d: src/lib.rs

/root/repo/target/debug/deps/dstreams-51c467c91ec6ac88: src/lib.rs

src/lib.rs:
