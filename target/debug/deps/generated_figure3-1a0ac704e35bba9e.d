/root/repo/target/debug/deps/generated_figure3-1a0ac704e35bba9e.d: tests/generated_figure3.rs

/root/repo/target/debug/deps/generated_figure3-1a0ac704e35bba9e: tests/generated_figure3.rs

tests/generated_figure3.rs:
