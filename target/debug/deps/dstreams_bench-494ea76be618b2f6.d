/root/repo/target/debug/deps/dstreams_bench-494ea76be618b2f6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_bench-494ea76be618b2f6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
