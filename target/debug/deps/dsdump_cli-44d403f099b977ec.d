/root/repo/target/debug/deps/dsdump_cli-44d403f099b977ec.d: crates/core/tests/dsdump_cli.rs

/root/repo/target/debug/deps/dsdump_cli-44d403f099b977ec: crates/core/tests/dsdump_cli.rs

crates/core/tests/dsdump_cli.rs:

# env-dep:CARGO_BIN_EXE_dsdump=/root/repo/target/debug/dsdump
