/root/repo/target/debug/deps/dstreams_fixedio-d1c45984a0a938a4.d: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

/root/repo/target/debug/deps/libdstreams_fixedio-d1c45984a0a938a4.rlib: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

/root/repo/target/debug/deps/libdstreams_fixedio-d1c45984a0a938a4.rmeta: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

crates/fixedio/src/lib.rs:
crates/fixedio/src/chameleon.rs:
crates/fixedio/src/panda.rs:
