/root/repo/target/debug/deps/dstreams_collections-c96929f78552e4a9.d: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

/root/repo/target/debug/deps/libdstreams_collections-c96929f78552e4a9.rlib: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

/root/repo/target/debug/deps/libdstreams_collections-c96929f78552e4a9.rmeta: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

crates/collections/src/lib.rs:
crates/collections/src/alignment.rs:
crates/collections/src/collection.rs:
crates/collections/src/distribution.rs:
crates/collections/src/error.rs:
crates/collections/src/grid.rs:
crates/collections/src/layout.rs:
