/root/repo/target/debug/deps/fixed_prop-3c937d74d9884fc7.d: crates/fixedio/tests/fixed_prop.rs

/root/repo/target/debug/deps/fixed_prop-3c937d74d9884fc7: crates/fixedio/tests/fixed_prop.rs

crates/fixedio/tests/fixed_prop.rs:
