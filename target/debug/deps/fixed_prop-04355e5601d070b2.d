/root/repo/target/debug/deps/fixed_prop-04355e5601d070b2.d: crates/fixedio/tests/fixed_prop.rs

/root/repo/target/debug/deps/fixed_prop-04355e5601d070b2: crates/fixedio/tests/fixed_prop.rs

crates/fixedio/tests/fixed_prop.rs:
