/root/repo/target/debug/deps/storage_prop-f30a23c99ed49899.d: crates/pfs/tests/storage_prop.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_prop-f30a23c99ed49899.rmeta: crates/pfs/tests/storage_prop.rs Cargo.toml

crates/pfs/tests/storage_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
