/root/repo/target/debug/deps/io_modes-9d090502ca57ec17.d: crates/pfs/tests/io_modes.rs

/root/repo/target/debug/deps/io_modes-9d090502ca57ec17: crates/pfs/tests/io_modes.rs

crates/pfs/tests/io_modes.rs:
