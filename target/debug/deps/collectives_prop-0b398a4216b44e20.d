/root/repo/target/debug/deps/collectives_prop-0b398a4216b44e20.d: crates/machine/tests/collectives_prop.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives_prop-0b398a4216b44e20.rmeta: crates/machine/tests/collectives_prop.rs Cargo.toml

crates/machine/tests/collectives_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
