/root/repo/target/debug/deps/dstreams_collections-f82e589f8c664de8.d: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_collections-f82e589f8c664de8.rmeta: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs Cargo.toml

crates/collections/src/lib.rs:
crates/collections/src/alignment.rs:
crates/collections/src/collection.rs:
crates/collections/src/distribution.rs:
crates/collections/src/error.rs:
crates/collections/src/grid.rs:
crates/collections/src/layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
