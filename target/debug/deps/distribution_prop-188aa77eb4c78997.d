/root/repo/target/debug/deps/distribution_prop-188aa77eb4c78997.d: crates/collections/tests/distribution_prop.rs

/root/repo/target/debug/deps/distribution_prop-188aa77eb4c78997: crates/collections/tests/distribution_prop.rs

crates/collections/tests/distribution_prop.rs:
