/root/repo/target/debug/deps/dstreams_pfs-c72b31d3cbbf0fb6.d: crates/pfs/src/lib.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/storage.rs

/root/repo/target/debug/deps/dstreams_pfs-c72b31d3cbbf0fb6: crates/pfs/src/lib.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/storage.rs

crates/pfs/src/lib.rs:
crates/pfs/src/error.rs:
crates/pfs/src/file.rs:
crates/pfs/src/model.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/storage.rs:
