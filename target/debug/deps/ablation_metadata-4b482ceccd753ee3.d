/root/repo/target/debug/deps/ablation_metadata-4b482ceccd753ee3.d: crates/bench/benches/ablation_metadata.rs Cargo.toml

/root/repo/target/debug/deps/libablation_metadata-4b482ceccd753ee3.rmeta: crates/bench/benches/ablation_metadata.rs Cargo.toml

crates/bench/benches/ablation_metadata.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
