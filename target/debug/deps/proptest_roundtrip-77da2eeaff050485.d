/root/repo/target/debug/deps/proptest_roundtrip-77da2eeaff050485.d: tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-77da2eeaff050485.rmeta: tests/proptest_roundtrip.rs Cargo.toml

tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
