/root/repo/target/debug/deps/cli-ce9848c6118ba3de.d: crates/streamgen/tests/cli.rs

/root/repo/target/debug/deps/cli-ce9848c6118ba3de: crates/streamgen/tests/cli.rs

crates/streamgen/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_stream-gen=/root/repo/target/debug/stream-gen
