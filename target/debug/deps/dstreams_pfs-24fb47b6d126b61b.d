/root/repo/target/debug/deps/dstreams_pfs-24fb47b6d126b61b.d: crates/pfs/src/lib.rs crates/pfs/src/checksum.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/retry.rs crates/pfs/src/storage.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_pfs-24fb47b6d126b61b.rmeta: crates/pfs/src/lib.rs crates/pfs/src/checksum.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/retry.rs crates/pfs/src/storage.rs Cargo.toml

crates/pfs/src/lib.rs:
crates/pfs/src/checksum.rs:
crates/pfs/src/error.rs:
crates/pfs/src/file.rs:
crates/pfs/src/model.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/retry.rs:
crates/pfs/src/storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
