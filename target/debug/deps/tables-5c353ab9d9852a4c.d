/root/repo/target/debug/deps/tables-5c353ab9d9852a4c.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-5c353ab9d9852a4c: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
