/root/repo/target/debug/deps/dstreams_bench-49d045569c1de809.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_bench-49d045569c1de809.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
