/root/repo/target/debug/deps/dstreams_core-1710af28cd74b00d.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/data.rs crates/core/src/error.rs crates/core/src/format.rs crates/core/src/inspect.rs crates/core/src/istream.rs crates/core/src/localio.rs crates/core/src/ostream.rs crates/core/src/phase.rs

/root/repo/target/debug/deps/libdstreams_core-1710af28cd74b00d.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/data.rs crates/core/src/error.rs crates/core/src/format.rs crates/core/src/inspect.rs crates/core/src/istream.rs crates/core/src/localio.rs crates/core/src/ostream.rs crates/core/src/phase.rs

/root/repo/target/debug/deps/libdstreams_core-1710af28cd74b00d.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/data.rs crates/core/src/error.rs crates/core/src/format.rs crates/core/src/inspect.rs crates/core/src/istream.rs crates/core/src/localio.rs crates/core/src/ostream.rs crates/core/src/phase.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/data.rs:
crates/core/src/error.rs:
crates/core/src/format.rs:
crates/core/src/inspect.rs:
crates/core/src/istream.rs:
crates/core/src/localio.rs:
crates/core/src/ostream.rs:
crates/core/src/phase.rs:
