/root/repo/target/debug/deps/dstreams_bench-7b89eda232c25592.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dstreams_bench-7b89eda232c25592: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
