/root/repo/target/debug/deps/roundtrip-24a9e232a2ec5505.d: crates/core/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-24a9e232a2ec5505.rmeta: crates/core/tests/roundtrip.rs Cargo.toml

crates/core/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
