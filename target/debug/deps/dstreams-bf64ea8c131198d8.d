/root/repo/target/debug/deps/dstreams-bf64ea8c131198d8.d: src/lib.rs

/root/repo/target/debug/deps/libdstreams-bf64ea8c131198d8.rlib: src/lib.rs

/root/repo/target/debug/deps/libdstreams-bf64ea8c131198d8.rmeta: src/lib.rs

src/lib.rs:
