/root/repo/target/debug/deps/ablation_smp-b15ff69f1cdf4a84.d: crates/bench/benches/ablation_smp.rs Cargo.toml

/root/repo/target/debug/deps/libablation_smp-b15ff69f1cdf4a84.rmeta: crates/bench/benches/ablation_smp.rs Cargo.toml

crates/bench/benches/ablation_smp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
