/root/repo/target/debug/deps/dstreams_fixedio-303984f5b94196de.d: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_fixedio-303984f5b94196de.rmeta: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs Cargo.toml

crates/fixedio/src/lib.rs:
crates/fixedio/src/chameleon.rs:
crates/fixedio/src/panda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
