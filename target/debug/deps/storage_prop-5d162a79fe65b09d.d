/root/repo/target/debug/deps/storage_prop-5d162a79fe65b09d.d: crates/pfs/tests/storage_prop.rs

/root/repo/target/debug/deps/storage_prop-5d162a79fe65b09d: crates/pfs/tests/storage_prop.rs

crates/pfs/tests/storage_prop.rs:
