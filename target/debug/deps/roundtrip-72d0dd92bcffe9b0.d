/root/repo/target/debug/deps/roundtrip-72d0dd92bcffe9b0.d: crates/core/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-72d0dd92bcffe9b0: crates/core/tests/roundtrip.rs

crates/core/tests/roundtrip.rs:
