/root/repo/target/debug/deps/tables-898d78b55e4896d1.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-898d78b55e4896d1: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
