/root/repo/target/debug/deps/collectives_prop-a215d6c9be60c9e2.d: crates/machine/tests/collectives_prop.rs

/root/repo/target/debug/deps/collectives_prop-a215d6c9be60c9e2: crates/machine/tests/collectives_prop.rs

crates/machine/tests/collectives_prop.rs:
