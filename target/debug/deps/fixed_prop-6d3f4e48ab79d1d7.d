/root/repo/target/debug/deps/fixed_prop-6d3f4e48ab79d1d7.d: crates/fixedio/tests/fixed_prop.rs Cargo.toml

/root/repo/target/debug/deps/libfixed_prop-6d3f4e48ab79d1d7.rmeta: crates/fixedio/tests/fixed_prop.rs Cargo.toml

crates/fixedio/tests/fixed_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
