/root/repo/target/debug/deps/dstreams_fixedio-eb9b71c9e98ed2e2.d: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

/root/repo/target/debug/deps/dstreams_fixedio-eb9b71c9e98ed2e2: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

crates/fixedio/src/lib.rs:
crates/fixedio/src/chameleon.rs:
crates/fixedio/src/panda.rs:
