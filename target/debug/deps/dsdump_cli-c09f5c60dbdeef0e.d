/root/repo/target/debug/deps/dsdump_cli-c09f5c60dbdeef0e.d: crates/core/tests/dsdump_cli.rs

/root/repo/target/debug/deps/dsdump_cli-c09f5c60dbdeef0e: crates/core/tests/dsdump_cli.rs

crates/core/tests/dsdump_cli.rs:

# env-dep:CARGO_BIN_EXE_dsdump=/root/repo/target/debug/dsdump
