/root/repo/target/debug/deps/dstreams_pfs-921b8d3f65045cef.d: crates/pfs/src/lib.rs crates/pfs/src/checksum.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/retry.rs crates/pfs/src/storage.rs

/root/repo/target/debug/deps/libdstreams_pfs-921b8d3f65045cef.rlib: crates/pfs/src/lib.rs crates/pfs/src/checksum.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/retry.rs crates/pfs/src/storage.rs

/root/repo/target/debug/deps/libdstreams_pfs-921b8d3f65045cef.rmeta: crates/pfs/src/lib.rs crates/pfs/src/checksum.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/retry.rs crates/pfs/src/storage.rs

crates/pfs/src/lib.rs:
crates/pfs/src/checksum.rs:
crates/pfs/src/error.rs:
crates/pfs/src/file.rs:
crates/pfs/src/model.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/retry.rs:
crates/pfs/src/storage.rs:
