/root/repo/target/debug/deps/baseline_comparison-20eb91d5e73cb4c6.d: tests/baseline_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_comparison-20eb91d5e73cb4c6.rmeta: tests/baseline_comparison.rs Cargo.toml

tests/baseline_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
