/root/repo/target/debug/deps/dsdump-38c52774ddeb5135.d: crates/core/src/bin/dsdump.rs

/root/repo/target/debug/deps/dsdump-38c52774ddeb5135: crates/core/src/bin/dsdump.rs

crates/core/src/bin/dsdump.rs:
