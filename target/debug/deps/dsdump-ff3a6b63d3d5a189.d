/root/repo/target/debug/deps/dsdump-ff3a6b63d3d5a189.d: crates/core/src/bin/dsdump.rs

/root/repo/target/debug/deps/dsdump-ff3a6b63d3d5a189: crates/core/src/bin/dsdump.rs

crates/core/src/bin/dsdump.rs:
