/root/repo/target/debug/deps/dstreams_scf-d32d74aea1315cca.d: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs

/root/repo/target/debug/deps/libdstreams_scf-d32d74aea1315cca.rlib: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs

/root/repo/target/debug/deps/libdstreams_scf-d32d74aea1315cca.rmeta: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs

crates/scf/src/lib.rs:
crates/scf/src/driver.rs:
crates/scf/src/methods.rs:
crates/scf/src/physics.rs:
crates/scf/src/segment.rs:
crates/scf/src/solver.rs:
crates/scf/src/tables.rs:
crates/scf/src/workload.rs:
