/root/repo/target/debug/deps/roundtrip-5d1e91288112ba36.d: crates/core/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-5d1e91288112ba36: crates/core/tests/roundtrip.rs

crates/core/tests/roundtrip.rs:
