/root/repo/target/debug/deps/dstreams-3f90e88db7a488f4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams-3f90e88db7a488f4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
