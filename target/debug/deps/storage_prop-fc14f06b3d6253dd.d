/root/repo/target/debug/deps/storage_prop-fc14f06b3d6253dd.d: crates/pfs/tests/storage_prop.rs

/root/repo/target/debug/deps/storage_prop-fc14f06b3d6253dd: crates/pfs/tests/storage_prop.rs

crates/pfs/tests/storage_prop.rs:
