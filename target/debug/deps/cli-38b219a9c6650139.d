/root/repo/target/debug/deps/cli-38b219a9c6650139.d: crates/streamgen/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-38b219a9c6650139.rmeta: crates/streamgen/tests/cli.rs Cargo.toml

crates/streamgen/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_stream-gen=placeholder:stream-gen
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
