/root/repo/target/debug/deps/baseline_comparison-93634240e75252d8.d: tests/baseline_comparison.rs

/root/repo/target/debug/deps/baseline_comparison-93634240e75252d8: tests/baseline_comparison.rs

tests/baseline_comparison.rs:
