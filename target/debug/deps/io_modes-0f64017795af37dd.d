/root/repo/target/debug/deps/io_modes-0f64017795af37dd.d: crates/pfs/tests/io_modes.rs Cargo.toml

/root/repo/target/debug/deps/libio_modes-0f64017795af37dd.rmeta: crates/pfs/tests/io_modes.rs Cargo.toml

crates/pfs/tests/io_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
