/root/repo/target/debug/deps/ablation_read-3d3469e5750b6082.d: crates/bench/benches/ablation_read.rs Cargo.toml

/root/repo/target/debug/deps/libablation_read-3d3469e5750b6082.rmeta: crates/bench/benches/ablation_read.rs Cargo.toml

crates/bench/benches/ablation_read.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
