/root/repo/target/debug/deps/ablation_metadata-f2a7b8ec14918f81.d: crates/bench/benches/ablation_metadata.rs Cargo.toml

/root/repo/target/debug/deps/libablation_metadata-f2a7b8ec14918f81.rmeta: crates/bench/benches/ablation_metadata.rs Cargo.toml

crates/bench/benches/ablation_metadata.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
