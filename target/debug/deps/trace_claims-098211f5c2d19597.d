/root/repo/target/debug/deps/trace_claims-098211f5c2d19597.d: tests/trace_claims.rs

/root/repo/target/debug/deps/trace_claims-098211f5c2d19597: tests/trace_claims.rs

tests/trace_claims.rs:
