/root/repo/target/debug/deps/state_machine-986ed4e72bcc5959.d: tests/state_machine.rs

/root/repo/target/debug/deps/state_machine-986ed4e72bcc5959: tests/state_machine.rs

tests/state_machine.rs:
