/root/repo/target/debug/deps/dstreams_bench-bb24dfb335ea3e94.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_bench-bb24dfb335ea3e94.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
