/root/repo/target/debug/deps/collectives_prop-326d27d25eea4c99.d: crates/machine/tests/collectives_prop.rs

/root/repo/target/debug/deps/collectives_prop-326d27d25eea4c99: crates/machine/tests/collectives_prop.rs

crates/machine/tests/collectives_prop.rs:
