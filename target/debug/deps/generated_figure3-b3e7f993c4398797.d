/root/repo/target/debug/deps/generated_figure3-b3e7f993c4398797.d: tests/generated_figure3.rs Cargo.toml

/root/repo/target/debug/deps/libgenerated_figure3-b3e7f993c4398797.rmeta: tests/generated_figure3.rs Cargo.toml

tests/generated_figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
