/root/repo/target/debug/deps/dstreams-a4d74096f1fff87d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams-a4d74096f1fff87d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
