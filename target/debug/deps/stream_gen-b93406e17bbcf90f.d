/root/repo/target/debug/deps/stream_gen-b93406e17bbcf90f.d: crates/streamgen/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libstream_gen-b93406e17bbcf90f.rmeta: crates/streamgen/src/main.rs Cargo.toml

crates/streamgen/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
