/root/repo/target/debug/deps/table_challenge-b81410bc28cef13a.d: crates/bench/benches/table_challenge.rs Cargo.toml

/root/repo/target/debug/deps/libtable_challenge-b81410bc28cef13a.rmeta: crates/bench/benches/table_challenge.rs Cargo.toml

crates/bench/benches/table_challenge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
