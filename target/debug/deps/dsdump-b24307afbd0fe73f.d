/root/repo/target/debug/deps/dsdump-b24307afbd0fe73f.d: crates/core/src/bin/dsdump.rs

/root/repo/target/debug/deps/dsdump-b24307afbd0fe73f: crates/core/src/bin/dsdump.rs

crates/core/src/bin/dsdump.rs:
