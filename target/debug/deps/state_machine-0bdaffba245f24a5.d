/root/repo/target/debug/deps/state_machine-0bdaffba245f24a5.d: tests/state_machine.rs

/root/repo/target/debug/deps/state_machine-0bdaffba245f24a5: tests/state_machine.rs

tests/state_machine.rs:
