/root/repo/target/debug/deps/smp_buffer-ad9030078a79ca28.d: crates/core/tests/smp_buffer.rs

/root/repo/target/debug/deps/smp_buffer-ad9030078a79ca28: crates/core/tests/smp_buffer.rs

crates/core/tests/smp_buffer.rs:
