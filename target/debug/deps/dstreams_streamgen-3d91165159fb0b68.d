/root/repo/target/debug/deps/dstreams_streamgen-3d91165159fb0b68.d: crates/streamgen/src/lib.rs crates/streamgen/src/ast.rs crates/streamgen/src/codegen.rs crates/streamgen/src/lexer.rs crates/streamgen/src/parser.rs crates/streamgen/src/sema.rs

/root/repo/target/debug/deps/libdstreams_streamgen-3d91165159fb0b68.rlib: crates/streamgen/src/lib.rs crates/streamgen/src/ast.rs crates/streamgen/src/codegen.rs crates/streamgen/src/lexer.rs crates/streamgen/src/parser.rs crates/streamgen/src/sema.rs

/root/repo/target/debug/deps/libdstreams_streamgen-3d91165159fb0b68.rmeta: crates/streamgen/src/lib.rs crates/streamgen/src/ast.rs crates/streamgen/src/codegen.rs crates/streamgen/src/lexer.rs crates/streamgen/src/parser.rs crates/streamgen/src/sema.rs

crates/streamgen/src/lib.rs:
crates/streamgen/src/ast.rs:
crates/streamgen/src/codegen.rs:
crates/streamgen/src/lexer.rs:
crates/streamgen/src/parser.rs:
crates/streamgen/src/sema.rs:
