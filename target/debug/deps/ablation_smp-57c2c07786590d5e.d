/root/repo/target/debug/deps/ablation_smp-57c2c07786590d5e.d: crates/bench/benches/ablation_smp.rs Cargo.toml

/root/repo/target/debug/deps/libablation_smp-57c2c07786590d5e.rmeta: crates/bench/benches/ablation_smp.rs Cargo.toml

crates/bench/benches/ablation_smp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
