/root/repo/target/debug/deps/chaos_sweep-a8e685bacf631fe6.d: tests/chaos_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_sweep-a8e685bacf631fe6.rmeta: tests/chaos_sweep.rs Cargo.toml

tests/chaos_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
