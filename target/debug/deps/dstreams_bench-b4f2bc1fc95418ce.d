/root/repo/target/debug/deps/dstreams_bench-b4f2bc1fc95418ce.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdstreams_bench-b4f2bc1fc95418ce.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdstreams_bench-b4f2bc1fc95418ce.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
