/root/repo/target/debug/deps/tables-4d3cc34236a3aa39.d: crates/bench/src/bin/tables.rs

/root/repo/target/debug/deps/tables-4d3cc34236a3aa39: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
