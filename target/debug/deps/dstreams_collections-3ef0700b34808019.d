/root/repo/target/debug/deps/dstreams_collections-3ef0700b34808019.d: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

/root/repo/target/debug/deps/dstreams_collections-3ef0700b34808019: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

crates/collections/src/lib.rs:
crates/collections/src/alignment.rs:
crates/collections/src/collection.rs:
crates/collections/src/distribution.rs:
crates/collections/src/error.rs:
crates/collections/src/grid.rs:
crates/collections/src/layout.rs:
