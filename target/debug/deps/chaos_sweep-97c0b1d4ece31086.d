/root/repo/target/debug/deps/chaos_sweep-97c0b1d4ece31086.d: tests/chaos_sweep.rs

/root/repo/target/debug/deps/chaos_sweep-97c0b1d4ece31086: tests/chaos_sweep.rs

tests/chaos_sweep.rs:
