/root/repo/target/debug/deps/io_modes-a9a478ed8f1e9045.d: crates/pfs/tests/io_modes.rs Cargo.toml

/root/repo/target/debug/deps/libio_modes-a9a478ed8f1e9045.rmeta: crates/pfs/tests/io_modes.rs Cargo.toml

crates/pfs/tests/io_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
