/root/repo/target/debug/deps/dstreams_collections-4834a7cdffefe1c3.d: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

/root/repo/target/debug/deps/libdstreams_collections-4834a7cdffefe1c3.rlib: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

/root/repo/target/debug/deps/libdstreams_collections-4834a7cdffefe1c3.rmeta: crates/collections/src/lib.rs crates/collections/src/alignment.rs crates/collections/src/collection.rs crates/collections/src/distribution.rs crates/collections/src/error.rs crates/collections/src/grid.rs crates/collections/src/layout.rs

crates/collections/src/lib.rs:
crates/collections/src/alignment.rs:
crates/collections/src/collection.rs:
crates/collections/src/distribution.rs:
crates/collections/src/error.rs:
crates/collections/src/grid.rs:
crates/collections/src/layout.rs:
