/root/repo/target/debug/deps/dstreams_pfs-d4ed09a019d19e33.d: crates/pfs/src/lib.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/storage.rs

/root/repo/target/debug/deps/libdstreams_pfs-d4ed09a019d19e33.rlib: crates/pfs/src/lib.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/storage.rs

/root/repo/target/debug/deps/libdstreams_pfs-d4ed09a019d19e33.rmeta: crates/pfs/src/lib.rs crates/pfs/src/error.rs crates/pfs/src/file.rs crates/pfs/src/model.rs crates/pfs/src/pfs.rs crates/pfs/src/storage.rs

crates/pfs/src/lib.rs:
crates/pfs/src/error.rs:
crates/pfs/src/file.rs:
crates/pfs/src/model.rs:
crates/pfs/src/pfs.rs:
crates/pfs/src/storage.rs:
