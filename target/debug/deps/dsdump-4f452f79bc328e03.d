/root/repo/target/debug/deps/dsdump-4f452f79bc328e03.d: crates/core/src/bin/dsdump.rs Cargo.toml

/root/repo/target/debug/deps/libdsdump-4f452f79bc328e03.rmeta: crates/core/src/bin/dsdump.rs Cargo.toml

crates/core/src/bin/dsdump.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
