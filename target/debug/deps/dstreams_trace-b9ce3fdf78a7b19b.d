/root/repo/target/debug/deps/dstreams_trace-b9ce3fdf78a7b19b.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/counts.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libdstreams_trace-b9ce3fdf78a7b19b.rlib: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/counts.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/libdstreams_trace-b9ce3fdf78a7b19b.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/counts.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/counts.rs:
crates/trace/src/event.rs:
crates/trace/src/json.rs:
crates/trace/src/sink.rs:
