/root/repo/target/debug/deps/dstreams-7fb252b15cfa2207.d: src/lib.rs

/root/repo/target/debug/deps/dstreams-7fb252b15cfa2207: src/lib.rs

src/lib.rs:
