/root/repo/target/debug/deps/trace_claims-139551dfc8f94ac2.d: tests/trace_claims.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_claims-139551dfc8f94ac2.rmeta: tests/trace_claims.rs Cargo.toml

tests/trace_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
