/root/repo/target/debug/deps/dsdump-1b39d1b6a450b313.d: crates/core/src/bin/dsdump.rs Cargo.toml

/root/repo/target/debug/deps/libdsdump-1b39d1b6a450b313.rmeta: crates/core/src/bin/dsdump.rs Cargo.toml

crates/core/src/bin/dsdump.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
