/root/repo/target/debug/deps/roundtrip-a3e290b903e5e972.d: crates/core/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-a3e290b903e5e972.rmeta: crates/core/tests/roundtrip.rs Cargo.toml

crates/core/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
