/root/repo/target/debug/deps/dstreams_bench-a0ed364ff893673b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdstreams_bench-a0ed364ff893673b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdstreams_bench-a0ed364ff893673b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
