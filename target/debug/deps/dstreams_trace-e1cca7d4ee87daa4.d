/root/repo/target/debug/deps/dstreams_trace-e1cca7d4ee87daa4.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/counts.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_trace-e1cca7d4ee87daa4.rmeta: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/counts.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/sink.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/counts.rs:
crates/trace/src/event.rs:
crates/trace/src/json.rs:
crates/trace/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
