/root/repo/target/debug/deps/dstreams_fixedio-eac2835623e2c11a.d: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

/root/repo/target/debug/deps/libdstreams_fixedio-eac2835623e2c11a.rlib: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

/root/repo/target/debug/deps/libdstreams_fixedio-eac2835623e2c11a.rmeta: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

crates/fixedio/src/lib.rs:
crates/fixedio/src/chameleon.rs:
crates/fixedio/src/panda.rs:
