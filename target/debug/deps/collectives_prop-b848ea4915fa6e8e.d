/root/repo/target/debug/deps/collectives_prop-b848ea4915fa6e8e.d: crates/machine/tests/collectives_prop.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives_prop-b848ea4915fa6e8e.rmeta: crates/machine/tests/collectives_prop.rs Cargo.toml

crates/machine/tests/collectives_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
