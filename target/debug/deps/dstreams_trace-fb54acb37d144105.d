/root/repo/target/debug/deps/dstreams_trace-fb54acb37d144105.d: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/counts.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/sink.rs

/root/repo/target/debug/deps/dstreams_trace-fb54acb37d144105: crates/trace/src/lib.rs crates/trace/src/chrome.rs crates/trace/src/counts.rs crates/trace/src/event.rs crates/trace/src/json.rs crates/trace/src/sink.rs

crates/trace/src/lib.rs:
crates/trace/src/chrome.rs:
crates/trace/src/counts.rs:
crates/trace/src/event.rs:
crates/trace/src/json.rs:
crates/trace/src/sink.rs:
