/root/repo/target/debug/deps/dstreams_machine-57680abf7cbd26f0.d: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/config.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/message.rs crates/machine/src/node.rs crates/machine/src/shared.rs crates/machine/src/time.rs crates/machine/src/wire.rs

/root/repo/target/debug/deps/dstreams_machine-57680abf7cbd26f0: crates/machine/src/lib.rs crates/machine/src/collectives.rs crates/machine/src/config.rs crates/machine/src/error.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/message.rs crates/machine/src/node.rs crates/machine/src/shared.rs crates/machine/src/time.rs crates/machine/src/wire.rs

crates/machine/src/lib.rs:
crates/machine/src/collectives.rs:
crates/machine/src/config.rs:
crates/machine/src/error.rs:
crates/machine/src/fault.rs:
crates/machine/src/machine.rs:
crates/machine/src/message.rs:
crates/machine/src/node.rs:
crates/machine/src/shared.rs:
crates/machine/src/time.rs:
crates/machine/src/wire.rs:
