/root/repo/target/debug/deps/dsdump-ed89ea2a94cd62e4.d: crates/core/src/bin/dsdump.rs

/root/repo/target/debug/deps/dsdump-ed89ea2a94cd62e4: crates/core/src/bin/dsdump.rs

crates/core/src/bin/dsdump.rs:
