/root/repo/target/debug/deps/state_machine-0e954974314202ab.d: tests/state_machine.rs Cargo.toml

/root/repo/target/debug/deps/libstate_machine-0e954974314202ab.rmeta: tests/state_machine.rs Cargo.toml

tests/state_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
