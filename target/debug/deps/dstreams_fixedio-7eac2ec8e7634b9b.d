/root/repo/target/debug/deps/dstreams_fixedio-7eac2ec8e7634b9b.d: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

/root/repo/target/debug/deps/dstreams_fixedio-7eac2ec8e7634b9b: crates/fixedio/src/lib.rs crates/fixedio/src/chameleon.rs crates/fixedio/src/panda.rs

crates/fixedio/src/lib.rs:
crates/fixedio/src/chameleon.rs:
crates/fixedio/src/panda.rs:
