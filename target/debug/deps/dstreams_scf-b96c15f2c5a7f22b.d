/root/repo/target/debug/deps/dstreams_scf-b96c15f2c5a7f22b.d: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs

/root/repo/target/debug/deps/libdstreams_scf-b96c15f2c5a7f22b.rlib: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs

/root/repo/target/debug/deps/libdstreams_scf-b96c15f2c5a7f22b.rmeta: crates/scf/src/lib.rs crates/scf/src/driver.rs crates/scf/src/methods.rs crates/scf/src/physics.rs crates/scf/src/segment.rs crates/scf/src/solver.rs crates/scf/src/tables.rs crates/scf/src/workload.rs

crates/scf/src/lib.rs:
crates/scf/src/driver.rs:
crates/scf/src/methods.rs:
crates/scf/src/physics.rs:
crates/scf/src/segment.rs:
crates/scf/src/solver.rs:
crates/scf/src/tables.rs:
crates/scf/src/workload.rs:
