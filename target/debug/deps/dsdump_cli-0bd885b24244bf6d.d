/root/repo/target/debug/deps/dsdump_cli-0bd885b24244bf6d.d: crates/core/tests/dsdump_cli.rs Cargo.toml

/root/repo/target/debug/deps/libdsdump_cli-0bd885b24244bf6d.rmeta: crates/core/tests/dsdump_cli.rs Cargo.toml

crates/core/tests/dsdump_cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_dsdump=placeholder:dsdump
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
