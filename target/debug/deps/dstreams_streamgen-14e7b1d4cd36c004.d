/root/repo/target/debug/deps/dstreams_streamgen-14e7b1d4cd36c004.d: crates/streamgen/src/lib.rs crates/streamgen/src/ast.rs crates/streamgen/src/codegen.rs crates/streamgen/src/lexer.rs crates/streamgen/src/parser.rs crates/streamgen/src/sema.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams_streamgen-14e7b1d4cd36c004.rmeta: crates/streamgen/src/lib.rs crates/streamgen/src/ast.rs crates/streamgen/src/codegen.rs crates/streamgen/src/lexer.rs crates/streamgen/src/parser.rs crates/streamgen/src/sema.rs Cargo.toml

crates/streamgen/src/lib.rs:
crates/streamgen/src/ast.rs:
crates/streamgen/src/codegen.rs:
crates/streamgen/src/lexer.rs:
crates/streamgen/src/parser.rs:
crates/streamgen/src/sema.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
