/root/repo/target/debug/deps/state_machine-0c204fccda85a3b9.d: tests/state_machine.rs Cargo.toml

/root/repo/target/debug/deps/libstate_machine-0c204fccda85a3b9.rmeta: tests/state_machine.rs Cargo.toml

tests/state_machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
