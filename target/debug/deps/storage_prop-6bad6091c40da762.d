/root/repo/target/debug/deps/storage_prop-6bad6091c40da762.d: crates/pfs/tests/storage_prop.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_prop-6bad6091c40da762.rmeta: crates/pfs/tests/storage_prop.rs Cargo.toml

crates/pfs/tests/storage_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
