/root/repo/target/debug/deps/dstreams-fba71625d2905336.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams-fba71625d2905336.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
