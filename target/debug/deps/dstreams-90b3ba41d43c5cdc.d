/root/repo/target/debug/deps/dstreams-90b3ba41d43c5cdc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdstreams-90b3ba41d43c5cdc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
