/root/repo/target/debug/deps/ablation_read-c098f22675d41e8b.d: crates/bench/benches/ablation_read.rs Cargo.toml

/root/repo/target/debug/deps/libablation_read-c098f22675d41e8b.rmeta: crates/bench/benches/ablation_read.rs Cargo.toml

crates/bench/benches/ablation_read.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
