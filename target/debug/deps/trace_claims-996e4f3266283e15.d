/root/repo/target/debug/deps/trace_claims-996e4f3266283e15.d: tests/trace_claims.rs

/root/repo/target/debug/deps/trace_claims-996e4f3266283e15: tests/trace_claims.rs

tests/trace_claims.rs:
