/root/repo/target/debug/deps/dstreams_core-2efa35d674c8d19e.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/data.rs crates/core/src/error.rs crates/core/src/format.rs crates/core/src/inspect.rs crates/core/src/istream.rs crates/core/src/localio.rs crates/core/src/ostream.rs crates/core/src/phase.rs

/root/repo/target/debug/deps/dstreams_core-2efa35d674c8d19e: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/data.rs crates/core/src/error.rs crates/core/src/format.rs crates/core/src/inspect.rs crates/core/src/istream.rs crates/core/src/localio.rs crates/core/src/ostream.rs crates/core/src/phase.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/data.rs:
crates/core/src/error.rs:
crates/core/src/format.rs:
crates/core/src/inspect.rs:
crates/core/src/istream.rs:
crates/core/src/localio.rs:
crates/core/src/ostream.rs:
crates/core/src/phase.rs:
