/root/repo/target/debug/deps/dsdump-f8bd2000858a6425.d: crates/core/src/bin/dsdump.rs Cargo.toml

/root/repo/target/debug/deps/libdsdump-f8bd2000858a6425.rmeta: crates/core/src/bin/dsdump.rs Cargo.toml

crates/core/src/bin/dsdump.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
