/root/repo/target/debug/deps/distribution_prop-01d8a75fd5d8163e.d: crates/collections/tests/distribution_prop.rs Cargo.toml

/root/repo/target/debug/deps/libdistribution_prop-01d8a75fd5d8163e.rmeta: crates/collections/tests/distribution_prop.rs Cargo.toml

crates/collections/tests/distribution_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
