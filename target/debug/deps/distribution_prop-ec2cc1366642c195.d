/root/repo/target/debug/deps/distribution_prop-ec2cc1366642c195.d: crates/collections/tests/distribution_prop.rs Cargo.toml

/root/repo/target/debug/deps/libdistribution_prop-ec2cc1366642c195.rmeta: crates/collections/tests/distribution_prop.rs Cargo.toml

crates/collections/tests/distribution_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
