/root/repo/target/debug/deps/streamgen_roundtrip-6ff56c312d629480.d: tests/streamgen_roundtrip.rs tests/generated_figure3.rs

/root/repo/target/debug/deps/streamgen_roundtrip-6ff56c312d629480: tests/streamgen_roundtrip.rs tests/generated_figure3.rs

tests/streamgen_roundtrip.rs:
tests/generated_figure3.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
