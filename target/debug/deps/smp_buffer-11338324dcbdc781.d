/root/repo/target/debug/deps/smp_buffer-11338324dcbdc781.d: crates/core/tests/smp_buffer.rs

/root/repo/target/debug/deps/smp_buffer-11338324dcbdc781: crates/core/tests/smp_buffer.rs

crates/core/tests/smp_buffer.rs:
