//! # dstreams — Rust reproduction of pC++/streams (PPoPP 1995)
//!
//! Umbrella crate re-exporting the whole stack:
//!
//! * [`machine`] — simulated multicomputer (ranks, collectives, virtual time);
//! * [`pfs`] — parallel file system with calibrated platform cost models;
//! * [`collections`] — pC++-style distributed collections;
//! * [`core`] — the d/streams library itself;
//! * [`pipeline`] — asynchronous split-collective I/O (write-behind,
//!   read-ahead, deterministic compute/I-O overlap);
//! * [`redist`] — distribution views and the two-phase redistribution
//!   planner for cross-shape reads;
//! * [`scf`] — the SCF benchmark that regenerates the paper's tables;
//! * [`serve`] — the multi-tenant stream service: typestate sessions,
//!   admission control with QoS fairness, and the working-set read cache;
//! * [`trace`] — structured event tracing (Chrome trace export, op counts);
//! * [`unbounded`] — unbounded append streams: continuously sealed
//!   segments, tailing readers with snapshot isolation, byte-budget
//!   retention;
//! * [`verify`] — protocol verification: typestate wrappers, Fig. 2 model
//!   checking, and the `dsverify` trace analyzer.
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! system inventory.

#![forbid(unsafe_code)]

pub use dstreams_collections as collections;
pub use dstreams_core as core;
pub use dstreams_machine as machine;
pub use dstreams_pfs as pfs;
pub use dstreams_pipeline as pipeline;
pub use dstreams_redist as redist;
pub use dstreams_scf as scf;
pub use dstreams_serve as serve;
pub use dstreams_trace as trace;
pub use dstreams_unbounded as unbounded;
pub use dstreams_verify as verify;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use dstreams_collections::{Alignment, Collection, DistKind, Distribution, Layout};
    pub use dstreams_core::{
        IStream, LocalFile, MetaMode, MetaPolicy, OStream, ReadStrategy, StreamData, StreamError,
        StreamOptions,
    };
    pub use dstreams_machine::{Machine, MachineConfig, NodeCtx, VTime};
    pub use dstreams_pfs::{Backend, DiskModel, OpenMode, Pfs};
    pub use dstreams_redist::{DistView, RedistPlan};
}
