//! Visualization export — the paper's interleaving feature.
//!
//! "The programmer can invoke `s << g.numberOfParticles;
//! s << g2.particleDensity; s.write();` which will cause the
//! corresponding numberOfParticles and particleDensity fields of g and g2
//! to be written contiguously in the file, even if they are not
//! contiguous in memory. This feature, called interleaving, is useful for
//! writing files for communication with many visualization tools which
//! require related data to be written contiguously."
//!
//! This example writes three aligned per-cell fields (density, pressure,
//! temperature) interleaved, then a single-rank "visualization tool"
//! reads the file and prints per-cell tuples — demonstrating that each
//! cell's values are adjacent in the file.
//!
//! Run with: `cargo run --example visualization_export`

use dstreams::prelude::*;

const CELLS: usize = 16;

fn density(i: usize) -> f64 {
    1.0 + (i as f64 * 0.7).sin().abs()
}
fn pressure(i: usize) -> f64 {
    101.3 + i as f64
}
fn temperature(i: usize) -> f64 {
    273.15 + (i as f64 * 1.3).cos() * 20.0
}

fn main() {
    let pfs = Pfs::in_memory(4);

    // ---- simulation side: 4 ranks write interleaved fields --------------
    let p = pfs.clone();
    Machine::run(MachineConfig::sgi_challenge(4), move |ctx| {
        let layout = Layout::dense(CELLS, 4, DistKind::BlockCyclic(2)).unwrap();
        let rho = Collection::new(ctx, layout.clone(), density).unwrap();
        let pr = Collection::new(ctx, layout.clone(), pressure).unwrap();
        let te = Collection::new(ctx, layout.clone(), temperature).unwrap();

        let mut s = OStream::create(ctx, &p, &layout, "viz.dstream").unwrap();
        // Three inserts, one write: per-cell (rho, p, T) triples land
        // contiguously regardless of memory layout.
        s.insert_with(&rho, |v, ins| ins.prim(*v)).unwrap();
        s.insert_with(&pr, |v, ins| ins.prim(*v)).unwrap();
        s.insert_with(&te, |v, ins| ins.prim(*v)).unwrap();
        s.write().unwrap();
        s.close().unwrap();
        if ctx.is_root() {
            println!(
                "wrote {} cells x 3 interleaved fields ({} bytes)",
                CELLS,
                p.file_size("viz.dstream").unwrap()
            );
        }
    })
    .unwrap();

    // ---- visualization tool: a single-rank reader -----------------------
    let p = pfs.clone();
    Machine::run(MachineConfig::sgi_challenge(1), move |ctx| {
        let layout = Layout::dense(CELLS, 1, DistKind::Block).unwrap();
        let mut rho = Collection::new(ctx, layout.clone(), |_| 0.0f64).unwrap();
        let mut pr = Collection::new(ctx, layout.clone(), |_| 0.0f64).unwrap();
        let mut te = Collection::new(ctx, layout.clone(), |_| 0.0f64).unwrap();

        let mut r = IStream::open(ctx, &p, &layout, "viz.dstream").unwrap();
        r.read().unwrap();
        // Extracts mirror the inserts: the tool walks each cell's
        // contiguous (rho, p, T) triple.
        r.extract_with(&mut rho, |v, ext| {
            *v = ext.prim()?;
            Ok(())
        })
        .unwrap();
        r.extract_with(&mut pr, |v, ext| {
            *v = ext.prim()?;
            Ok(())
        })
        .unwrap();
        r.extract_with(&mut te, |v, ext| {
            *v = ext.prim()?;
            Ok(())
        })
        .unwrap();
        r.close().unwrap();

        println!("cell    density   pressure   temperature");
        for i in 0..CELLS {
            let (d, p_, t) = (
                *rho.get(i).unwrap(),
                *pr.get(i).unwrap(),
                *te.get(i).unwrap(),
            );
            println!("{i:>4}  {d:>9.4}  {p_:>9.2}  {t:>12.3}");
            assert!((d - density(i)).abs() < 1e-12);
            assert!((p_ - pressure(i)).abs() < 1e-12);
            assert!((t - temperature(i)).abs() < 1e-12);
        }
        println!("visualization_export: interleaved triples verified");
    })
    .unwrap();
}
