//! Deterministic fault injection and crash recovery, end to end.
//!
//! Three acts, all driven by one seeded [`FaultPlan`]:
//!
//! 1. **Transient faults** — two PFS operations fail once each; the
//!    client retries under virtual-time exponential backoff and the run
//!    completes as if nothing happened.
//! 2. **Power cut** — rank 0 dies mid-checkpoint. Its peers observe a
//!    clean `PeerGone`/`RankCrashed` failure instead of hanging, and the
//!    crashed write leaves a torn (unsealed) tail record on disk.
//! 3. **Recovery** — a restart scans the surviving files, rejects the
//!    torn generation via its missing commit seal, and restores the
//!    newest sealed generation element-exact.
//!
//! Faults replay bit-identically for a given seed, so every run of this
//! example prints the same story. Run with:
//! `cargo run --example fault_injection`
//!
//! Set `DSTREAMS_TRACE_OUT=<prefix>` to dump each act's event log as
//! `<prefix>-act{1,2,3}.dstrace.json`, ready for `dsverify` (act 2
//! contains the injected crash, which the analyzer's rules excuse).

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::CheckpointManager;
use dstreams::machine::{FaultPlan, Machine, MachineConfig};
use dstreams::pfs::Pfs;
use dstreams::trace::TraceSink;

const NPROCS: usize = 4;
const N: usize = 16;
const SEED: u64 = 0xFEED_FACE;

fn layout() -> Layout {
    Layout::dense(N, NPROCS, DistKind::Block).unwrap()
}

/// Checkpoint `generations` states, tolerating injected failures.
/// Per rank: (generations saved, error that stopped the rank, if any).
fn run_checkpoints(pfs: &Pfs, config: MachineConfig) -> Vec<(Vec<u64>, Option<String>)> {
    let p = pfs.clone();
    Machine::run(config, move |ctx| {
        let mgr = CheckpointManager::new("ck", 2);
        let mut grid = Collection::new(ctx, layout(), |i| i as u64).unwrap();
        let mut saved = Vec::new();
        let mut failure = None;
        for step in 1..=3u64 {
            grid.apply(|v| *v += 1000);
            match mgr.save(ctx, &p, &grid, step) {
                Ok(()) => {
                    saved.push(step);
                    if ctx.is_root() {
                        println!("  rank 0: generation {step} sealed");
                    }
                }
                Err(e) => {
                    failure = Some(e.to_string());
                    break;
                }
            }
        }
        (saved, failure)
    })
    .unwrap()
}

/// When `DSTREAMS_TRACE_OUT` is set, attach a fresh sink to `config` and
/// return it so [`dump_trace`] can write the act's event log.
fn trace_act(config: MachineConfig) -> (MachineConfig, Option<TraceSink>) {
    match std::env::var("DSTREAMS_TRACE_OUT") {
        Ok(_) => {
            let sink = TraceSink::new(NPROCS);
            (config.traced(sink.clone()), Some(sink))
        }
        Err(_) => (config, None),
    }
}

fn dump_trace(act: u32, sink: Option<TraceSink>) {
    if let (Ok(prefix), Some(sink)) = (std::env::var("DSTREAMS_TRACE_OUT"), sink) {
        let path = format!("{prefix}-act{act}.dstrace.json");
        std::fs::write(&path, sink.take().to_events_json()).unwrap();
        println!("  trace: {path}");
    }
}

fn main() {
    // ---- act 1: transient faults are retried to success -----------------
    println!("act 1: transient faults (fail once, succeed on retry)");
    let pfs = Pfs::in_memory(NPROCS);
    let plan = FaultPlan::seeded(SEED)
        .transient_at(0, 2)
        .transient_at(1, 1);
    let (config, sink) = trace_act(MachineConfig::functional(NPROCS).with_faults(plan));
    let out = run_checkpoints(&pfs, config);
    dump_trace(1, sink);
    assert!(out.iter().all(|(s, e)| s == &vec![1, 2, 3] && e.is_none()));
    println!("  all 3 generations saved despite 2 injected transients\n");

    // ---- act 2: power cut mid-checkpoint --------------------------------
    println!("act 2: power cut — rank 0 dies at its 9th PFS operation");
    let pfs = Pfs::in_memory(NPROCS);
    let plan = FaultPlan::seeded(SEED).crash_at(0, 8);
    let (config, sink) = trace_act(MachineConfig::functional(NPROCS).with_faults(plan));
    let out = run_checkpoints(&pfs, config);
    dump_trace(2, sink);
    for (rank, (saved, err)) in out.iter().enumerate() {
        println!(
            "  rank {rank}: saved generations {saved:?}, then: {}",
            err.as_deref().unwrap_or("completed")
        );
    }
    let newest_durable = out[0].0.last().copied().unwrap_or(0);
    assert!(
        out.iter().any(|(_, e)| e.is_some()),
        "the power cut never fired"
    );

    // ---- act 3: restart recovers the newest sealed generation -----------
    println!("\nact 3: restart on the surviving files");
    let p = pfs.clone();
    let (config, sink) = trace_act(MachineConfig::functional(NPROCS));
    let restored = Machine::run(config, move |ctx| {
        let mgr = CheckpointManager::new("ck", 2);
        let mut grid = Collection::new(ctx, layout(), |_| 0u64).unwrap();
        let generation = mgr.restore_latest(ctx, &p, &layout(), &mut grid).unwrap();
        for (gid, v) in grid.iter() {
            assert_eq!(*v, gid as u64 + 1000 * generation, "element {gid}");
        }
        generation
    })
    .unwrap()[0];
    dump_trace(3, sink);
    println!("  restored generation {restored}, element-exact");
    assert!(restored >= newest_durable);
    println!("\nfault_injection: crash consistency verified (seed {SEED:#x})");
}
