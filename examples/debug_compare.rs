//! Debugging — the paper's third motivating task.
//!
//! "During the parallelization process application developers often need
//! to compare results of parallel and sequential runs on the same
//! problem, to confirm that parallelization has not introduced bugs."
//!
//! A reference computation runs sequentially (1 rank) and dumps its
//! distributed result through a d/stream; the parallelized version runs
//! on 6 ranks with a different distribution and dumps to a second file.
//! A comparison pass then reads *both* files on yet another machine shape
//! and diffs them element by element — the sorted `read` guarantees
//! index-faithful comparison no matter who wrote what where. A deliberate
//! bug can be injected to show the diff catching it.
//!
//! Run with: `cargo run --example debug_compare [--inject-bug]`

use dstreams::prelude::*;
use dstreams_core::impl_stream_data;

const N: usize = 18;
const STEPS: usize = 4;

/// A cell of a 1-D stencil computation with a variable-length history.
#[derive(Debug, Default, Clone, PartialEq)]
struct Cell {
    value: f64,
    n_history: i64,
    history: Vec<f64>,
}

impl_stream_data!(Cell {
    prim value,
    prim n_history,
    slice history: f64 [n_history],
});

fn init(i: usize) -> Cell {
    Cell {
        value: (i as f64 * 0.37).sin(),
        n_history: 0,
        history: Vec::new(),
    }
}

/// One Jacobi-ish relaxation step. Needs neighbor values, which ranks
/// exchange through a gather (simple, fine at this scale).
fn step(ctx: &NodeCtx, grid: &mut Collection<Cell>, inject_bug: bool) {
    // Snapshot all values everywhere (tiny N).
    let mut mine = Vec::new();
    for (g, c) in grid.iter() {
        mine.extend_from_slice(&(g as u64).to_le_bytes());
        mine.extend_from_slice(&c.value.to_le_bytes());
    }
    let all = ctx.all_gather(mine).unwrap();
    let mut values = [0.0f64; N];
    for buf in &all {
        for rec in buf.chunks_exact(16) {
            let g = u64::from_le_bytes(rec[..8].try_into().unwrap()) as usize;
            values[g] = f64::from_le_bytes(rec[8..].try_into().unwrap());
        }
    }
    grid.apply_indexed(|g, c| {
        let left = if g == 0 { 0.0 } else { values[g - 1] };
        let right = if g == N - 1 { 0.0 } else { values[g + 1] };
        c.history.push(c.value);
        c.n_history += 1;
        let mut next = 0.25 * left + 0.5 * values[g] + 0.25 * right;
        if inject_bug && g == 7 {
            next += 1e-3; // the "parallelization bug"
        }
        c.value = next;
    });
}

fn run_and_dump(nprocs: usize, kind: DistKind, pfs: &Pfs, file: &str, inject_bug: bool) {
    let p = pfs.clone();
    let file = file.to_string();
    Machine::run(MachineConfig::sgi_challenge(nprocs), move |ctx| {
        let layout = Layout::dense(N, nprocs, kind).unwrap();
        let mut grid = Collection::new(ctx, layout.clone(), init).unwrap();
        for _ in 0..STEPS {
            step(ctx, &mut grid, inject_bug);
        }
        let mut s = OStream::create(ctx, &p, &layout, &file).unwrap();
        s.insert_collection(&grid).unwrap();
        s.write().unwrap();
        s.close().unwrap();
    })
    .unwrap();
}

fn main() {
    let inject_bug = std::env::args().any(|a| a == "--inject-bug");
    let pfs = Pfs::in_memory(6);

    // Sequential reference, then the parallel version under test.
    run_and_dump(1, DistKind::Block, &pfs, "seq.dstream", false);
    run_and_dump(6, DistKind::Cyclic, &pfs, "par.dstream", inject_bug);
    println!(
        "dumped sequential (1 rank) and parallel (6 ranks) results{}",
        if inject_bug {
            " — with an injected bug"
        } else {
            ""
        }
    );

    // Compare on a third machine shape: 3 ranks, BLOCK-CYCLIC.
    let p = pfs.clone();
    let diffs = Machine::run(MachineConfig::sgi_challenge(3), move |ctx| {
        let layout = Layout::dense(N, 3, DistKind::BlockCyclic(2)).unwrap();
        let mut a = Collection::new(ctx, layout.clone(), |_| Cell::default()).unwrap();
        let mut b = Collection::new(ctx, layout.clone(), |_| Cell::default()).unwrap();
        for (file, c) in [("seq.dstream", &mut a), ("par.dstream", &mut b)] {
            let mut r = IStream::open(ctx, &p, &layout, file).unwrap();
            r.read().unwrap();
            r.extract_collection(c).unwrap();
            r.close().unwrap();
        }
        let mut local_diffs = 0usize;
        for ((g, ca), (_, cb)) in a.iter().zip(b.iter()) {
            if ca != cb {
                println!(
                    "  cell {g}: sequential value {:.9} vs parallel {:.9}",
                    ca.value, cb.value
                );
                local_diffs += 1;
            }
        }
        ctx.all_reduce(local_diffs as u64, |x, y| x + y).unwrap()
    })
    .unwrap()[0];

    if diffs == 0 {
        println!("debug_compare: parallel run matches the sequential reference exactly");
        assert!(!inject_bug, "the injected bug should have been caught");
    } else {
        println!("debug_compare: {diffs} cell(s) differ — parallelization bug detected");
        assert!(inject_bug, "found differences without an injected bug!");
        std::process::exit(1);
    }
}
