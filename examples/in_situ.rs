//! In-situ analysis over an unbounded append stream.
//!
//! A simulation appends each step's state to an [`AppendStream`],
//! sealing a segment every few steps; an analysis tenant attaches a
//! [`TailReader`] mid-run and consumes each sealed snapshot between
//! steps. Snapshot isolation guarantees the analysis only ever sees
//! consistent step boundaries — never a half-written segment — and the
//! retention budget garbage-collects segments the tenant has finished
//! with, so the stream never grows without bound.
//!
//! * `DSTREAMS_TRACE_OUT=<prefix>` dumps the run's event log as
//!   `<prefix>.dstrace.json` — feed it to `dsverify --explain` to see
//!   the `unsealed-tail-read` and `compacted-under-reader` rules audit
//!   the run.
//! * `DSTREAMS_PFS_DIR=<dir>` backs the PFS with real files under
//!   `<dir>`, so after the run `dsdump --tail <dir>/insitu.stream`
//!   prints the stream's segment lifecycle and reader cursors.
//!
//! Run with: `cargo run --example in_situ`

use dstreams::collections::{DistKind, Layout};
use dstreams::machine::{Machine, MachineConfig};
use dstreams::pfs::{Backend, DiskModel, Pfs};
use dstreams::serve::{run_insitu, InSituConfig};
use dstreams::trace::TraceSink;
use dstreams::unbounded::AppendOptions;

const NPROCS: usize = 4;
const N: usize = 16;

fn main() {
    let trace_prefix = std::env::var("DSTREAMS_TRACE_OUT").ok();
    let sink = trace_prefix.as_ref().map(|_| TraceSink::new(NPROCS));
    let mut config = MachineConfig::functional(NPROCS);
    if let Some(s) = &sink {
        config = config.traced(s.clone());
    }

    let pfs_dir = std::env::var("DSTREAMS_PFS_DIR").ok();
    let pfs = match &pfs_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).unwrap();
            Pfs::new(NPROCS, DiskModel::instant(), Backend::Disk(dir.into()))
        }
        None => Pfs::in_memory(NPROCS),
    };
    let p = pfs.clone();
    let reports = Machine::run(config, move |ctx| {
        let layout = Layout::dense(N, NPROCS, DistKind::Block).unwrap();
        let cfg = InSituConfig {
            steps: 20,
            seal_every: 4,
            attach_after: 6,
            append: AppendOptions {
                // Keep roughly two segments of history on disk.
                retention_bytes: Some(2 * 1024),
                ..Default::default()
            },
            ..Default::default()
        };
        run_insitu(ctx, &p, &layout, &cfg).unwrap()
    })
    .unwrap();

    let r = &reports[0];
    println!(
        "in_situ: {} steps on {NPROCS} ranks — {} segments sealed, \
         {} analyzed in place ({} records, sum {})",
        r.steps, r.segments_sealed, r.segments_analyzed, r.records_analyzed, r.analysis_sum
    );
    println!(
        "  producer: {} appends, {} window stalls, {} segments compacted",
        r.producer.records_appended, r.producer.forced_retires, r.producer.segments_compacted
    );

    if let (Some(prefix), Some(sink)) = (trace_prefix, sink) {
        let path = format!("{prefix}.dstrace.json");
        std::fs::write(&path, sink.take().to_events_json()).unwrap();
        println!("  trace: {path}");
    }
    if let Some(dir) = pfs_dir {
        println!("  manifest: {dir}/insitu.stream (try dsdump --tail on it)");
    }
}
