//! Recursive data structures — "Recursively structured data types such as
//! trees can be output naturally using recursive insertion functions."
//!
//! An adaptive-mesh-refinement-style distributed forest: each collection
//! element holds a quadtree whose depth varies with local "density" (the
//! complex dynamic distributed data structures of the paper's
//! introduction). The whole forest checkpoints through a d/stream with a
//! recursive `StreamData` impl, and is read back on a machine with a
//! different processor count via `unsortedRead` (cell identity does not
//! matter for the aggregate statistics a tool would compute).
//!
//! Run with: `cargo run --example adaptive_tree`

use dstreams::prelude::*;
use dstreams_core::{Extractor, Inserter, StreamError as SErr};

/// A quadtree node: either refined into four children or a leaf with data.
#[derive(Debug, Default, Clone, PartialEq)]
struct QuadNode {
    mass: f64,
    children: Vec<QuadNode>, // empty = leaf; else exactly 4
}

impl StreamData for QuadNode {
    // Recursive insertion function, exactly as the paper suggests.
    fn insert(&self, ins: &mut Inserter<'_>) {
        ins.prim(self.mass);
        ins.prim(self.children.len() as u64);
        for c in &self.children {
            c.insert(ins);
        }
    }
    fn extract(&mut self, ext: &mut Extractor<'_>) -> Result<(), SErr> {
        self.mass = ext.prim()?;
        let n = ext.prim::<u64>()? as usize;
        self.children.clear();
        for _ in 0..n {
            let mut c = QuadNode::default();
            c.extract(ext)?;
            self.children.push(c);
        }
        Ok(())
    }
}

impl QuadNode {
    /// Deterministic adaptive refinement: denser cells refine deeper.
    fn build(seed: u64, depth: usize) -> QuadNode {
        let mass = ((seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 11) % 1000) as f64 / 1000.0;
        let refine = depth > 0 && mass > 0.4;
        QuadNode {
            mass,
            children: if refine {
                (0..4)
                    .map(|k| QuadNode::build(seed.wrapping_mul(4).wrapping_add(k + 1), depth - 1))
                    .collect()
            } else {
                Vec::new()
            },
        }
    }

    fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }

    fn total_mass(&self) -> f64 {
        self.mass + self.children.iter().map(|c| c.total_mass()).sum::<f64>()
    }

    fn max_depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|c| c.max_depth())
            .max()
            .unwrap_or(0)
    }
}

const CELLS: usize = 20;

fn make_cell(g: usize) -> QuadNode {
    QuadNode::build(g as u64 + 1, 4)
}

fn main() {
    let pfs = Pfs::in_memory(5);

    // Write the forest from 5 ranks.
    let p = pfs.clone();
    Machine::run(MachineConfig::cm5(5), move |ctx| {
        let layout = Layout::dense(CELLS, 5, DistKind::Block).unwrap();
        let forest = Collection::new(ctx, layout.clone(), make_cell).unwrap();
        let nodes: u64 = forest
            .reduce(ctx, 0u64, |t| t.node_count() as u64, |a, b| a + b)
            .unwrap();
        let mut s = OStream::create(ctx, &p, &layout, "forest").unwrap();
        s.insert_collection(&forest).unwrap();
        s.write().unwrap();
        s.close().unwrap();
        if ctx.is_root() {
            println!(
                "wrote a {CELLS}-cell adaptive forest ({nodes} quadtree nodes, variable depth) \
                 from 5 ranks — {} bytes",
                p.file_size("forest").unwrap()
            );
        }
    })
    .unwrap();

    // Read it back on 2 ranks with unsortedRead and compute statistics.
    let p = pfs.clone();
    Machine::run(MachineConfig::cm5(2), move |ctx| {
        let layout = Layout::dense(CELLS, 2, DistKind::Cyclic).unwrap();
        let mut forest = Collection::new(ctx, layout.clone(), |_| QuadNode::default()).unwrap();
        let mut r = IStream::open(ctx, &p, &layout, "forest").unwrap();
        r.unsorted_read().unwrap(); // identity-free: statistics only
        r.extract_collection(&mut forest).unwrap();
        r.close().unwrap();

        let nodes: u64 = forest
            .reduce(ctx, 0u64, |t| t.node_count() as u64, |a, b| a + b)
            .unwrap();
        let mass: f64 = forest
            .reduce(ctx, 0.0f64, |t| t.total_mass(), |a, b| a + b)
            .unwrap();
        let depth: u64 = forest
            .reduce(ctx, 0u64, |t| t.max_depth() as u64, u64::max)
            .unwrap();

        // Verify against an independently rebuilt forest (order-free).
        let want_nodes: usize = (0..CELLS).map(|g| make_cell(g).node_count()).sum();
        let want_mass: f64 = (0..CELLS).map(|g| make_cell(g).total_mass()).sum();
        assert_eq!(nodes as usize, want_nodes);
        assert!((mass - want_mass).abs() < 1e-9);

        if ctx.is_root() {
            println!(
                "read back on 2 ranks: {nodes} nodes, total mass {mass:.3}, max depth {depth}"
            );
            println!("adaptive_tree: recursive insert/extract across machine sizes verified");
        }
    })
    .unwrap();
}
