//! Pipelined I/O under seeded fault injection.
//!
//! The asynchronous pipeline (write-behind output, read-ahead input)
//! keeps several split-collective operations in flight at once — exactly
//! the regime where a protocol slip (a leaked `write_begin`, a seal
//! racing its data, a rank falling out of the collective order) would
//! hide. This example runs the full pipelined round trip while a seeded
//! [`FaultPlan`] injects transient PFS failures, verifies every element
//! survives, and can dump the deterministic event log for `dsverify` to
//! audit.
//!
//! * `DSTREAMS_FAULT_SEED=<u64>` picks the fault seed (the same variable
//!   the chaos-sweep tests honor); the injected op indices are derived
//!   from it, so different seeds fault different points of the pipeline.
//! * `DSTREAMS_TRACE_OUT=<prefix>` dumps the run's event log as
//!   `<prefix>.dstrace.json`.
//!
//! Run with: `cargo run --example pipelined_chaos`

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::machine::{FaultPlan, Machine, MachineConfig};
use dstreams::pfs::Pfs;
use dstreams::pipeline;
use dstreams::trace::TraceSink;

const NPROCS: usize = 4;
const N: usize = 24;
const RECORDS: usize = 6;

fn fault_seed() -> u64 {
    std::env::var("DSTREAMS_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00D5_EA11)
}

fn value(gid: usize, rec: usize) -> u64 {
    (gid as u64) * 31 + (rec as u64) * 1000
}

fn main() {
    let seed = fault_seed();
    // Two transient faults at seed-derived points: one in the write
    // pipeline's op range, one in the read pipeline's. Transients retry
    // to success, so the round trip must still be element-exact.
    let plan = FaultPlan::seeded(seed)
        .transient_at((seed % NPROCS as u64) as usize, 2 + seed % 5)
        .transient_at(((seed >> 8) % NPROCS as u64) as usize, 9 + (seed >> 8) % 7);

    let trace_prefix = std::env::var("DSTREAMS_TRACE_OUT").ok();
    let sink = trace_prefix.as_ref().map(|_| TraceSink::new(NPROCS));
    let mut config = MachineConfig::functional(NPROCS).with_faults(plan);
    if let Some(s) = &sink {
        config = config.traced(s.clone());
    }

    let pfs = Pfs::in_memory(NPROCS);
    let p = pfs.clone();
    Machine::run(config, move |ctx| {
        let layout = Layout::dense(N, NPROCS, DistKind::Block).unwrap();

        // Write-behind: up to two record flushes in flight while the
        // "compute" (refilling the collection) proceeds.
        let mut out = pipeline::OStream::create(ctx, &p, &layout, "chaos").unwrap();
        for rec in 0..RECORDS {
            let c = Collection::new(ctx, layout.clone(), |g| value(g, rec)).unwrap();
            out.insert_collection(&c).unwrap();
            out.write().unwrap();
        }
        out.close().unwrap();

        // Read-ahead: prefetch primed before the first read, then each
        // read consumes one record and launches the next prefetch.
        let mut g = Collection::new(ctx, layout.clone(), |_| 0u64).unwrap();
        let mut input = pipeline::IStream::open(ctx, &p, &layout, "chaos").unwrap();
        input.start(true).unwrap();
        for rec in 0..RECORDS {
            input.read().unwrap();
            input.extract_collection(&mut g).unwrap();
            for (gid, v) in g.iter() {
                assert_eq!(*v, value(gid, rec), "record {rec} element {gid}");
            }
        }
        input.close().unwrap();

        if ctx.is_root() {
            println!(
                "pipelined_chaos: {RECORDS} records round-tripped on {} ranks \
                 under fault seed {seed:#x}",
                ctx.nprocs()
            );
        }
    })
    .unwrap();

    if let (Some(prefix), Some(sink)) = (trace_prefix, sink) {
        let path = format!("{prefix}.dstrace.json");
        std::fs::write(&path, sink.take().to_events_json()).unwrap();
        println!("  trace: {path}");
    }
}
