//! Cross-shape read: a checkpoint written by 64 ranks is read back on 8.
//!
//! The writer machine lays a 4096-element grid out BLOCK-CYCLIC(3) over
//! 64 processors and checkpoints it. The reader machine — a quarter the
//! size, BLOCK-distributed — just calls `read()`: the file is
//! self-describing, so the two-phase redistribution planner computes,
//! from the stored layout and the size table alone, the exact minimum
//! set of bytes that must change ranks, and ships only those. The run
//! prints the measured shuttle traffic next to the plan's analytic lower
//! bound; they are equal by construction, and this program asserts it.
//!
//! Run with: `cargo run --example cross_shape`
//!
//! Set `DSTREAMS_TRACE_OUT=<prefix>` to dump the reader's event log as
//! `<prefix>.dstrace.json`, ready for `dsverify` (whose
//! redist-conservation rule re-checks every transfer in the trace).

use dstreams::prelude::*;
use dstreams::trace::TraceSink;
use dstreams_core::to_bytes;

const WRITERS: usize = 64;
const READERS: usize = 8;
const N: usize = 4096;

/// Variable-sized grid element: gid-dependent length and contents.
fn element(g: usize) -> Vec<u8> {
    (0..(g % 7) + 1).map(|k| (g * 31 + k) as u8).collect()
}

fn main() {
    let pfs = Pfs::in_memory(WRITERS.max(READERS));

    // ---- 64 writers, BLOCK-CYCLIC(3) ------------------------------------
    let p = pfs.clone();
    Machine::run(MachineConfig::paragon(WRITERS), move |ctx| {
        let layout = Layout::dense(N, WRITERS, DistKind::BlockCyclic(3)).unwrap();
        let g = Collection::new(ctx, layout.clone(), element).unwrap();
        let mut s = OStream::create(ctx, &p, &layout, "ckpt").unwrap();
        s.insert_collection(&g).unwrap();
        s.write().unwrap();
        s.close().unwrap();
        if ctx.is_root() {
            println!(
                "wrote ckpt: {N} elements, {} ranks, BLOCK-CYCLIC(3), {} bytes",
                WRITERS,
                p.file_size("ckpt").unwrap()
            );
        }
    })
    .unwrap();

    // The plan's lower bound, computed exactly as the readers will:
    // element sizes in file order, destination owners from the new shape.
    let wlayout = Layout::dense(N, WRITERS, DistKind::BlockCyclic(3)).unwrap();
    let rlayout = Layout::dense(N, READERS, DistKind::Block).unwrap();
    let mut sizes = Vec::with_capacity(N);
    let mut dst = Vec::with_capacity(N);
    for r in 0..WRITERS {
        for gid in wlayout.local_elements(r) {
            sizes.push(to_bytes(&element(gid), false).len() as u64);
            dst.push(rlayout.owner(gid).unwrap());
        }
    }
    let lower_bound = RedistPlan::new(READERS, &sizes, &dst).lower_bound();

    // ---- 8 readers, BLOCK -----------------------------------------------
    let sink = TraceSink::new(READERS);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::paragon(READERS).traced(sink.clone()),
        move |ctx| {
            let layout = Layout::dense(N, READERS, DistKind::Block).unwrap();
            let mut g = Collection::new(ctx, layout.clone(), |_| Vec::<u8>::new()).unwrap();
            let mut r = IStream::open(ctx, &p, &layout, "ckpt").unwrap();
            r.read().unwrap();
            r.extract_collection(&mut g).unwrap();
            r.close().unwrap();
            for (gid, v) in g.iter() {
                assert_eq!(*v, element(gid), "element {gid} corrupted crossing shapes");
            }
            if ctx.is_root() {
                println!(
                    "read ckpt on {READERS} ranks (BLOCK): element-exact, \
                     simulated time {}",
                    ctx.now()
                );
            }
        },
    )
    .unwrap();

    let trace = sink.take();
    let counts = trace.op_counts();
    println!(
        "redistribution: {} transfers, {} elements, {} bytes shuttled \
         (analytic minimum: {lower_bound} bytes)",
        counts.redist_shuttles, counts.redist_shuttle_elements, counts.redist_shuttle_bytes
    );
    assert_eq!(
        counts.redist_shuttle_bytes, lower_bound,
        "planner moved more than the analytic minimum"
    );

    if let Ok(prefix) = std::env::var("DSTREAMS_TRACE_OUT") {
        let path = format!("{prefix}.dstrace.json");
        std::fs::write(&path, trace.to_events_json()).unwrap();
        println!("  trace: {path}");
    }
}
