//! Adaptive distributed grids — the paper's opening motivation:
//! "Adaptive parallel applications using dynamic distributed data
//! structures of variable-sized elements (e.g. distributed grids of
//! variable density) are now emerging."
//!
//! A heat-diffusion stencil runs on a 2-D grid whose rows have *variable
//! density* (refined where the initial temperature gradient is steep).
//! Each step needs neighbor rows — the `Grid2d` halo exchange — and the
//! grid checkpoints itself through a d/stream every few steps using the
//! `CheckpointManager`; the final state is then restored on a machine
//! with a different processor count and verified.
//!
//! Run with: `cargo run --example adaptive_grid`

use dstreams::prelude::*;
use dstreams_collections::Grid2d;
use dstreams_core::CheckpointManager;

const ROWS: usize = 16;
const STEPS: usize = 6;

/// Rows near the hot band get 3x the resolution.
fn density(i: usize) -> usize {
    if (6..10).contains(&i) {
        24
    } else {
        8
    }
}

/// Initial temperature: a hot band across the middle rows.
fn initial(i: usize, _j: usize) -> f64 {
    if (7..9).contains(&i) {
        100.0
    } else {
        0.0
    }
}

/// Sample a (possibly different-density) neighbor row at column fraction
/// `frac` — how adaptive codes interpolate across refinement boundaries.
fn sample(row: &[f64], frac: f64) -> f64 {
    if row.is_empty() {
        return 0.0;
    }
    let idx = ((frac * row.len() as f64) as usize).min(row.len() - 1);
    row[idx]
}

fn step_grid(ctx: &NodeCtx, grid: &mut Grid2d<f64>) {
    let (above, below) = grid.exchange_row_halo(ctx).unwrap();
    // Snapshot local rows so the update reads old values.
    let old: Vec<(usize, Vec<f64>)> = grid
        .as_collection()
        .iter()
        .map(|(i, r)| (i, r.cells.clone()))
        .collect();
    let ids = grid.as_collection().global_ids().to_vec();
    let first = ids.first().copied();
    let last = ids.last().copied();
    grid.apply_cells(|i, j, v| {
        let (slot, row) = old
            .iter()
            .enumerate()
            .find_map(|(s, (gi, r))| (*gi == i).then_some((s, r)))
            .expect("local row");
        let frac = (j as f64 + 0.5) / row.len() as f64;
        let up = if Some(i) == first {
            above.as_deref().map(|r| sample(r, frac)).unwrap_or(row[j])
        } else if slot > 0 {
            sample(&old[slot - 1].1, frac)
        } else {
            row[j]
        };
        let down = if Some(i) == last {
            below.as_deref().map(|r| sample(r, frac)).unwrap_or(row[j])
        } else if slot + 1 < old.len() {
            sample(&old[slot + 1].1, frac)
        } else {
            row[j]
        };
        let left = if j > 0 { row[j - 1] } else { row[j] };
        let right = if j + 1 < row.len() {
            row[j + 1]
        } else {
            row[j]
        };
        *v = row[j] + 0.2 * (up + down + left + right - 4.0 * row[j]);
    });
}

fn total_heat(ctx: &NodeCtx, grid: &Grid2d<f64>) -> f64 {
    grid.as_collection()
        .reduce(
            ctx,
            0.0f64,
            |r| {
                // Weight by cell width so refinement doesn't change the total.
                r.cells.iter().sum::<f64>() / r.cells.len() as f64
            },
            |a, b| a + b,
        )
        .unwrap()
}

fn main() {
    let pfs = Pfs::in_memory(8);

    // Simulate on 4 ranks, checkpointing every 3 steps.
    let p = pfs.clone();
    let final_heat = Machine::run(MachineConfig::sgi_challenge(4), move |ctx| {
        let mut grid = Grid2d::new(ctx, ROWS, DistKind::Block, density, initial).unwrap();
        let cells = grid.total_cells(ctx).unwrap();
        if ctx.is_root() {
            println!("adaptive grid: {ROWS} rows, {cells} cells (3x refinement in the hot band)");
        }
        let mgr = CheckpointManager::new("grid", 2);
        for step in 1..=STEPS {
            step_grid(ctx, &mut grid);
            if step % 3 == 0 {
                mgr.save(ctx, &p, grid.as_collection(), step as u64)
                    .unwrap();
                let heat = total_heat(ctx, &grid);
                if ctx.is_root() {
                    println!("step {step}: checkpointed (total heat {heat:.4})");
                }
            }
        }
        total_heat(ctx, &grid)
    })
    .unwrap()[0];
    println!("final total heat on 4 ranks: {final_heat:.6}");

    // Restore the last checkpoint on 8 ranks and replay the remaining
    // steps: the result must match the original run exactly.
    let p = pfs.clone();
    let replay_heat = Machine::run(MachineConfig::sgi_challenge(8), move |ctx| {
        let layout = Layout::dense(ROWS, 8, DistKind::Block).unwrap();
        let mut coll = dstreams_collections::Collection::new(ctx, layout.clone(), |_| {
            dstreams_collections::GridRow::default()
        })
        .unwrap();
        let mgr = CheckpointManager::new("grid", 2);
        let generation = mgr.restore_latest(ctx, &p, &layout, &mut coll).unwrap();
        let mut grid = Grid2d::from_collection(coll);
        if ctx.is_root() {
            println!("restored checkpoint generation {generation} on 8 ranks");
        }
        for _ in (generation as usize + 1)..=STEPS {
            step_grid(ctx, &mut grid);
        }
        total_heat(ctx, &grid)
    })
    .unwrap()[0];
    println!("replayed total heat on 8 ranks: {replay_heat:.6}");

    assert!(
        (final_heat - replay_heat).abs() < 1e-9,
        "replay from checkpoint must reproduce the run bit-for-bit"
    );
    println!("adaptive_grid: restart-and-replay across machine sizes verified");
}
