//! Checkpointing over an unreliable interconnect.
//!
//! Runs the three-generation aggregated checkpoint workload while a
//! seeded [`MsgFaultPlan`] drops, duplicates, delays and reorders
//! messages on every edge of the simulated network. The reliable
//! delivery layer (sequence-numbered envelopes, retransmit under
//! virtual-time backoff, receive-side dedup and resequencing) has to
//! make the chaos invisible: every generation must complete, restore
//! must be element-exact, and the whole run must replay bit-identically
//! for the same seed.
//!
//! * `DSTREAMS_MSG_SEED=<u64>` picks the message-fault seed (the same
//!   variable the chaos-soup tests honor), so a failing CI seed can be
//!   replayed locally with one command.
//! * `DSTREAMS_TRACE_OUT=<prefix>` dumps the run's event log as
//!   `<prefix>.dstrace.json` for `dsverify` to audit.
//! * `DSTREAMS_MSG_INERT=1` swaps the chaos plan for an *inert* one
//!   (same seeded plan machinery, every fate Deliver). The resulting
//!   trace is the causal reference for `dsverify --diff`: diffing a
//!   chaotic run against the inert run of the same seed pinpoints the
//!   first event the transport faults actually perturbed.
//!
//! Run with: `cargo run --example message_chaos`

use dstreams::collections::{Collection, DistKind, Layout};
use dstreams::core::CheckpointManager;
use dstreams::machine::{CollectiveConfig, FaultPlan, Machine, MachineConfig, MsgFaultPlan};
use dstreams::pfs::Pfs;
use dstreams::trace::TraceSink;

const NPROCS: usize = 4;
const N: usize = 16;
const GENERATIONS: u64 = 3;

fn msg_seed() -> u64 {
    std::env::var("DSTREAMS_MSG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A0_55ED)
}

fn main() {
    let seed = msg_seed();
    let inert = std::env::var("DSTREAMS_MSG_INERT").is_ok_and(|v| v == "1");
    let msg_plan = if inert {
        // Reliable path engaged, every fate Deliver: the causal
        // reference trace for `dsverify --diff`.
        MsgFaultPlan::seeded(seed)
    } else {
        MsgFaultPlan::seeded(seed)
            .drop_ppm(100_000)
            .dup_ppm(80_000)
            .delay_ppm(80_000)
            .reorder_ppm(80_000)
    };
    let plan = FaultPlan::default().with_msg(msg_plan);

    let trace_prefix = std::env::var("DSTREAMS_TRACE_OUT").ok();
    let sink = trace_prefix.as_ref().map(|_| TraceSink::new(NPROCS));
    let mut config = MachineConfig::functional(NPROCS)
        .with_faults(plan)
        .with_collective(CollectiveConfig {
            aggregators: 2,
            stripe_align: true,
        });
    if let Some(s) = &sink {
        config = config.traced(s.clone());
    }

    let pfs = Pfs::in_memory(NPROCS);
    let p = pfs.clone();
    Machine::run(config, move |ctx| {
        let layout = Layout::dense(N, NPROCS, DistKind::Block).unwrap();
        let mgr = CheckpointManager::new("ck", 2);
        let mut g = Collection::new(ctx, layout.clone(), |i| i as u64).unwrap();
        for step in 1..=GENERATIONS {
            g.apply(|v| *v += 100);
            mgr.save(ctx, &p, &g, step).unwrap();
        }
    })
    .unwrap();

    // Restart on the survivors: the newest generation must come back
    // element-exact despite everything the transport did.
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(NPROCS), move |ctx| {
        let layout = Layout::dense(N, NPROCS, DistKind::Block).unwrap();
        let mgr = CheckpointManager::new("ck", 2);
        let mut g = Collection::new(ctx, layout.clone(), |_| 0u64).unwrap();
        let generation = mgr.restore_latest(ctx, &p, &layout, &mut g).unwrap();
        assert_eq!(generation, GENERATIONS);
        for (gid, v) in g.iter() {
            assert_eq!(*v, gid as u64 + 100 * generation, "element {gid}");
        }
        if ctx.is_root() {
            println!(
                "message_chaos: {GENERATIONS} generations survived drop+dup+delay+reorder \
                 on {} ranks under message seed {seed:#x}",
                ctx.nprocs()
            );
        }
    })
    .unwrap();

    if let (Some(prefix), Some(sink)) = (trace_prefix, sink) {
        let path = format!("{prefix}.dstrace.json");
        std::fs::write(&path, sink.take().to_events_json()).unwrap();
        println!("  trace: {path}");
    }
}
