//! Checkpointing — the paper's first motivating task.
//!
//! An SCF N-body run (a real mean-field gravity solver: global
//! coefficient reductions, local kicks, leapfrog integration) checkpoints
//! the distributed grid every few steps. The run then "crashes", and is
//! *restarted on a different machine*: twice the processors and a
//! different distribution.
//! Because d/stream files are self-describing (distribution + per-element
//! sizes precede the data), the restart just calls `read()` — the library
//! routes every segment to its new owner.
//!
//! Run with: `cargo run --example checkpoint_restart`

use dstreams::prelude::*;
use dstreams_scf::physics::diagnostics;
use dstreams_scf::{ScfConfig, ScfSolver, Segment};

const N_SEGMENTS: usize = 24;
const DT: f64 = 0.05;
const CRASH_AT_STEP: usize = 5;
const CHECKPOINT_EVERY: usize = 2;

fn main() {
    let cfg = ScfConfig::variable(N_SEGMENTS, 40, 15); // variable-sized segments
    let pfs = Pfs::in_memory(8);

    // ---- original run: 4 processors, BLOCK distribution -----------------
    let p = pfs.clone();
    let ckpt_step = Machine::run(MachineConfig::paragon(4), move |ctx| {
        let layout = Layout::dense(N_SEGMENTS, 4, DistKind::Block).unwrap();
        let mut grid = Collection::new(ctx, layout.clone(), |g| cfg.make_segment(g)).unwrap();
        let solver = ScfSolver::default();
        let mut last_ckpt = 0;
        for step in 1..=CRASH_AT_STEP {
            solver.step(ctx, &mut grid, DT).unwrap();
            if step % CHECKPOINT_EVERY == 0 {
                let name = format!("ckpt.{step}");
                let mut s = OStream::create(ctx, &p, &layout, &name).unwrap();
                s.insert_collection(&grid).unwrap();
                s.write().unwrap();
                s.close().unwrap();
                last_ckpt = step;
                if ctx.is_root() {
                    println!("step {step}: checkpointed to {name}");
                }
            }
        }
        let d = diagnostics(ctx, &grid).unwrap();
        if ctx.is_root() {
            println!(
                "step {CRASH_AT_STEP}: CRASH (simulated). diagnostics at crash: \
                 KE={:.6}, COM=({:.4}, {:.4}, {:.4})",
                d.kinetic_energy, d.center_of_mass[0], d.center_of_mass[1], d.center_of_mass[2]
            );
        }
        last_ckpt
    })
    .unwrap()[0];

    // ---- restart: 8 processors, CYCLIC distribution ---------------------
    let p = pfs.clone();
    Machine::run(MachineConfig::paragon(8), move |ctx| {
        let layout = Layout::dense(N_SEGMENTS, 8, DistKind::Cyclic).unwrap();
        let mut grid = Collection::new(ctx, layout.clone(), |_| Segment::default()).unwrap();

        // The reader supplies no metadata: the file knows it was written
        // by 4 BLOCK-distributed ranks.
        let name = format!("ckpt.{ckpt_step}");
        let mut r = IStream::open(ctx, &p, &layout, &name).unwrap();
        r.read().unwrap(); // sorted read: segments land at their indices
        r.extract_collection(&mut grid).unwrap();
        r.close().unwrap();

        let d = diagnostics(ctx, &grid).unwrap();
        if ctx.is_root() {
            println!(
                "restarted from {name} on 8 ranks (CYCLIC): {} particles, KE={:.6}",
                d.n_particles, d.kinetic_energy
            );
        }

        // Recompute the reference state independently and verify the
        // restart. The restored state is bit-exact w.r.t. the 4-rank run
        // that wrote it; the reference recomputed *here* on 8 ranks
        // differs in the last bits because the field reductions associate
        // per-rank partial sums differently — so compare with a tight
        // tolerance rather than bitwise.
        let solver = ScfSolver::default();
        let mut reference =
            Collection::new(ctx, layout.clone(), |g| cfg.make_segment(g)).unwrap();
        for _ in 0..ckpt_step {
            solver.step(ctx, &mut reference, DT).unwrap();
        }
        let mut max_dev = 0.0f64;
        for ((ga, a), (gb, b)) in grid.iter().zip(reference.iter()) {
            assert_eq!(ga, gb);
            assert_eq!(a.n_particles, b.n_particles, "segment {ga} shape");
            for (arrs_a, arrs_b) in a.arrays().iter().zip(b.arrays().iter()) {
                for (x, y) in arrs_a.iter().zip(arrs_b.iter()) {
                    max_dev = max_dev.max((x - y).abs());
                }
            }
        }
        assert!(max_dev < 1e-9, "restart deviates by {max_dev}");
        if ctx.is_root() {
            println!(
                "restored state matches an independent 8-rank recomputation                  to {max_dev:.2e} (FP reduction-order noise only)"
            );
        }

        // ... and the run continues where it left off.
        for step in (ckpt_step + 1)..=(CRASH_AT_STEP + 2) {
            solver.step(ctx, &mut grid, DT).unwrap();
            if ctx.is_root() {
                println!("step {step}: resumed computation");
            }
        }
        let d = diagnostics(ctx, &grid).unwrap();
        if ctx.is_root() {
            println!(
                "checkpoint_restart: exact restart across machine sizes verified \
                 (final KE={:.6})",
                d.kinetic_energy
            );
        }
    })
    .unwrap();
}
