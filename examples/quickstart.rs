//! Quickstart: the paper's Figure 3 program pair, in Rust.
//!
//! The output program builds a distributed grid of particle lists and
//! writes it (plus one interleaved field) through an output d/stream; the
//! input program reads everything back. The two programs run on the same
//! simulated 4-node machine here, but the file is self-describing — see
//! `examples/checkpoint_restart.rs` for reading on a different machine.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Set `DSTREAMS_TRACE_OUT=<prefix>` to dump the run's event log as
//! `<prefix>.dstrace.json`, ready for `dsverify`.

use dstreams::prelude::*;
use dstreams::trace::TraceSink;
use dstreams_core::impl_stream_data;

/// The paper's element class: a variable-sized list of particles.
#[derive(Debug, Default, Clone, PartialEq)]
struct ParticleList {
    number_of_particles: i64,
    mass: Vec<f64>,
    position: Vec<f64>, // x,y,z triples
}

impl_stream_data!(ParticleList {
    prim number_of_particles,
    slice mass: f64 [number_of_particles],
    vec position,
});

fn make(g: usize) -> ParticleList {
    let n = (g % 3) + 1; // variable sizes across the grid
    ParticleList {
        number_of_particles: n as i64,
        mass: (0..n).map(|k| 1.0 + (g * 10 + k) as f64).collect(),
        position: (0..3 * n).map(|k| (g + k) as f64 * 0.25).collect(),
    }
}

fn main() {
    const NPROCS: usize = 4;
    const N: usize = 12; // the paper's example uses a 12-element grid

    // Memory-backed files with the calibrated Paragon PFS cost model:
    // virtual time reflects what the 1995 hardware would have charged.
    let pfs = Pfs::new(NPROCS, DiskModel::paragon_pfs(), Backend::Memory);
    let p = pfs.clone();

    let trace_prefix = std::env::var("DSTREAMS_TRACE_OUT").ok();
    let sink = trace_prefix.as_ref().map(|_| TraceSink::new(NPROCS));
    let mut config = MachineConfig::paragon(NPROCS);
    if let Some(s) = &sink {
        config = config.traced(s.clone());
    }

    Machine::run(config, move |ctx| {
        // Processors P; Distribution d(12, &P, CYCLIC); Align a(12, ...);
        let layout = Layout::dense(N, NPROCS, DistKind::Cyclic).unwrap();

        // DistributedParticleGrid<ParticleList> g(&d, &a);
        let g = Collection::new(ctx, layout.clone(), make).unwrap();
        // A second, aligned collection with a per-cell density field.
        let g2 = Collection::new(ctx, layout.clone(), |i| i as f64 * 0.5).unwrap();

        // ---- Output program --------------------------------------------
        // oStream s(&d, &a, "wholeGridFile");
        let mut s = OStream::create(ctx, &p, &layout, "wholeGridFile").unwrap();
        s.insert_collection(&g).unwrap(); //  s << g;
        s.insert_with(&g, |e, ins| ins.prim(e.number_of_particles))
            .unwrap(); //  s << g.numberOfParticles;
        s.insert_with(&g2, |e, ins| ins.prim(*e)).unwrap(); //  s << g2.particleDensity;
        s.write().unwrap(); //  s.write();
        s.close().unwrap();

        // ---- Input program ---------------------------------------------
        // iStream s(&d, &a, "wholeGridFile");  s.read();
        let mut g_in = Collection::new(ctx, layout.clone(), |_| ParticleList::default()).unwrap();
        let mut counts = Collection::new(ctx, layout.clone(), |_| 0i64).unwrap();
        let mut dens = Collection::new(ctx, layout.clone(), |_| 0.0f64).unwrap();

        let mut r = IStream::open(ctx, &p, &layout, "wholeGridFile").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut g_in).unwrap(); //  s >> g;
        r.extract_with(&mut counts, |e, ext| {
            *e = ext.prim()?;
            Ok(())
        })
        .unwrap(); //  s >> g.numberOfParticles;
        r.extract_with(&mut dens, |e, ext| {
            *e = ext.prim()?;
            Ok(())
        })
        .unwrap(); //  s >> g2.particleDensity;
        r.close().unwrap();

        // Verify and report.
        for (gid, e) in g_in.iter() {
            assert_eq!(e, &make(gid), "grid element {gid} corrupted");
        }
        for (gid, c) in counts.iter() {
            assert_eq!(*c, make(gid).number_of_particles);
        }
        for (gid, d) in dens.iter() {
            assert_eq!(*d, gid as f64 * 0.5);
        }
        if ctx.is_root() {
            println!(
                "quickstart: wrote + read a 12-element distributed grid on {} ranks",
                ctx.nprocs()
            );
            println!(
                "  file size: {} bytes (self-describing: header, sizes, data)",
                p.file_size("wholeGridFile").unwrap()
            );
            println!("  simulated Paragon time: {}", ctx.now());
        }
    })
    .unwrap();

    if let (Some(prefix), Some(sink)) = (trace_prefix, sink) {
        let path = format!("{prefix}.dstrace.json");
        std::fs::write(&path, sink.take().to_events_json()).unwrap();
        println!("  trace: {path}");
    }
}
