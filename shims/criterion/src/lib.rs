//! Offline shim for `criterion`, providing the minimal harness surface the
//! workspace's benches use. Instead of statistical sampling it runs each
//! benchmark a small fixed number of iterations and prints one line of
//! mean time per iteration — enough to compile and smoke-run `cargo bench`
//! without the real dependency.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Disable plot generation (no-op in the shim; kept for API parity).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// Identifier of one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build from a function name and its parameter's display form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Warm-up budget (ignored by the shim).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measurement budget (ignored by the shim; `sample_size` governs).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "bench {}/{}: {:?}/iter over {} iters",
            self.name, id.id, per_iter, b.iters
        );
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Let the routine measure itself: it receives the iteration count and
    /// returns the total measured duration (used here to report *virtual*
    /// simulated time rather than wall-clock).
    pub fn iter_custom<R>(&mut self, mut routine: R)
    where
        R: FnMut(u64) -> Duration,
    {
        self.elapsed = routine(self.iters);
    }
}

/// Group benchmark target functions under a named runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_closures() {
        let mut c = Criterion::default().without_plots();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("inc", 7), &7u64, |b, &n| {
            calls += 1;
            b.iter_custom(|iters| Duration::from_nanos(iters * n));
        });
        group.bench_function(BenchmarkId::new("noop", 0), |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(calls, 1);
    }
}
