//! Offline shim for `crossbeam`, providing the `channel` subset this
//! workspace uses: unbounded MPSC-style channels with timeout receives and
//! a poll-based `Select` over multiple receivers.
//!
//! Built on `std::sync::{Mutex, Condvar}`. Disconnection semantics follow
//! crossbeam: a receive on a channel whose senders are all dropped fails
//! with `Disconnected` once the queue drains, and `Select` treats a
//! disconnected channel as ready (its receive completes immediately with
//! an error).

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<ChanState<T>>,
        ready: Condvar,
    }

    struct ChanState<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Select::select_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct SelectTimeoutError;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChanState {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap();
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receiver_alive = false;
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).unwrap();
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self.shared.ready.wait_timeout(st, remaining).unwrap();
                st = guard;
            }
        }

        /// Non-blocking readiness probe: a receive right now would not
        /// block (either a message is queued or the channel is
        /// disconnected and would error immediately).
        fn ready_now(&self) -> bool {
            let st = self.shared.queue.lock().unwrap();
            !st.queue.is_empty() || st.senders == 0
        }
    }

    trait Pollable {
        fn poll_ready(&self) -> bool;
    }

    impl<T> Pollable for Receiver<T> {
        fn poll_ready(&self) -> bool {
            self.ready_now()
        }
    }

    /// Poll-based select over a set of receive operations.
    ///
    /// Unlike crossbeam's parker-based implementation this shim polls the
    /// registered receivers with a short sleep between rounds; it is only
    /// intended for the cold `recv_any` path of the simulator's mailbox,
    /// which has a single consumer per receiver (so readiness observed by
    /// the poll cannot be stolen before the completing `recv`).
    pub struct Select<'a> {
        handles: Vec<&'a dyn Pollable>,
    }

    impl<'a> Select<'a> {
        /// Create an empty selector.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Select {
                handles: Vec::new(),
            }
        }

        /// Register a receive operation; returns its operation index.
        pub fn recv<T>(&mut self, rx: &'a Receiver<T>) -> usize {
            self.handles.push(rx);
            self.handles.len() - 1
        }

        /// Wait until a registered operation is ready or the timeout
        /// elapses.
        pub fn select_timeout(
            &mut self,
            timeout: Duration,
        ) -> Result<SelectedOperation, SelectTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut spins: u32 = 0;
            loop {
                for (i, h) in self.handles.iter().enumerate() {
                    if h.poll_ready() {
                        return Ok(SelectedOperation { index: i });
                    }
                }
                if Instant::now() >= deadline {
                    return Err(SelectTimeoutError);
                }
                if spins < 64 {
                    spins += 1;
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }

    /// A ready operation returned by [`Select::select_timeout`].
    pub struct SelectedOperation {
        index: usize,
    }

    impl SelectedOperation {
        /// Index of the ready operation in registration order.
        pub fn index(&self) -> usize {
            self.index
        }

        /// Complete the selected receive on the corresponding receiver.
        pub fn recv<T>(self, rx: &Receiver<T>) -> Result<T, RecvError> {
            // Readiness was observed and this mailbox is the only
            // consumer, so either a message is queued or the channel is
            // disconnected; a bounded wait covers the benign race with a
            // sender mid-enqueue.
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(v) => Ok(v),
                Err(_) => Err(RecvError),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(41u32).unwrap();
            tx.send(42u32).unwrap();
            assert_eq!(rx.recv(), Ok(41));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
        }

        #[test]
        fn disconnect_is_reported() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_fires_without_messages() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn select_picks_the_ready_channel() {
            let (tx_a, rx_a) = unbounded::<u8>();
            let (_tx_b, rx_b) = unbounded::<u8>();
            tx_a.send(7).unwrap();
            let mut sel = Select::new();
            sel.recv(&rx_a);
            sel.recv(&rx_b);
            let oper = sel.select_timeout(Duration::from_millis(100)).unwrap();
            assert_eq!(oper.index(), 0);
            assert_eq!(oper.recv(&rx_a), Ok(7));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                tx.send(99u64).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(99));
            h.join().unwrap();
        }
    }
}
