//! Offline shim for `parking_lot`, backed by `std::sync` primitives.
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! handful of external dependencies are vendored as minimal shims exposing
//! exactly the API surface this repository uses. Semantics match
//! `parking_lot` where it matters here: `lock()`/`read()`/`write()` return
//! guards directly (no poisoning — a poisoned std lock is unwrapped into
//! its inner value, matching parking_lot's panic-transparent behavior).

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, PoisonError, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// Mutual exclusion primitive (no poisoning in the API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires unique ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock (no poisoning in the API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}
