//! Offline shim for `rand` 0.8, providing the deterministic subset this
//! workspace uses: `StdRng::seed_from_u64` plus `Rng::gen_range` over
//! integer and float ranges.
//!
//! The bit stream differs from upstream `rand` (this is a
//! splitmix64-seeded xoshiro256++), which is fine here: every consumer
//! seeds explicitly and only depends on determinism, not on specific
//! values.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construct a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample one uniform value from itself.
pub trait SampleRange<T> {
    /// Draw one value from `rng` uniformly within the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with splitmix64 seed expansion.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..=20);
            assert!((10..=20).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<usize> = (0..8).map(|_| a.gen_range(0usize..1_000_000)).collect();
        let vb: Vec<usize> = (0..8).map(|_| b.gen_range(0usize..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
