//! Offline shim for `proptest`, providing the subset this workspace uses:
//! the `proptest!` macro, integer/float range strategies, `any::<T>()`,
//! `Just`, `prop_map`, `prop_oneof!`, `proptest::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream worth knowing:
//! * generation is purely random (no shrinking) and *deterministic*: the
//!   RNG is seeded from the test function's name, so a failing case
//!   reproduces on every run without a persistence file;
//! * `ProptestConfig` only carries `cases`.

#![forbid(unsafe_code)]

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the candidate strategies (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// Values with a canonical "anything" strategy ([`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, roughly symmetric around zero.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (unit - 0.5) * 2.0e6
        }
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: a fixed length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic generator (splitmix64 seeded from the test
    /// function's name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the `proptest!` macro passes the
        /// test function name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, then a fixed tweak so empty labels
            // still have a workable state.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration; only `cases` is meaningful in this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for source compatibility with real proptest; this
        /// shim never shrinks, so the value is ignored.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// A failed property within a test case (raised by `prop_assert*`).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure with a rendered message.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each contained test function over many generated cases.
///
/// Supports the same surface the workspace uses: an optional
/// `#![proptest_config(..)]` header and `fn name(pat in strategy, ...)`
/// items carrying their own attributes (including `#[test]`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n(deterministic seed: rerunning reproduces)",
                            case + 1,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Check a boolean property; on failure the current case errors with the
/// rendered message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Check two values for equality; on failure the case errors showing both.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Check two values for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Uniform choice between strategy arms yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B,
        C(usize),
    }

    fn kind_strategy() -> impl Strategy<Value = Kind> {
        prop_oneof![Just(Kind::A), Just(Kind::B), (1usize..5).prop_map(Kind::C),]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(
            n in 3usize..9,
            x in any::<u32>(),
            v in crate::collection::vec(any::<u8>(), 0..10),
        ) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(v.len() < 10);
            let _ = x;
        }

        #[test]
        fn oneof_hits_every_arm_eventually(k in kind_strategy()) {
            match k {
                Kind::A | Kind::B => {}
                Kind::C(n) => prop_assert!((1..5).contains(&n)),
            }
        }

        #[test]
        fn tuple_and_nested_vec_strategies(
            ops in crate::collection::vec((0u64..500, crate::collection::vec(any::<u8>(), 0..6)), 1..8),
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 8);
            for (off, data) in &ops {
                prop_assert!(*off < 500);
                prop_assert!(data.len() < 6, "len {} at offset {}", data.len(), off);
            }
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        for _ in 0..50 {
            assert_eq!(
                (0usize..100).generate(&mut a),
                (0usize..100).generate(&mut b)
            );
        }
    }
}
