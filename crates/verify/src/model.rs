//! Fig. 2 model checking: a reference automaton and an exhaustive
//! enumerator that drives every op sequence up to a depth bound through
//! both the reference and the real streams.
//!
//! The reference automata below are deliberately tiny transcriptions of
//! the paper's Figure 2 (extended with the split-collective states of
//! the asynchronous pipeline): a pending-insert counter and in-flight
//! counter for the output side; a record cursor, per-record extract
//! counter and prefetch slot for the input side. The enumerator runs
//! every sequence over the op alphabet — *including every prefix*, so
//! `close` is checked from every reachable state — against a fresh real
//! stream, and demands:
//!
//! * **parity** — the real stream accepts exactly the sequences the
//!   reference accepts, and rejects with the predicted error class;
//! * **typed rejection** — every rejection is a `StreamError` value;
//!   a panic anywhere fails the whole check (the machine run aborts);
//! * **no wrong data** — after every accepted extract whose element
//!   order is deterministic, the extracted collection is compared
//!   against the values the fixture wrote.

use std::collections::VecDeque;

use dstreams_collections::{Collection, DistKind, Layout};
use dstreams_core::{IStream, OStream, PendingWrite, StreamError, StreamOptions};
use dstreams_machine::{Machine, MachineConfig, MemoryModel, NodeCtx};
use dstreams_pfs::Pfs;

/// Output-side op alphabet ([`OStream`] primitives; `close` is applied
/// at the end of every sequence rather than enumerated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OStreamOp {
    /// `insert_collection`
    Insert,
    /// blocking `write`
    Write,
    /// split-collective `write_begin`
    WriteBegin,
    /// split-collective `write_end` of the oldest in-flight handle
    WriteEnd,
}

/// Input-side op alphabet ([`IStream`] primitives; `close` is applied
/// at the end of every sequence rather than enumerated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IStreamOp {
    /// sorted `read`
    Read,
    /// `unsorted_read`
    UnsortedRead,
    /// `extract_collection`
    Extract,
    /// sorted `prefetch`
    Prefetch,
    /// `prefetch_unsorted`
    PrefetchUnsorted,
    /// `skip_record`
    Skip,
}

/// Error classes a rejection may carry; parity is checked class-by-class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectClass {
    /// [`StreamError::StateViolation`]
    StateViolation,
    /// [`StreamError::EmptyWrite`]
    EmptyWrite,
    /// [`StreamError::UnconsumedData`]
    UnconsumedData,
    /// [`StreamError::ExtractCountExceeded`]
    ExtractCountExceeded,
    /// [`StreamError::EndOfStream`]
    EndOfStream,
    /// Any other error — never predicted by the reference, so parity
    /// fails loudly if the real stream produces one.
    Other,
}

fn classify(e: &StreamError) -> RejectClass {
    match e {
        StreamError::StateViolation { .. } => RejectClass::StateViolation,
        StreamError::EmptyWrite => RejectClass::EmptyWrite,
        StreamError::UnconsumedData { .. } => RejectClass::UnconsumedData,
        StreamError::ExtractCountExceeded { .. } => RejectClass::ExtractCountExceeded,
        StreamError::EndOfStream => RejectClass::EndOfStream,
        _ => RejectClass::Other,
    }
}

/// Verdict of one op on either automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The op succeeded.
    Accept,
    /// The op succeeded by reporting end-of-stream (`prefetch` → `false`).
    AcceptAtEnd,
    /// The op failed with a typed error of the given class.
    Reject(RejectClass),
    /// The op is not expressible right now (`write_end` with no handle
    /// in hand — the dynamic API cannot even spell it) and was skipped.
    Skipped,
}

/// What a parity check covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityReport {
    /// Sequences executed (every prefix counts once).
    pub sequences: usize,
    /// Individual ops whose verdicts were compared.
    pub ops_checked: usize,
    /// Ops the reference predicted — and the real stream produced — a
    /// rejection for.
    pub rejections: usize,
}

/// Reference automaton for the output side of Fig. 2.
struct RefOStream {
    smp_single_buffer: bool,
    pending_inserts: u32,
    in_flight: usize,
}

impl RefOStream {
    fn new(smp_single_buffer: bool) -> Self {
        RefOStream {
            smp_single_buffer,
            pending_inserts: 0,
            in_flight: 0,
        }
    }

    fn apply(&mut self, op: OStreamOp, has_handle: bool) -> Verdict {
        match op {
            OStreamOp::Insert => {
                self.pending_inserts += 1;
                Verdict::Accept
            }
            OStreamOp::Write => {
                if self.pending_inserts == 0 {
                    Verdict::Reject(RejectClass::EmptyWrite)
                } else {
                    self.pending_inserts = 0;
                    Verdict::Accept
                }
            }
            OStreamOp::WriteBegin => {
                // The real stream refuses split-collective writes in
                // single-buffer SMP mode before it even looks at the
                // group, so the insert count is preserved.
                if self.smp_single_buffer {
                    Verdict::Reject(RejectClass::StateViolation)
                } else if self.pending_inserts == 0 {
                    Verdict::Reject(RejectClass::EmptyWrite)
                } else {
                    self.pending_inserts = 0;
                    self.in_flight += 1;
                    Verdict::Accept
                }
            }
            OStreamOp::WriteEnd => {
                if !has_handle {
                    Verdict::Skipped
                } else {
                    self.in_flight -= 1;
                    Verdict::Accept
                }
            }
        }
    }

    fn close(&self) -> Verdict {
        if self.pending_inserts > 0 || self.in_flight > 0 {
            Verdict::Reject(RejectClass::StateViolation)
        } else {
            Verdict::Accept
        }
    }
}

/// Reference automaton for the input side of Fig. 2, parameterized by
/// the fixture file's per-record insert counts.
struct RefIStream {
    inserts_per_record: Vec<u32>,
    /// Index of the next record the cursor points at.
    cursor: usize,
    /// Buffered record: `(record index, extracts done)`. Not cleared by
    /// `skip_record` — the real stream keeps the consumed record
    /// buffered, and further extracts hit the count check.
    current: Option<(usize, u32)>,
    /// In-flight prefetch and its read mode (`true` = sorted).
    prefetched: Option<bool>,
}

impl RefIStream {
    fn new(inserts_per_record: Vec<u32>) -> Self {
        RefIStream {
            inserts_per_record,
            cursor: 0,
            current: None,
            prefetched: None,
        }
    }

    fn n_records(&self) -> usize {
        self.inserts_per_record.len()
    }

    fn current_unconsumed(&self) -> bool {
        matches!(self.current, Some((rec, done)) if done < self.inserts_per_record[rec])
    }

    fn apply(&mut self, op: IStreamOp) -> Verdict {
        match op {
            IStreamOp::Read | IStreamOp::UnsortedRead => {
                let sorted = op == IStreamOp::Read;
                // Check order mirrors `read_impl`: unconsumed data first
                // (the prefetch stays in flight), then the prefetch slot
                // (a mode mismatch consumes the prefetch but does not
                // advance the cursor), then end-of-stream.
                if self.current_unconsumed() {
                    return Verdict::Reject(RejectClass::UnconsumedData);
                }
                if let Some(p) = self.prefetched.take() {
                    if p != sorted {
                        return Verdict::Reject(RejectClass::StateViolation);
                    }
                    self.current = Some((self.cursor, 0));
                    self.cursor += 1;
                    return Verdict::Accept;
                }
                if self.cursor >= self.n_records() {
                    return Verdict::Reject(RejectClass::EndOfStream);
                }
                self.current = Some((self.cursor, 0));
                self.cursor += 1;
                Verdict::Accept
            }
            IStreamOp::Prefetch | IStreamOp::PrefetchUnsorted => {
                let sorted = op == IStreamOp::Prefetch;
                if self.prefetched.is_some() {
                    return Verdict::Reject(RejectClass::StateViolation);
                }
                if self.cursor >= self.n_records() {
                    // Prefetch past the end is `Ok(false)`, not an error.
                    return Verdict::AcceptAtEnd;
                }
                self.prefetched = Some(sorted);
                Verdict::Accept
            }
            IStreamOp::Skip => {
                if self.prefetched.is_some() {
                    return Verdict::Reject(RejectClass::StateViolation);
                }
                if self.current_unconsumed() {
                    return Verdict::Reject(RejectClass::UnconsumedData);
                }
                if self.cursor >= self.n_records() {
                    return Verdict::Reject(RejectClass::EndOfStream);
                }
                self.cursor += 1;
                Verdict::Accept
            }
            IStreamOp::Extract => match &mut self.current {
                None => Verdict::Reject(RejectClass::StateViolation),
                Some((rec, done)) => {
                    if *done >= self.inserts_per_record[*rec] {
                        Verdict::Reject(RejectClass::ExtractCountExceeded)
                    } else {
                        *done += 1;
                        Verdict::Accept
                    }
                }
            },
        }
    }

    fn close(&self) -> Verdict {
        // The real close drains an in-flight prefetch, then refuses if
        // the buffered record still owes extracts.
        if self.current_unconsumed() {
            Verdict::Reject(RejectClass::StateViolation)
        } else {
            Verdict::Accept
        }
    }
}

/// Run `f` on every sequence over `alphabet` of length ≤ `depth`
/// (including the empty sequence — every prefix is its own sequence).
fn for_each_sequence<T: Copy>(
    alphabet: &[T],
    depth: usize,
    f: &mut impl FnMut(&[T]) -> Result<(), String>,
) -> Result<(), String> {
    fn rec<T: Copy>(
        alphabet: &[T],
        depth: usize,
        seq: &mut Vec<T>,
        f: &mut impl FnMut(&[T]) -> Result<(), String>,
    ) -> Result<(), String> {
        f(seq)?;
        if seq.len() == depth {
            return Ok(());
        }
        for &a in alphabet {
            seq.push(a);
            rec(alphabet, depth, seq, f)?;
            seq.pop();
        }
        Ok(())
    }
    rec(alphabet, depth, &mut Vec::with_capacity(depth), f)
}

fn mismatch<Op: std::fmt::Debug>(
    seq: &[Op],
    at: usize,
    predicted: Verdict,
    actual: Verdict,
) -> String {
    format!(
        "parity divergence at op {at} of {seq:?}: reference predicts {predicted:?}, \
         real stream produced {actual:?}"
    )
}

fn verdict_of(r: Result<(), StreamError>) -> Verdict {
    match r {
        Ok(()) => Verdict::Accept,
        Err(e) => Verdict::Reject(classify(&e)),
    }
}

/// Exhaustively check output-side parity: every [`OStreamOp`] sequence
/// up to `depth`, with `close` additionally attempted after each one.
/// `smp_single_buffer` selects the shared-memory single-buffer variant
/// (where `write_begin` must be rejected).
pub fn check_ostream_parity(
    np: usize,
    depth: usize,
    smp_single_buffer: bool,
) -> Result<ParityReport, String> {
    let pfs = Pfs::in_memory(np);
    let mut cfg = MachineConfig::functional(np);
    if smp_single_buffer {
        cfg.memory = MemoryModel::Shared;
    }
    let alphabet = [
        OStreamOp::Insert,
        OStreamOp::Write,
        OStreamOp::WriteBegin,
        OStreamOp::WriteEnd,
    ];
    let reports = Machine::run(cfg, move |ctx| -> Result<ParityReport, String> {
        let layout = Layout::dense(2 * ctx.nprocs(), ctx.nprocs(), DistKind::Block)
            .map_err(|e| e.to_string())?;
        let c = Collection::new(ctx, layout.clone(), |g| g as u32).map_err(|e| e.to_string())?;
        let mut report = ParityReport {
            sequences: 0,
            ops_checked: 0,
            rejections: 0,
        };
        let mut idx = 0usize;
        for_each_sequence(&alphabet, depth, &mut |seq| {
            idx += 1;
            run_ostream_sequence(
                ctx,
                &pfs,
                &layout,
                &c,
                seq,
                smp_single_buffer,
                &format!("seq{idx}"),
                &mut report,
            )
        })?;
        Ok(report)
    })
    .map_err(|e| e.to_string())?;
    reports.into_iter().next().expect("at least one rank")
}

#[allow(clippy::too_many_arguments)]
fn run_ostream_sequence(
    ctx: &NodeCtx,
    pfs: &Pfs,
    layout: &Layout,
    c: &Collection<u32>,
    seq: &[OStreamOp],
    smp_single_buffer: bool,
    name: &str,
    report: &mut ParityReport,
) -> Result<(), String> {
    let opts = StreamOptions {
        smp_single_buffer,
        ..StreamOptions::default()
    };
    let mut real = OStream::create_with(ctx, pfs, layout, name, opts)
        .map_err(|e| format!("create failed before {seq:?}: {e}"))?;
    let mut reference = RefOStream::new(smp_single_buffer);
    let mut handles: VecDeque<PendingWrite> = VecDeque::new();
    for (at, &op) in seq.iter().enumerate() {
        let predicted = reference.apply(op, !handles.is_empty());
        let actual = match op {
            OStreamOp::Insert => verdict_of(real.insert_collection(c)),
            OStreamOp::Write => verdict_of(real.write()),
            OStreamOp::WriteBegin => match real.write_begin() {
                Ok(h) => {
                    handles.push_back(h);
                    Verdict::Accept
                }
                Err(e) => Verdict::Reject(classify(&e)),
            },
            OStreamOp::WriteEnd => match handles.pop_front() {
                None => Verdict::Skipped,
                Some(h) => verdict_of(real.write_end(h)),
            },
        };
        if predicted != actual {
            return Err(mismatch(seq, at, predicted, actual));
        }
        report.ops_checked += 1;
        if matches!(actual, Verdict::Reject(_)) {
            report.rejections += 1;
        }
    }
    let predicted_close = reference.close();
    let actual_close = verdict_of(real.close());
    if predicted_close != actual_close {
        return Err(mismatch(seq, seq.len(), predicted_close, actual_close));
    }
    report.ops_checked += 1;
    if matches!(actual_close, Verdict::Reject(_)) {
        report.rejections += 1;
    }
    report.sequences += 1;
    Ok(())
}

/// Per-record insert counts of the input-parity fixture file: a short
/// record chain with a multi-insert head so partial extraction, extract
/// overrun, skip, and end-of-stream are all reachable within depth 6.
const FIXTURE_INSERTS: [u32; 3] = [2, 1, 1];

/// Value the fixture writes for global element `gid` of record `rec`
/// (every insert of a record repeats the same values, so each extract of
/// that record must reproduce them).
fn fixture_value(gid: usize, rec: usize) -> u32 {
    (gid + 1000 * rec) as u32
}

/// Exhaustively check input-side parity: every [`IStreamOp`] sequence up
/// to `depth` against a fixture file of [`FIXTURE_INSERTS`] records,
/// with `close` additionally attempted after each sequence. After every
/// accepted extract with deterministic element placement (sorted reads
/// anywhere, unsorted reads at `np == 1`), the extracted values are
/// compared against what the fixture wrote.
pub fn check_istream_parity(np: usize, depth: usize) -> Result<ParityReport, String> {
    let pfs = Pfs::in_memory(np);
    let alphabet = [
        IStreamOp::Read,
        IStreamOp::UnsortedRead,
        IStreamOp::Extract,
        IStreamOp::Prefetch,
        IStreamOp::PrefetchUnsorted,
        IStreamOp::Skip,
    ];
    let reports = Machine::run(
        MachineConfig::functional(np),
        move |ctx| -> Result<ParityReport, String> {
            let layout = Layout::dense(2 * ctx.nprocs(), ctx.nprocs(), DistKind::Block)
                .map_err(|e| e.to_string())?;
            write_istream_fixture(ctx, &pfs, &layout).map_err(|e| e.to_string())?;
            let mut g =
                Collection::new(ctx, layout.clone(), |_| 0u32).map_err(|e| e.to_string())?;
            let mut report = ParityReport {
                sequences: 0,
                ops_checked: 0,
                rejections: 0,
            };
            for_each_sequence(&alphabet, depth, &mut |seq| {
                run_istream_sequence(ctx, &pfs, &layout, &mut g, seq, &mut report)
            })?;
            Ok(report)
        },
    )
    .map_err(|e| e.to_string())?;
    reports.into_iter().next().expect("at least one rank")
}

fn write_istream_fixture(ctx: &NodeCtx, pfs: &Pfs, layout: &Layout) -> Result<(), StreamError> {
    let mut s = OStream::create(ctx, pfs, layout, "fixture")?;
    for (rec, &inserts) in FIXTURE_INSERTS.iter().enumerate() {
        let c = Collection::new(ctx, layout.clone(), |g| fixture_value(g, rec))?;
        for _ in 0..inserts {
            s.insert_collection(&c)?;
        }
        s.write()?;
    }
    s.close()
}

fn run_istream_sequence(
    ctx: &NodeCtx,
    pfs: &Pfs,
    layout: &Layout,
    g: &mut Collection<u32>,
    seq: &[IStreamOp],
    report: &mut ParityReport,
) -> Result<(), String> {
    let mut real = IStream::open(ctx, pfs, layout, "fixture")
        .map_err(|e| format!("open failed before {seq:?}: {e}"))?;
    let mut reference = RefIStream::new(FIXTURE_INSERTS.to_vec());
    // `(record index, sorted)` of the buffered record, for value checks.
    let mut buffered: Option<(usize, bool)> = None;
    for (at, &op) in seq.iter().enumerate() {
        let predicted = reference.apply(op);
        let actual = match op {
            IStreamOp::Read => verdict_of(real.read()),
            IStreamOp::UnsortedRead => verdict_of(real.unsorted_read()),
            IStreamOp::Extract => verdict_of(real.extract_collection(g)),
            IStreamOp::Prefetch => match real.prefetch() {
                Ok(true) => Verdict::Accept,
                Ok(false) => Verdict::AcceptAtEnd,
                Err(e) => Verdict::Reject(classify(&e)),
            },
            IStreamOp::PrefetchUnsorted => match real.prefetch_unsorted() {
                Ok(true) => Verdict::Accept,
                Ok(false) => Verdict::AcceptAtEnd,
                Err(e) => Verdict::Reject(classify(&e)),
            },
            IStreamOp::Skip => verdict_of(real.skip_record()),
        };
        if predicted != actual {
            return Err(mismatch(seq, at, predicted, actual));
        }
        report.ops_checked += 1;
        if matches!(actual, Verdict::Reject(_)) {
            report.rejections += 1;
        }
        if actual == Verdict::Accept {
            match op {
                IStreamOp::Read | IStreamOp::UnsortedRead => {
                    let (rec, _) = reference.current.expect("accepted read buffers a record");
                    buffered = Some((rec, op == IStreamOp::Read));
                }
                IStreamOp::Extract => {
                    let (rec, sorted) = buffered.expect("accepted extract implies a record");
                    // Element placement is deterministic for sorted reads
                    // (routing) and for unsorted reads on one rank (the
                    // whole file in file order).
                    if sorted || ctx.nprocs() == 1 {
                        for (gid, v) in g.iter() {
                            if *v != fixture_value(gid, rec) {
                                return Err(format!(
                                    "wrong data after {seq:?}: record {rec} element {gid} \
                                     extracted as {v}, fixture wrote {}",
                                    fixture_value(gid, rec)
                                ));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let predicted_close = reference.close();
    let actual_close = verdict_of(real.close());
    if predicted_close != actual_close {
        return Err(mismatch(seq, seq.len(), predicted_close, actual_close));
    }
    report.ops_checked += 1;
    if matches!(actual_close, Verdict::Reject(_)) {
        report.rejections += 1;
    }
    report.sequences += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shallow-depth smoke runs; the full depth-6 corpus lives in the
    // workspace-level tests/state_machine.rs.

    #[test]
    fn ostream_parity_shallow() {
        let r = check_ostream_parity(1, 4, false).unwrap();
        assert!(r.sequences > 300, "{r:?}");
        assert!(r.rejections > 0, "{r:?}");
    }

    #[test]
    fn ostream_parity_smp_shallow() {
        let r = check_ostream_parity(2, 3, true).unwrap();
        assert!(r.rejections > 0, "{r:?}");
    }

    #[test]
    fn istream_parity_shallow() {
        let r = check_istream_parity(1, 3).unwrap();
        assert!(r.sequences > 200, "{r:?}");
        assert!(r.rejections > 0, "{r:?}");
    }

    #[test]
    fn istream_parity_two_ranks_shallow() {
        let r = check_istream_parity(2, 3).unwrap();
        assert!(r.rejections > 0, "{r:?}");
    }
}
