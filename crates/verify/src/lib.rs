//! # dstreams-verify — protocol verification for d/streams
//!
//! The paper's correctness contract has two halves: the per-stream state
//! machine of Figure 2 (`open → (insert⁺ → write)* → close` and its
//! input/async duals) and the SPMD collective discipline ("all nodes
//! call write/read together"). This crate checks both, three ways:
//!
//! * [`typestate`] — zero-cost wrappers that encode Fig. 2 in the type
//!   system, so illegal call orders are compile errors (each documented
//!   as a `compile_fail` doctest);
//! * [`model`] — a reference automaton of Fig. 2 plus an exhaustive
//!   enumerator that drives every op sequence up to a depth bound
//!   through both the reference and the real streams, asserting
//!   accept/reject parity and that every rejection is a typed error;
//! * [`analyze`] — a static analysis pass over deterministic traces
//!   (`dstreams-trace`) checking cross-rank collective matching,
//!   async submit/complete pairing, seal ordering, and divergence
//!   (hold-and-wait) hazards. The `dsverify` binary runs it on
//!   `.dstrace.json` files.
//! * [`hb`] — a happens-before engine (vector clocks in the
//!   FastTrack/Eraser tradition) powering a PFS interval race
//!   detector, HB-grounded cache/session coherence, and the
//!   `dsverify --diff` structural trace diff.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod hb;
pub mod model;
pub mod typestate;

pub use analyze::{analyze, analyze_rules, Hazard, Report, Rule};
pub use hb::{diff_traces, DiffReport, EventRef, HbIndex, Witness};
pub use model::{check_istream_parity, check_ostream_parity, IStreamOp, OStreamOp, ParityReport};
