//! `dsverify` — static analysis over d/streams trace files.
//!
//! ```text
//! dsverify TRACE.json [TRACE.json ...]
//! ```
//!
//! Each argument is a `.dstrace.json` file (the portable event-log
//! format produced by `Trace::to_events_json`, e.g. via the examples'
//! `DSTREAMS_TRACE_OUT` environment variable). Every file is checked for
//! collective-matching, async-pairing, seal-ordering, and
//! message-pairing hazards.
//!
//! Exit status: 0 when every trace is clean, 1 when any hazard was
//! found, 2 on usage, I/O, or parse errors.

use std::process::ExitCode;

use dstreams_trace::Trace;
use dstreams_verify::analyze;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "-h" || p == "--help") {
        eprintln!("usage: dsverify TRACE.json [TRACE.json ...]");
        eprintln!("checks d/streams trace files for protocol hazards;");
        eprintln!("exits 0 = clean, 1 = hazards found, 2 = bad input");
        return ExitCode::from(2);
    }
    let mut hazards = 0usize;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dsverify: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let trace = match Trace::from_events_json(&text) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dsverify: {path}: parse error: {e}");
                return ExitCode::from(2);
            }
        };
        let report = analyze(&trace);
        println!("== {path}");
        println!("{report}");
        hazards += report.hazards.len();
    }
    if hazards > 0 {
        eprintln!(
            "dsverify: {hazards} hazard(s) across {} trace(s)",
            paths.len()
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
