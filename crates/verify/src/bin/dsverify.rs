//! `dsverify` — static analysis over d/streams trace files.
//!
//! ```text
//! dsverify [--rules LIST] [--explain] TRACE.json [TRACE.json ...]
//! dsverify --diff A.dstrace.json B.dstrace.json
//! ```
//!
//! Each argument is a `.dstrace.json` file (the portable event-log
//! format produced by `Trace::to_events_json`, e.g. via the examples'
//! `DSTREAMS_TRACE_OUT` environment variable). Every file is checked
//! against the full rule set of [`dstreams_verify::analyze`]: protocol
//! discipline (collective matching, async pairing, seal ordering,
//! message pairing, shuttle/redist conservation, duplicate suppression,
//! retransmit accounting, session isolation, cache coherence) plus the
//! happens-before rules (interval race detection and HB coherence)
//! built on per-rank vector clocks.
//!
//! * `--rules a,b` restricts the run to a comma-separated subset of
//!   rule names (see `--help` for the vocabulary). Unknown names are a
//!   usage error.
//! * `--explain` prints a witness chain under each hazard that carries
//!   one: the two conflicting events with their incomparable vector
//!   clocks — a machine-checkable proof that no happens-before path
//!   orders them.
//! * `--diff A B` switches to HB-aware structural diff mode: find each
//!   rank's first divergent event, single out the causally-minimal one
//!   (no other rank's divergence happens-before it), and print its
//!   causal frontier — the last event per peer rank the origin depends
//!   on, provably inside the shared prefix.
//!
//! A trace with zero events is a usage error ("nothing analyzed"), not
//! a clean pass: an empty file proves nothing about the run it claims
//! to describe.
//!
//! Exit status: 0 when every trace is clean (or the diffed traces are
//! causally identical), 1 when any hazard or divergence was found, 2 on
//! usage, I/O, parse, or empty-trace errors.

use std::process::ExitCode;

use dstreams_trace::Trace;
use dstreams_verify::{analyze_rules, diff_traces, Rule};

fn print_help() {
    eprintln!("usage: dsverify [--rules LIST] [--explain] TRACE.json [TRACE.json ...]");
    eprintln!("       dsverify --diff A.dstrace.json B.dstrace.json");
    eprintln!();
    eprintln!("checks d/streams trace files for protocol hazards;");
    eprintln!("exits 0 = clean, 1 = hazards/divergence found, 2 = bad input");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --rules LIST  run only the named rules (comma-separated):");
    for rule in Rule::ALL {
        eprintln!("                  {}", rule.name());
    }
    eprintln!("  --explain     print a witness chain under each hazard that has");
    eprintln!("                one: the two conflicting events and their");
    eprintln!("                incomparable vector clocks (proof of no");
    eprintln!("                happens-before path)");
    eprintln!("  --diff A B    HB-aware structural diff of two traces: report the");
    eprintln!("                first causally-divergent event per rank, the");
    eprintln!("                overall causal origin, and its witness frontier;");
    eprintln!("                exit 0 iff the traces are causally identical");
    eprintln!("  -h, --help    show this help");
}

fn load_trace(path: &str) -> Result<Trace, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("dsverify: {path}: {e}");
        ExitCode::from(2)
    })?;
    let trace = Trace::from_events_json(&text).map_err(|e| {
        eprintln!("dsverify: {path}: parse error: {e}");
        ExitCode::from(2)
    })?;
    if trace.events.is_empty() {
        eprintln!("dsverify: {path}: nothing analyzed: trace contains zero events");
        eprintln!(
            "dsverify: an empty trace proves nothing about the run; refusing to report it clean"
        );
        return Err(ExitCode::from(2));
    }
    Ok(trace)
}

fn run_diff(a_path: &str, b_path: &str) -> ExitCode {
    let a = match load_trace(a_path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let b = match load_trace(b_path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let report = diff_traces(&a, &b);
    println!("== diff {a_path} {b_path}");
    println!(
        "trace A: {} event(s) across {} rank(s); trace B: {} event(s) across {} rank(s)",
        report.events.0, a.nprocs, report.events.1, b.nprocs
    );
    if let Some((na, nb)) = report.nprocs_mismatch {
        println!("rank-count mismatch: trace A has {na} rank(s), trace B has {nb}");
        println!("no per-rank comparison is possible");
        eprintln!("dsverify: traces diverge (rank-count mismatch)");
        return ExitCode::from(1);
    }
    if report.identical() {
        println!("traces are causally identical: every rank's event sequence matches");
        return ExitCode::SUCCESS;
    }
    for (rank, pos) in &report.divergent_ranks {
        println!("rank {rank}: first structural divergence at lane position {pos}");
    }
    if let Some(origin) = &report.origin {
        println!(
            "first causally-divergent event: rank {} at lane position {} \
             (no other rank's divergence happens-before it)",
            origin.rank, origin.position
        );
        match &origin.a {
            Some(e) => println!("  trace A: {e}"),
            None => println!("  trace A: (lane ends here)"),
        }
        match &origin.b {
            Some(e) => println!("  trace B: (lane continues) {e}"),
            None => println!("  trace B: (lane ends here)"),
        }
        if origin.frontier.is_empty() {
            println!("  causal frontier: empty — the event depends on no other rank");
        } else {
            println!("  causal frontier (last event per peer rank the origin depends on;");
            println!("  everything at or before these points is identical in both traces):");
            for e in &origin.frontier {
                println!("    {e}");
            }
        }
    }
    eprintln!("dsverify: traces diverge");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        print_help();
        return ExitCode::from(2);
    }

    let mut rules: Vec<Rule> = Rule::ALL.to_vec();
    let mut explain = false;
    let mut diff: Option<(String, String)> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rules" => {
                let Some(list) = it.next() else {
                    eprintln!("dsverify: --rules requires a comma-separated list of rule names");
                    return ExitCode::from(2);
                };
                let mut selected = Vec::new();
                for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    match Rule::from_name(name) {
                        Some(rule) => selected.push(rule),
                        None => {
                            eprintln!("dsverify: unknown rule {name:?}; known rules:");
                            for rule in Rule::ALL {
                                eprintln!("  {}", rule.name());
                            }
                            return ExitCode::from(2);
                        }
                    }
                }
                if selected.is_empty() {
                    eprintln!("dsverify: --rules selected no rules");
                    return ExitCode::from(2);
                }
                rules = selected;
            }
            "--explain" => explain = true,
            "--diff" => {
                let (Some(a), Some(b)) = (it.next(), it.next()) else {
                    eprintln!("dsverify: --diff requires exactly two trace files");
                    return ExitCode::from(2);
                };
                diff = Some((a, b));
            }
            other if other.starts_with("--") => {
                eprintln!("dsverify: unknown option {other:?} (see --help)");
                return ExitCode::from(2);
            }
            _ => paths.push(arg),
        }
    }

    if let Some((a, b)) = diff {
        if !paths.is_empty() || explain {
            eprintln!("dsverify: --diff takes exactly two traces and no other inputs");
            return ExitCode::from(2);
        }
        return run_diff(&a, &b);
    }

    if paths.is_empty() {
        eprintln!("dsverify: no trace files given (see --help)");
        return ExitCode::from(2);
    }

    let mut hazards = 0usize;
    for path in &paths {
        let trace = match load_trace(path) {
            Ok(t) => t,
            Err(code) => return code,
        };
        let report = analyze_rules(&trace, &rules);
        println!("== {path}");
        println!("{report}");
        if explain {
            for h in report.hazards.iter().filter(|h| h.witness.is_some()) {
                println!("explain: {}: {}", h.rule, h.detail);
                if let Some(w) = &h.witness {
                    println!("{w}");
                }
            }
        }
        hazards += report.hazards.len();
    }
    if hazards > 0 {
        eprintln!(
            "dsverify: {hazards} hazard(s) across {} trace(s)",
            paths.len()
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
