//! Trace-based static analysis: collective matching, async pairing,
//! seal ordering, and divergence hazards over deterministic traces.
//!
//! The d/streams contract is SPMD: every rank calls the stream
//! collectives together, in the same order, with conforming arguments.
//! The runtime's deterministic trace records exactly what each rank did,
//! so violations of that discipline — the class of bug MPI-checker-style
//! tools hunt — are decidable after the fact by a pass over the merged
//! event log. [`analyze`] runs fourteen rules:
//!
//! * **collective matching** — each rank's sequence of collective
//!   operations must agree elementwise in kind and root. A crash fault
//!   on any rank relaxes the rule to the common prefix (the survivors
//!   legitimately stop short or diverge into recovery).
//! * **async pairing** — every `AsyncSubmit` must be retired by an
//!   `AsyncComplete` on the same rank (unless the rank crashed), and no
//!   completion may appear without a submission.
//! * **seal ordering** — a record's commit seal must not reach the file
//!   before the record data it covers: a seal written with a completion
//!   time earlier than the preceding collective data write's completion
//!   is a crash-consistency hazard (a crash in between would leave a
//!   sealed-but-torn record).
//! * **message pairing** — point-to-point sends and receives must match
//!   up per `(from, to, tag)` channel; unmatched traffic is the
//!   signature of a hold-and-wait deadlock or a rank waiting on a peer
//!   that never spoke.
//! * **shuttle conservation** — collective-buffering shuttle traffic
//!   (`AggShuttle` events) must conserve per directed pair: every byte a
//!   rank ships toward an aggregator must be claimed by a matching
//!   receive on that aggregator, and vice versa. A leak means an
//!   aggregator dropped (or invented) part of someone's block — data
//!   silently missing from the coalesced physical write. The rule is
//!   silent on traces with no shuttle traffic (direct, non-aggregated
//!   runs) and relaxed for crashed endpoints.
//! * **redist conservation** — redistribution shuttle traffic
//!   (`RedistShuttle` events) must conserve per directed pair in bytes
//!   *and* elements: every element a reader rank ships toward its owner
//!   under the target layout must be claimed by exactly one matching
//!   receive. A mismatch means the two-phase planner's executor lost,
//!   duplicated or mis-sliced element data mid-shuffle. Silent on traces
//!   without redistribution traffic; relaxed for crashed endpoints.
//! * **duplicate suppression** — no channel may claim more receives than
//!   sends. The reliable-delivery layer logs a successful `MsgSend` only
//!   once per message even when the fault plan duplicates it on the
//!   wire, so a surplus receive means the dedup filter let a duplicate
//!   through to the program. This rule is *not* crash-excused: a
//!   consumed duplicate is wrong no matter who died.
//! * **retransmit accounting** — an edge that logged `Retransmit`
//!   events must have resolved: either a delivery eventually succeeded
//!   (a `MsgSend` on that edge) or the failure detector gave up (a
//!   `SuspectPeer` naming the destination). Retransmits with neither
//!   outcome are unacked-but-counted: the counters claim recovery work
//!   whose message neither arrived nor was declared lost.
//! * **session isolation** — the service layer's admission ledger must
//!   balance per rank: every `SessionAdmit` is resolved by exactly one
//!   `SessionDone` with the same request id (relaxed when a crash
//!   aborted the run), no request completes twice or out of thin air,
//!   and — never excused — a request the admission controller *shed*
//!   must not be served: a `SessionDone` for a shed id means one
//!   tenant's rejected work ran anyway, breaking isolation.
//! * **cache coherence** — a working-set cache `hit` may only be served
//!   from an entry that is still live: inserted on this rank, not since
//!   evicted or invalidated, and with no PFS write to the underlying
//!   file in between. A stale hit silently returns bytes that no longer
//!   match the file — wrong no matter who crashed, so never excused.
//! * **hb interval race** — two conflicting file-range accesses (W/W or
//!   W/R on overlapping byte intervals, with aggregator-coalesced
//!   writes attributed back to the originating ranks) with no
//!   happens-before path between them. Every hazard carries a witness:
//!   the two events and their incomparable vector clocks, a proof that
//!   no causal chain orders them. Crash-excused.
//! * **hb coherence** — the cache and session rules re-grounded on
//!   happens-before order instead of timestamps: a cache hit served
//!   after the rank causally observed an invalidating write, or a
//!   `SessionDone` that happens-before another rank's `SessionAdmit`
//!   of the same request id (the lockstep ledger ran backwards).
//! * **unsealed tail read** — snapshot isolation for append streams: a
//!   PFS read of a segment file (any file named by a `SegmentSeal` or
//!   `TailConsume` event) must be ordered after that segment's seal by
//!   a happens-before path. A read with no such path may observe bytes
//!   a producer is still writing — exactly the torn snapshot the seal
//!   boundary exists to rule out. Crash-excused for the reading rank.
//! * **compacted under reader** — retention safety for append streams:
//!   a `Compact` of segment *s* is legal only once every attached,
//!   non-detached tail reader's cursor has advanced past *s*. Each
//!   rank's lane carries its own replica of the attach/consume/detach
//!   ledger, so the rule replays cursors per lane and flags a compact
//!   that reclaims a segment a live reader still needs, with the
//!   reader's last cursor movement and the compact as the HB witness.

use std::collections::BTreeMap;
use std::fmt;

use crate::hb;
use dstreams_core::RecordSeal;
use dstreams_trace::{CollOp, Event, EventKind, FaultKind, PfsOp, Trace};

/// Which analysis rule produced a hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Cross-rank collective sequences disagree.
    CollectiveMatching,
    /// An async submission was never retired, or a completion had no
    /// submission.
    AsyncPairing,
    /// A commit seal completed before the record data it covers.
    SealOrdering,
    /// Point-to-point sends and receives do not pair up.
    MessagePairing,
    /// Collective-buffering shuttle traffic does not conserve between a
    /// source rank and its aggregator.
    ShuttleConservation,
    /// Redistribution shuttle traffic does not conserve between a reader
    /// rank and the owner it shipped elements to.
    RedistConservation,
    /// A channel claimed more receives than sends: the dedup filter let
    /// a duplicate delivery through to the program.
    DuplicateSuppression,
    /// An edge logged retransmits that neither succeeded (`MsgSend`)
    /// nor were abandoned (`SuspectPeer`).
    RetransmitAccounting,
    /// The session ledger does not balance: an admitted request never
    /// completed, completed twice, completed without being admitted, or
    /// — worst — a shed request was served anyway.
    SessionIsolation,
    /// A cache hit was served from an entry that was never inserted,
    /// was already evicted or invalidated, or whose file was rewritten
    /// after the insert.
    CacheCoherence,
    /// Two conflicting file-range accesses (write/write or write/read
    /// on overlapping byte intervals) have no happens-before path.
    HbIntervalRace,
    /// Happens-before coherence: a cache hit served after causally
    /// observing an invalidating write, or a session completion that
    /// causally precedes another rank's admission of the same request.
    HbCoherence,
    /// A tail read of a segment file is not ordered after that
    /// segment's seal — the reader may have observed bytes a producer
    /// was still writing (snapshot isolation broken).
    UnsealedTailRead,
    /// A sealed segment was compacted while an attached tail reader's
    /// cursor still pointed at or before it — the reader's data was
    /// reclaimed out from under it (retention safety broken).
    CompactedUnderReader,
}

impl Rule {
    /// Every rule, in the order [`analyze`] runs them.
    pub const ALL: [Rule; 14] = [
        Rule::CollectiveMatching,
        Rule::AsyncPairing,
        Rule::SealOrdering,
        Rule::MessagePairing,
        Rule::ShuttleConservation,
        Rule::RedistConservation,
        Rule::DuplicateSuppression,
        Rule::RetransmitAccounting,
        Rule::SessionIsolation,
        Rule::CacheCoherence,
        Rule::HbIntervalRace,
        Rule::HbCoherence,
        Rule::UnsealedTailRead,
        Rule::CompactedUnderReader,
    ];

    /// The stable kebab-case name (`dsverify --rules` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Rule::CollectiveMatching => "collective-matching",
            Rule::AsyncPairing => "async-pairing",
            Rule::SealOrdering => "seal-ordering",
            Rule::MessagePairing => "message-pairing",
            Rule::ShuttleConservation => "shuttle-conservation",
            Rule::RedistConservation => "redist-conservation",
            Rule::DuplicateSuppression => "duplicate-suppression",
            Rule::RetransmitAccounting => "retransmit-accounting",
            Rule::SessionIsolation => "session-isolation",
            Rule::CacheCoherence => "cache-coherence",
            Rule::HbIntervalRace => "hb-interval-race",
            Rule::HbCoherence => "hb-coherence",
            Rule::UnsealedTailRead => "unsealed-tail-read",
            Rule::CompactedUnderReader => "compacted-under-reader",
        }
    }

    /// Parse a rule name as accepted by `dsverify --rules`.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// The rule that fired.
    pub rule: Rule,
    /// Rank the hazard is attributed to, when it belongs to one.
    pub rank: Option<usize>,
    /// Human-readable description with the offending values.
    pub detail: String,
    /// For HB findings: the two conflicting events and their
    /// incomparable vector clocks (printed by `dsverify --explain`).
    pub witness: Option<crate::hb::Witness>,
}

impl Hazard {
    /// A hazard with no witness attached.
    pub fn new(rule: Rule, rank: Option<usize>, detail: String) -> Hazard {
        Hazard {
            rule,
            rank,
            detail,
            witness: None,
        }
    }

    /// Attach an HB witness.
    pub fn with_witness(mut self, witness: crate::hb::Witness) -> Hazard {
        self.witness = Some(witness);
        self
    }
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rank {
            Some(r) => write!(f, "[{}] rank {}: {}", self.rule, r, self.detail),
            None => write!(f, "[{}] {}", self.rule, self.detail),
        }
    }
}

/// What [`analyze`] covered and found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Ranks in the analyzed trace.
    pub nprocs: usize,
    /// Events analyzed.
    pub events: usize,
    /// Collective rounds that matched across all participating ranks.
    pub collectives_matched: usize,
    /// Async submit/complete pairs retired cleanly.
    pub async_pairs: usize,
    /// Commit seals whose ordering was checked.
    pub seals_checked: usize,
    /// Session admit/done pairs that balanced cleanly.
    pub session_requests: usize,
    /// Cache hits whose liveness was checked.
    pub cache_hits_checked: usize,
    /// Byte-interval file accesses the HB race detector checked.
    pub file_accesses: usize,
    /// PFS reads of segment files checked for a happens-before seal.
    pub tail_reads_checked: usize,
    /// `Compact` events checked against live tail-reader cursors
    /// (counted once per rank lane the event replicates on).
    pub compactions_checked: usize,
    /// Cross edges the HB engine had to force (zero on well-formed
    /// traces; nonzero means the trace's own causality is broken).
    pub forced_hb_edges: usize,
    /// Ranks that crashed or were declared dead by a peer's failure
    /// detector (rules are relaxed for them).
    pub crashed_ranks: Vec<usize>,
    /// All hazards found, in rule order.
    pub hazards: Vec<Hazard>,
}

impl Report {
    /// True when no rule fired.
    pub fn clean(&self) -> bool {
        self.hazards.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} events on {} ranks: {} collective rounds matched, \
             {} async pairs, {} seals checked, {} session requests, \
             {} cache hits checked, {} file accesses race-checked, \
             {} tail reads checked, {} compactions checked",
            self.events,
            self.nprocs,
            self.collectives_matched,
            self.async_pairs,
            self.seals_checked,
            self.session_requests,
            self.cache_hits_checked,
            self.file_accesses,
            self.tail_reads_checked,
            self.compactions_checked
        )?;
        if self.forced_hb_edges > 0 {
            writeln!(
                f,
                "warning: {} happens-before edge(s) forced — the trace's \
                 causal prerequisites are unsatisfiable",
                self.forced_hb_edges
            )?;
        }
        if !self.crashed_ranks.is_empty() {
            writeln!(f, "crashed ranks (rules relaxed): {:?}", self.crashed_ranks)?;
        }
        if self.hazards.is_empty() {
            write!(f, "no hazards")
        } else {
            for h in &self.hazards {
                writeln!(f, "{h}")?;
            }
            write!(f, "{} hazard(s)", self.hazards.len())
        }
    }
}

/// A collective call as one rank saw it: kind plus root argument.
type CollCall = (CollOp, Option<usize>);

fn per_rank_events(trace: &Trace) -> Vec<Vec<&Event>> {
    let mut lanes: Vec<Vec<&Event>> = vec![Vec::new(); trace.nprocs];
    for ev in &trace.events {
        if ev.rank < trace.nprocs {
            lanes[ev.rank].push(ev);
        }
    }
    lanes
}

fn crashed_ranks(trace: &Trace) -> Vec<usize> {
    let mut out: Vec<usize> = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::FaultInjected {
                kind: FaultKind::Crash,
                ..
            } => Some(e.rank),
            // A `SuspectPeer` means the failure detector exhausted every
            // retransmit and declared the peer's edge dead — for protocol
            // accounting that peer is as gone as a crashed rank (e.g. a
            // message-plane `kill_at` never emits a storage Crash event).
            EventKind::SuspectPeer { peer, .. } => Some(peer),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Everything a rule may look at: the trace, its per-rank lanes, the
/// crash-excused ranks, and the happens-before index.
pub struct Ctx<'a> {
    /// The trace under analysis.
    pub trace: &'a Trace,
    /// Per-rank event lanes (events of out-of-range ranks dropped).
    pub lanes: Vec<Vec<&'a Event>>,
    /// Ranks that crashed or were declared dead by a failure detector.
    pub crashed: Vec<usize>,
    /// Vector clocks for every event.
    pub hb: hb::HbIndex,
}

/// One analysis rule: a uniform registration point so `dsverify
/// --rules` can select subsets and new rules plug in beside the old.
trait Check {
    /// The rule this check implements.
    fn rule(&self) -> Rule;
    /// Run the check, appending hazards and coverage counters.
    fn run(&self, cx: &Ctx<'_>, report: &mut Report);
}

/// Declare a unit-struct check wrapping a free function.
macro_rules! checks {
    ($($name:ident => $rule:expr, |$cx:ident, $report:ident| $body:expr;)*) => {
        $(
            struct $name;
            impl Check for $name {
                fn rule(&self) -> Rule {
                    $rule
                }
                fn run(&self, $cx: &Ctx<'_>, $report: &mut Report) {
                    $body
                }
            }
        )*
        fn all_checks() -> Vec<Box<dyn Check>> {
            vec![$(Box::new($name),)*]
        }
    };
}

checks! {
    CollectiveMatchingCheck => Rule::CollectiveMatching,
        |cx, report| check_collectives(&cx.lanes, &cx.crashed, report);
    AsyncPairingCheck => Rule::AsyncPairing,
        |cx, report| check_async_pairing(&cx.lanes, &cx.crashed, report);
    SealOrderingCheck => Rule::SealOrdering,
        |cx, report| check_seal_ordering(&cx.lanes, report);
    MessagePairingCheck => Rule::MessagePairing,
        |cx, report| check_message_pairing(cx.trace, &cx.crashed, report);
    ShuttleConservationCheck => Rule::ShuttleConservation,
        |cx, report| check_shuttle_conservation(cx.trace, &cx.crashed, report);
    RedistConservationCheck => Rule::RedistConservation,
        |cx, report| check_redist_conservation(cx.trace, &cx.crashed, report);
    DuplicateSuppressionCheck => Rule::DuplicateSuppression,
        |cx, report| check_duplicate_suppression(cx.trace, report);
    RetransmitAccountingCheck => Rule::RetransmitAccounting,
        |cx, report| check_retransmit_accounting(cx.trace, report);
    SessionIsolationCheck => Rule::SessionIsolation,
        |cx, report| check_session_isolation(&cx.lanes, &cx.crashed, report);
    CacheCoherenceCheck => Rule::CacheCoherence,
        |cx, report| check_cache_coherence(&cx.lanes, report);
    HbIntervalRaceCheck => Rule::HbIntervalRace,
        |cx, report| check_hb_interval_race(cx, report);
    HbCoherenceCheck => Rule::HbCoherence,
        |cx, report| check_hb_coherence(cx, report);
    UnsealedTailReadCheck => Rule::UnsealedTailRead,
        |cx, report| check_unsealed_tail_read(cx, report);
    CompactedUnderReaderCheck => Rule::CompactedUnderReader,
        |cx, report| check_compacted_under_reader(cx, report);
}

/// Run every rule over a trace.
pub fn analyze(trace: &Trace) -> Report {
    analyze_rules(trace, &Rule::ALL)
}

/// Run a subset of rules over a trace (the `dsverify --rules` path).
pub fn analyze_rules(trace: &Trace, rules: &[Rule]) -> Report {
    let cx = Ctx {
        trace,
        lanes: per_rank_events(trace),
        crashed: crashed_ranks(trace),
        hb: hb::HbIndex::build(trace),
    };
    let mut report = Report {
        nprocs: trace.nprocs,
        events: trace.events.len(),
        collectives_matched: 0,
        async_pairs: 0,
        seals_checked: 0,
        session_requests: 0,
        cache_hits_checked: 0,
        file_accesses: 0,
        tail_reads_checked: 0,
        compactions_checked: 0,
        forced_hb_edges: cx.hb.forced_edges(),
        crashed_ranks: cx.crashed.clone(),
        hazards: Vec::new(),
    };
    for check in all_checks() {
        if rules.contains(&check.rule()) {
            check.run(&cx, &mut report);
        }
    }
    report
}

fn check_hb_interval_race(cx: &Ctx<'_>, report: &mut Report) {
    let races = hb::find_interval_races(cx.trace, &cx.hb, &cx.crashed);
    report.file_accesses += races.accesses;
    for race in races.races {
        let first = cx.hb.event_ref(cx.trace, race.first);
        let second = cx.hb.event_ref(cx.trace, race.second);
        report.hazards.push(
            Hazard::new(
                Rule::HbIntervalRace,
                Some(second.rank),
                format!(
                    "\"{}\": {}/{} race on bytes [{}, {}) — rank {}'s {} and \
                     rank {}'s {} have no happens-before path",
                    race.file,
                    race.first_op.name(),
                    race.second_op.name(),
                    race.start,
                    race.end,
                    first.rank,
                    race.first_op.name(),
                    second.rank,
                    race.second_op.name(),
                ),
            )
            .with_witness(hb::Witness { first, second }),
        );
    }
    if races.suppressed > 0 {
        report.hazards.push(Hazard::new(
            Rule::HbIntervalRace,
            None,
            format!(
                "{} further race(s) suppressed past the per-file cap",
                races.suppressed
            ),
        ));
    }
}

fn check_hb_coherence(cx: &Ctx<'_>, report: &mut Report) {
    let found = hb::find_coherence_violations(cx.trace, &cx.hb, &cx.crashed);
    for stale in found.stale_hits {
        let first = cx.hb.event_ref(cx.trace, stale.write);
        let second = cx.hb.event_ref(cx.trace, stale.hit);
        report.hazards.push(
            Hazard::new(
                Rule::HbCoherence,
                Some(stale.rank),
                format!(
                    "cache hit on \"{}\" served from an entry inserted before \
                     rank {}'s write to the file — the write happens-before \
                     the hit, so the rank served bytes it had causally \
                     observed to be stale",
                    stale.file, first.rank,
                ),
            )
            .with_witness(hb::Witness { first, second }),
        );
    }
    for skew in found.skews {
        let first = cx.hb.event_ref(cx.trace, skew.done);
        let second = cx.hb.event_ref(cx.trace, skew.admit);
        report.hazards.push(
            Hazard::new(
                Rule::HbCoherence,
                Some(second.rank),
                format!(
                    "request {} completed on rank {} happens-before its \
                     admission on rank {} — the lockstep session ledger ran \
                     backwards",
                    skew.request_id, first.rank, second.rank,
                ),
            )
            .with_witness(hb::Witness { first, second }),
        );
    }
}

fn coll_name(c: &CollCall) -> String {
    match c.1 {
        Some(root) => format!("{}(root={root})", c.0.name()),
        None => c.0.name().to_string(),
    }
}

fn check_collectives(lanes: &[Vec<&Event>], crashed: &[usize], report: &mut Report) {
    let seqs: Vec<Vec<CollCall>> = lanes
        .iter()
        .map(|lane| {
            lane.iter()
                .filter_map(|e| match &e.kind {
                    EventKind::Collective { op, root, .. } => Some((*op, *root)),
                    _ => None,
                })
                .collect()
        })
        .collect();
    let any_crash = !crashed.is_empty();
    let max_len = seqs.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..max_len {
        // Ranks that have an i-th collective must agree on what it is.
        let present: Vec<(usize, CollCall)> = seqs
            .iter()
            .enumerate()
            .filter_map(|(r, s)| s.get(i).map(|c| (r, *c)))
            .collect();
        let reference = present[0].1;
        if present.iter().any(|(_, c)| *c != reference) {
            // Divergence: group ranks by what they called — the
            // hold-and-wait picture of who is stuck waiting for whom.
            let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            for (r, c) in &present {
                groups.entry(coll_name(c)).or_default().push(*r);
            }
            for (r, s) in seqs.iter().enumerate() {
                if s.get(i).is_none() {
                    groups.entry("<no collective>".into()).or_default().push(r);
                }
            }
            let picture = groups
                .iter()
                .map(|(call, ranks)| format!("{call} on ranks {ranks:?}"))
                .collect::<Vec<_>>()
                .join("; ");
            report.hazards.push(Hazard {
                witness: None,
                rule: Rule::CollectiveMatching,
                rank: None,
                detail: format!(
                    "collective round {i} diverges — {picture}; each group blocks \
                     waiting for the others (hold-and-wait)"
                ),
            });
            // Past a divergence the sequences no longer line up; further
            // elementwise comparison would only cascade noise.
            return;
        }
        if present.len() < seqs.len() {
            // Some rank ran out of collectives at this round.
            if any_crash {
                // Survivor shortfall after a crash is expected; stop at
                // the common prefix.
                return;
            }
            let missing: Vec<usize> = seqs
                .iter()
                .enumerate()
                .filter(|(_, s)| s.get(i).is_none())
                .map(|(r, _)| r)
                .collect();
            report.hazards.push(Hazard {
                witness: None,
                rule: Rule::CollectiveMatching,
                rank: None,
                detail: format!(
                    "collective round {i} ({}) missing on ranks {missing:?} — \
                     the participating ranks block forever",
                    coll_name(&reference)
                ),
            });
            return;
        }
        report.collectives_matched += 1;
    }
}

fn check_async_pairing(lanes: &[Vec<&Event>], crashed: &[usize], report: &mut Report) {
    for (rank, lane) in lanes.iter().enumerate() {
        let mut pending: BTreeMap<u64, u64> = BTreeMap::new(); // op_id -> submit vtime
        for e in lane {
            match &e.kind {
                EventKind::AsyncSubmit { op_id, .. } => {
                    pending.insert(*op_id, e.vtime_ns);
                }
                EventKind::AsyncComplete { op_id, .. } => {
                    if pending.remove(op_id).is_none() {
                        report.hazards.push(Hazard {
                            witness: None,
                            rule: Rule::AsyncPairing,
                            rank: Some(rank),
                            detail: format!(
                                "AsyncComplete for op {op_id} at t={} has no matching \
                                 AsyncSubmit",
                                e.vtime_ns
                            ),
                        });
                    } else {
                        report.async_pairs += 1;
                    }
                }
                _ => {}
            }
        }
        if !pending.is_empty() && !crashed.contains(&rank) {
            for (op_id, t) in &pending {
                report.hazards.push(Hazard {
                    witness: None,
                    rule: Rule::AsyncPairing,
                    rank: Some(rank),
                    detail: format!(
                        "AsyncSubmit for op {op_id} at t={t} was never retired by an \
                         AsyncComplete (leaked write_begin / prefetch handle?)"
                    ),
                });
            }
        }
    }
}

/// Completion time of a PFS event: an asynchronous operation completes
/// at its submission record's `completion_ns` (the runtime emits the
/// `AsyncSubmit` immediately before the PFS event it defers, at the same
/// instant); a synchronous one is already complete when its event is
/// emitted — the runtime advances the clock by the modeled cost first.
fn completion_ns(prev: Option<&Event>, ev: &Event) -> u64 {
    if let Some(p) = prev {
        if let EventKind::AsyncSubmit { completion_ns, .. } = p.kind {
            if p.vtime_ns == ev.vtime_ns {
                return completion_ns;
            }
        }
    }
    ev.vtime_ns
}

fn check_seal_ordering(lanes: &[Vec<&Event>], report: &mut Report) {
    let seal_len = RecordSeal::LEN as u64;
    for (rank, lane) in lanes.iter().enumerate() {
        // file -> completion time of the latest collective data write.
        let mut data_done: BTreeMap<&str, u64> = BTreeMap::new();
        for (i, e) in lane.iter().enumerate() {
            let prev = if i > 0 { Some(lane[i - 1]) } else { None };
            match &e.kind {
                EventKind::PfsCollective {
                    op: PfsOp::Write,
                    file,
                    ..
                } => {
                    let done = completion_ns(prev, e);
                    let slot = data_done.entry(file.as_str()).or_insert(0);
                    *slot = (*slot).max(done);
                }
                EventKind::PfsIndependent {
                    op: PfsOp::Write,
                    file,
                    bytes,
                    ..
                } if *bytes == seal_len => {
                    // A seal-sized independent write following collective
                    // data on the same file is a record commit seal.
                    if let Some(&data) = data_done.get(file.as_str()) {
                        report.seals_checked += 1;
                        let seal = completion_ns(prev, e);
                        if seal < data {
                            report.hazards.push(Hazard {
                                witness: None,
                                rule: Rule::SealOrdering,
                                rank: Some(rank),
                                detail: format!(
                                    "seal on \"{file}\" completes at t={seal} before its \
                                     record data completes at t={data} — a crash in \
                                     between leaves a sealed torn record"
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

fn check_message_pairing(trace: &Trace, crashed: &[usize], report: &mut Report) {
    // (from, to, tag) -> (sends, recvs)
    let mut channels: BTreeMap<(usize, usize, u32), (u64, u64)> = BTreeMap::new();
    for e in &trace.events {
        match &e.kind {
            EventKind::MsgSend { to, tag, .. } => {
                channels.entry((e.rank, *to, *tag)).or_insert((0, 0)).0 += 1;
            }
            EventKind::MsgRecv { from, tag, .. } => {
                channels.entry((*from, e.rank, *tag)).or_insert((0, 0)).1 += 1;
            }
            _ => {}
        }
    }
    for ((from, to, tag), (sends, recvs)) in channels {
        if sends == recvs {
            continue;
        }
        if crashed.contains(&from) || crashed.contains(&to) {
            continue;
        }
        let (rank, what) = if sends > recvs {
            (to, format!("{} send(s) never received", sends - recvs))
        } else {
            (from, format!("{} receive(s) never sent", recvs - sends))
        };
        report.hazards.push(Hazard {
            witness: None,
            rule: Rule::MessagePairing,
            rank: Some(rank),
            detail: format!(
                "channel {from}->{to} tag {tag}: {sends} sends vs {recvs} receives \
                 ({what}) — a rank is waiting on a peer that never spoke"
            ),
        });
    }
}

fn check_shuttle_conservation(trace: &Trace, crashed: &[usize], report: &mut Report) {
    // (source, aggregator) -> (sent count, sent bytes, recv count, recv bytes)
    let mut pairs: BTreeMap<(usize, usize), (u64, u64, u64, u64)> = BTreeMap::new();
    for e in &trace.events {
        if let EventKind::AggShuttle {
            outgoing,
            peer,
            bytes,
            ..
        } = &e.kind
        {
            if *outgoing {
                let slot = pairs.entry((e.rank, *peer)).or_insert((0, 0, 0, 0));
                slot.0 += 1;
                slot.1 += bytes;
            } else {
                let slot = pairs.entry((*peer, e.rank)).or_insert((0, 0, 0, 0));
                slot.2 += 1;
                slot.3 += bytes;
            }
        }
    }
    for ((src, dst), (sends, sent, recvs, recvd)) in pairs {
        if sends == recvs && sent == recvd {
            continue;
        }
        if crashed.contains(&src) || crashed.contains(&dst) {
            continue;
        }
        report.hazards.push(Hazard {
            witness: None,
            rule: Rule::ShuttleConservation,
            rank: Some(dst),
            detail: format!(
                "shuttle {src}->{dst}: {sends} send(s)/{sent} B shipped vs \
                 {recvs} receive(s)/{recvd} B claimed — the aggregator \
                 dropped or invented part of rank {src}'s block"
            ),
        });
    }
}

fn check_redist_conservation(trace: &Trace, crashed: &[usize], report: &mut Report) {
    // (src, dst) -> (sent bytes, sent elements, recv bytes, recv elements)
    let mut pairs: BTreeMap<(usize, usize), (u64, u64, u64, u64)> = BTreeMap::new();
    for e in &trace.events {
        if let EventKind::RedistShuttle {
            outgoing,
            peer,
            bytes,
            elements,
            ..
        } = &e.kind
        {
            if *outgoing {
                let slot = pairs.entry((e.rank, *peer)).or_insert((0, 0, 0, 0));
                slot.0 += bytes;
                slot.1 += elements;
            } else {
                let slot = pairs.entry((*peer, e.rank)).or_insert((0, 0, 0, 0));
                slot.2 += bytes;
                slot.3 += elements;
            }
        }
    }
    for ((src, dst), (sent, sent_el, recvd, recvd_el)) in pairs {
        if sent == recvd && sent_el == recvd_el {
            continue;
        }
        if crashed.contains(&src) || crashed.contains(&dst) {
            continue;
        }
        report.hazards.push(Hazard {
            witness: None,
            rule: Rule::RedistConservation,
            rank: Some(dst),
            detail: format!(
                "redistribution {src}->{dst}: {sent_el} element(s)/{sent} B \
                 shipped vs {recvd_el} element(s)/{recvd} B claimed — the \
                 shuffle lost or duplicated element data"
            ),
        });
    }
}

fn check_duplicate_suppression(trace: &Trace, report: &mut Report) {
    // (from, to, tag) -> (sends, recvs). Deliberately NOT crash-excused:
    // the reliable layer records one MsgSend per successful delivery, so
    // recvs > sends means a wire duplicate reached the program — wrong
    // regardless of any later crash on either endpoint.
    let mut channels: BTreeMap<(usize, usize, u32), (u64, u64)> = BTreeMap::new();
    for e in &trace.events {
        match &e.kind {
            EventKind::MsgSend { to, tag, .. } => {
                channels.entry((e.rank, *to, *tag)).or_insert((0, 0)).0 += 1;
            }
            EventKind::MsgRecv { from, tag, .. } => {
                channels.entry((*from, e.rank, *tag)).or_insert((0, 0)).1 += 1;
            }
            _ => {}
        }
    }
    for ((from, to, tag), (sends, recvs)) in channels {
        if recvs <= sends {
            continue;
        }
        report.hazards.push(Hazard {
            witness: None,
            rule: Rule::DuplicateSuppression,
            rank: Some(to),
            detail: format!(
                "channel {from}->{to} tag {tag}: {recvs} receives for only \
                 {sends} send(s) — {} duplicate delivery(ies) slipped past \
                 the dedup filter into the program",
                recvs - sends
            ),
        });
    }
}

fn check_retransmit_accounting(trace: &Trace, report: &mut Report) {
    // (sender, dest) -> (retransmits, successful sends, suspicions).
    let mut edges: BTreeMap<(usize, usize), (u64, u64, u64)> = BTreeMap::new();
    for e in &trace.events {
        match &e.kind {
            EventKind::Retransmit { to, .. } => {
                edges.entry((e.rank, *to)).or_insert((0, 0, 0)).0 += 1;
            }
            EventKind::MsgSend { to, .. } => {
                edges.entry((e.rank, *to)).or_insert((0, 0, 0)).1 += 1;
            }
            EventKind::SuspectPeer { peer, .. } => {
                edges.entry((e.rank, *peer)).or_insert((0, 0, 0)).2 += 1;
            }
            _ => {}
        }
    }
    for ((from, to), (retransmits, sends, suspects)) in edges {
        if retransmits == 0 || sends > 0 || suspects > 0 {
            continue;
        }
        report.hazards.push(Hazard {
            witness: None,
            rule: Rule::RetransmitAccounting,
            rank: Some(from),
            detail: format!(
                "edge {from}->{to}: {retransmits} retransmit(s) counted but \
                 no delivery ever succeeded and the failure detector never \
                 gave up — the retry either hung or its counter was forged"
            ),
        });
    }
}

fn check_session_isolation(lanes: &[Vec<&Event>], crashed: &[usize], report: &mut Report) {
    // Every rank runs the service loop in lockstep and emits its own
    // copy of the session ledger, so each lane must balance on its own.
    let any_crash = !crashed.is_empty();
    for (rank, lane) in lanes.iter().enumerate() {
        let mut pending: BTreeMap<u64, u64> = BTreeMap::new(); // id -> admit vtime
        let mut shed: BTreeMap<u64, u64> = BTreeMap::new(); // id -> shed vtime
        let mut done: BTreeMap<u64, u64> = BTreeMap::new(); // id -> done vtime
        for e in lane {
            match &e.kind {
                EventKind::SessionAdmit { request_id, .. } => {
                    let duplicate = pending.insert(*request_id, e.vtime_ns).is_some();
                    if duplicate {
                        report.hazards.push(Hazard {
                            witness: None,
                            rule: Rule::SessionIsolation,
                            rank: Some(rank),
                            detail: format!(
                                "request {request_id} admitted twice (second admit at \
                                 t={}) — the admission ledger double-counts it",
                                e.vtime_ns
                            ),
                        });
                    }
                }
                EventKind::SessionShed { request_id, .. } => {
                    shed.insert(*request_id, e.vtime_ns);
                }
                EventKind::SessionDone { request_id, .. } => {
                    if let Some(t) = shed.get(request_id) {
                        // Never crash-excused: rejected work must stay
                        // rejected, or shedding is not isolation.
                        report.hazards.push(Hazard {
                            witness: None,
                            rule: Rule::SessionIsolation,
                            rank: Some(rank),
                            detail: format!(
                                "request {request_id} was shed at t={t} but served anyway \
                                 at t={} — rejected work ran and stole capacity from \
                                 admitted tenants",
                                e.vtime_ns
                            ),
                        });
                    } else if pending.remove(request_id).is_some() {
                        report.session_requests += 1;
                        done.insert(*request_id, e.vtime_ns);
                    } else if done.contains_key(request_id) {
                        report.hazards.push(Hazard {
                            witness: None,
                            rule: Rule::SessionIsolation,
                            rank: Some(rank),
                            detail: format!(
                                "request {request_id} completed twice (second completion \
                                 at t={})",
                                e.vtime_ns
                            ),
                        });
                    } else {
                        report.hazards.push(Hazard {
                            witness: None,
                            rule: Rule::SessionIsolation,
                            rank: Some(rank),
                            detail: format!(
                                "SessionDone for request {request_id} at t={} was never \
                                 admitted",
                                e.vtime_ns
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        if !any_crash {
            for (request_id, t) in &pending {
                report.hazards.push(Hazard {
                    witness: None,
                    rule: Rule::SessionIsolation,
                    rank: Some(rank),
                    detail: format!(
                        "request {request_id} admitted at t={t} never completed — \
                         the service lost it without shedding or aborting"
                    ),
                });
            }
        }
    }
}

fn check_cache_coherence(lanes: &[Vec<&Event>], report: &mut Report) {
    use dstreams_trace::CacheOutcome;
    for (rank, lane) in lanes.iter().enumerate() {
        // Files whose cached entry is live on this rank, with the insert
        // time (for the hazard message).
        let mut live: BTreeMap<&str, u64> = BTreeMap::new();
        for e in lane {
            match &e.kind {
                EventKind::CacheAccess { file, outcome, .. } => match outcome {
                    CacheOutcome::Insert => {
                        live.insert(file.as_str(), e.vtime_ns);
                    }
                    CacheOutcome::Evict | CacheOutcome::Invalidate => {
                        live.remove(file.as_str());
                    }
                    CacheOutcome::Hit => {
                        report.cache_hits_checked += 1;
                        if !live.contains_key(file.as_str()) {
                            // Wrong bytes regardless of crashes: never
                            // excused.
                            report.hazards.push(Hazard {
                                witness: None,
                                rule: Rule::CacheCoherence,
                                rank: Some(rank),
                                detail: format!(
                                    "cache hit on \"{file}\" at t={} with no live entry \
                                     — it was never inserted, or was evicted, \
                                     invalidated, or overwritten since",
                                    e.vtime_ns
                                ),
                            });
                        }
                    }
                    CacheOutcome::Miss => {}
                },
                // A write to the underlying file makes any cached copy
                // stale until a fresh insert.
                EventKind::PfsCollective {
                    op: PfsOp::Write,
                    file,
                    ..
                }
                | EventKind::PfsIndependent {
                    op: PfsOp::Write,
                    file,
                    ..
                } => {
                    live.remove(file.as_str());
                }
                _ => {}
            }
        }
    }
}

fn check_unsealed_tail_read(cx: &Ctx<'_>, report: &mut Report) {
    use std::collections::BTreeSet;
    // A file is a segment file iff some SegmentSeal or TailConsume
    // names it — ordinary stream files stay out of scope, so the rule
    // is silent on non-streaming traces.
    let mut seals: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut segment_files: BTreeSet<&str> = BTreeSet::new();
    for (i, e) in cx.trace.events.iter().enumerate() {
        match &e.kind {
            EventKind::SegmentSeal { file, .. } => {
                seals.entry(file.as_str()).or_default().push(i);
                segment_files.insert(file.as_str());
            }
            EventKind::TailConsume { file, .. } => {
                segment_files.insert(file.as_str());
            }
            _ => {}
        }
    }
    if segment_files.is_empty() {
        return;
    }
    for (i, e) in cx.trace.events.iter().enumerate() {
        let (op, file) = match &e.kind {
            EventKind::PfsIndependent { op, file, .. } => (*op, file),
            EventKind::PfsCollective { op, file, .. } => (*op, file),
            _ => continue,
        };
        if op != PfsOp::Read || !segment_files.contains(file.as_str()) {
            continue;
        }
        if cx.crashed.contains(&e.rank) {
            continue;
        }
        report.tail_reads_checked += 1;
        match seals.get(file.as_str()) {
            None => {
                report.hazards.push(Hazard::new(
                    Rule::UnsealedTailRead,
                    Some(e.rank),
                    format!(
                        "read of segment file \"{file}\" at t={} but the \
                         segment was never sealed — the reader observed \
                         bytes a producer may still be writing",
                        e.vtime_ns
                    ),
                ));
            }
            Some(seal_idxs) => {
                if !seal_idxs.iter().any(|&j| cx.hb.happens_before(j, i)) {
                    let first = cx.hb.event_ref(cx.trace, seal_idxs[0]);
                    let second = cx.hb.event_ref(cx.trace, i);
                    report.hazards.push(
                        Hazard::new(
                            Rule::UnsealedTailRead,
                            Some(e.rank),
                            format!(
                                "read of segment file \"{file}\" is not ordered \
                                 after its seal — rank {}'s seal and rank {}'s \
                                 read have no happens-before path, so the read \
                                 may have observed an unsealed segment",
                                first.rank, e.rank
                            ),
                        )
                        .with_witness(hb::Witness { first, second }),
                    );
                }
            }
        }
    }
}

fn check_compacted_under_reader(cx: &Ctx<'_>, report: &mut Report) {
    // Every rank replays the same manifest transitions, so each lane
    // carries its own replica of the attach/consume/detach ledger and
    // must justify its own Compact events. Cursor state per
    // (rank, stream, reader): next unconsumed segment plus the event
    // that last moved the cursor (the HB witness anchor).
    let mut cursors: BTreeMap<(usize, String, u32), (u64, usize)> = BTreeMap::new();
    for (i, e) in cx.trace.events.iter().enumerate() {
        match &e.kind {
            EventKind::TailAttach {
                stream,
                reader,
                first_segment,
                ..
            } => {
                cursors.insert((e.rank, stream.clone(), *reader), (*first_segment, i));
            }
            EventKind::TailConsume {
                stream,
                reader,
                segment,
                ..
            } => {
                cursors.insert((e.rank, stream.clone(), *reader), (segment + 1, i));
            }
            EventKind::TailDetach { stream, reader, .. } => {
                cursors.remove(&(e.rank, stream.clone(), *reader));
            }
            EventKind::Compact {
                stream, segment, ..
            } => {
                report.compactions_checked += 1;
                for ((rank, s, reader), (next, at)) in &cursors {
                    if *rank != e.rank || s != stream || *next > *segment {
                        continue;
                    }
                    let first = cx.hb.event_ref(cx.trace, *at);
                    let second = cx.hb.event_ref(cx.trace, i);
                    report.hazards.push(
                        Hazard::new(
                            Rule::CompactedUnderReader,
                            Some(e.rank),
                            format!(
                                "segment {segment} of \"{stream}\" compacted \
                                 while reader {reader}'s cursor was still at \
                                 segment {next} — retention reclaimed data an \
                                 attached reader had not consumed"
                            ),
                        )
                        .with_witness(hb::Witness { first, second }),
                    );
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_trace::{CacheOutcome, CollectiveRegime, IndependentRegime};

    fn ev(rank: usize, vtime_ns: u64, seq: u64, kind: EventKind) -> Event {
        Event {
            rank,
            vtime_ns,
            seq,
            kind,
        }
    }

    fn coll(rank: usize, t: u64, seq: u64, op: CollOp, root: Option<usize>) -> Event {
        ev(rank, t, seq, EventKind::Collective { op, root, bytes: 8 })
    }

    fn trace(nprocs: usize, events: Vec<Event>) -> Trace {
        Trace { nprocs, events }
    }

    #[test]
    fn matching_collectives_are_clean() {
        let t = trace(
            2,
            vec![
                coll(0, 10, 0, CollOp::Barrier, None),
                coll(1, 10, 0, CollOp::Barrier, None),
                coll(0, 20, 1, CollOp::Reduce, Some(0)),
                coll(1, 20, 1, CollOp::Reduce, Some(0)),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
        assert_eq!(r.collectives_matched, 2);
    }

    #[test]
    fn mismatched_collective_kind_is_flagged_with_groups() {
        let t = trace(
            3,
            vec![
                coll(0, 10, 0, CollOp::Barrier, None),
                coll(1, 10, 0, CollOp::Barrier, None),
                coll(2, 10, 0, CollOp::Barrier, None),
                coll(0, 20, 1, CollOp::AllReduce, None),
                coll(1, 20, 1, CollOp::Broadcast, Some(0)),
                coll(2, 20, 1, CollOp::AllReduce, None),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.collectives_matched, 1);
        assert_eq!(r.hazards.len(), 1);
        let h = &r.hazards[0];
        assert_eq!(h.rule, Rule::CollectiveMatching);
        assert!(h.detail.contains("round 1"), "{h}");
        assert!(h.detail.contains("all_reduce on ranks [0, 2]"), "{h}");
        assert!(h.detail.contains("broadcast(root=0) on ranks [1]"), "{h}");
    }

    #[test]
    fn mismatched_root_is_flagged() {
        let t = trace(
            2,
            vec![
                coll(0, 10, 0, CollOp::Broadcast, Some(0)),
                coll(1, 10, 0, CollOp::Broadcast, Some(1)),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::CollectiveMatching);
    }

    #[test]
    fn collective_shortfall_without_crash_is_flagged() {
        let t = trace(
            2,
            vec![
                coll(0, 10, 0, CollOp::Barrier, None),
                coll(1, 10, 0, CollOp::Barrier, None),
                coll(0, 20, 1, CollOp::Barrier, None),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert!(r.hazards[0].detail.contains("missing on ranks [1]"));
    }

    #[test]
    fn collective_shortfall_after_crash_is_excused() {
        let t = trace(
            2,
            vec![
                coll(0, 10, 0, CollOp::Barrier, None),
                coll(1, 10, 0, CollOp::Barrier, None),
                ev(
                    1,
                    15,
                    1,
                    EventKind::FaultInjected {
                        kind: FaultKind::Crash,
                        op_index: 3,
                        file: "s".into(),
                        bytes_kept: 0,
                    },
                ),
                coll(0, 20, 1, CollOp::Barrier, None),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
        assert_eq!(r.crashed_ranks, vec![1]);
    }

    #[test]
    fn unmatched_async_submit_is_flagged() {
        let t = trace(
            1,
            vec![ev(
                0,
                10,
                0,
                EventKind::AsyncSubmit {
                    op_id: 7,
                    cost_ns: 100,
                    completion_ns: 110,
                    queue_depth: 1,
                },
            )],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::AsyncPairing);
        assert!(r.hazards[0].detail.contains("op 7"));
    }

    #[test]
    fn complete_without_submit_is_flagged_even_after_crash() {
        let t = trace(
            1,
            vec![
                ev(
                    0,
                    5,
                    0,
                    EventKind::FaultInjected {
                        kind: FaultKind::Crash,
                        op_index: 0,
                        file: "s".into(),
                        bytes_kept: 0,
                    },
                ),
                ev(
                    0,
                    10,
                    1,
                    EventKind::AsyncComplete {
                        op_id: 3,
                        cost_ns: 10,
                        stall_ns: 0,
                        overlap_ns: 10,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::AsyncPairing);
    }

    #[test]
    fn paired_async_ops_are_clean() {
        let t = trace(
            1,
            vec![
                ev(
                    0,
                    10,
                    0,
                    EventKind::AsyncSubmit {
                        op_id: 1,
                        cost_ns: 100,
                        completion_ns: 110,
                        queue_depth: 1,
                    },
                ),
                ev(
                    0,
                    50,
                    1,
                    EventKind::AsyncComplete {
                        op_id: 1,
                        cost_ns: 100,
                        stall_ns: 60,
                        overlap_ns: 40,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
        assert_eq!(r.async_pairs, 1);
    }

    fn data_write(rank: usize, t: u64, seq: u64, file: &str, cost: u64) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::PfsCollective {
                op: PfsOp::Write,
                file: file.into(),
                offset: 0,
                bytes: 4096,
                total_bytes: 4096,
                share_bytes: 4096,
                stripes: 1,
                regime: CollectiveRegime::Streaming,
                cost_ns: cost,
            },
        )
    }

    fn seal_write(rank: usize, t: u64, seq: u64, file: &str, cost: u64) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::PfsIndependent {
                op: PfsOp::Write,
                file: file.into(),
                offset: 4096,
                bytes: RecordSeal::LEN as u64,
                regime: IndependentRegime::Cached,
                cost_ns: cost,
            },
        )
    }

    #[test]
    fn seal_after_data_is_clean() {
        let t = trace(
            1,
            vec![
                data_write(0, 110, 0, "s", 100), // sync: done when emitted
                seal_write(0, 120, 1, "s", 5),   // done at 120 >= 110
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
        assert_eq!(r.seals_checked, 1);
    }

    #[test]
    fn seal_completing_before_async_data_is_flagged() {
        let t = trace(
            1,
            vec![
                ev(
                    0,
                    10,
                    0,
                    EventKind::AsyncSubmit {
                        op_id: 1,
                        cost_ns: 1000,
                        completion_ns: 1010,
                        queue_depth: 1,
                    },
                ),
                data_write(0, 10, 1, "s", 1000), // async: done at 1010
                seal_write(0, 20, 2, "s", 5),    // sync: done at 20 < 1010
                ev(
                    0,
                    1010,
                    3,
                    EventKind::AsyncComplete {
                        op_id: 1,
                        cost_ns: 1000,
                        stall_ns: 990,
                        overlap_ns: 10,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::SealOrdering);
        assert!(
            r.hazards[0].detail.contains("torn record"),
            "{}",
            r.hazards[0]
        );
    }

    #[test]
    fn unmatched_send_is_flagged() {
        let t = trace(
            2,
            vec![ev(
                0,
                10,
                0,
                EventKind::MsgSend {
                    to: 1,
                    tag: 42,
                    bytes: 64,
                    collective: false,
                },
            )],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::MessagePairing);
        assert_eq!(r.hazards[0].rank, Some(1));
    }

    fn shuttle(rank: usize, t: u64, seq: u64, outgoing: bool, peer: usize, bytes: u64) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::AggShuttle {
                outgoing,
                peer,
                bytes,
                file: "s".into(),
                op: PfsOp::Write,
                offset: Some(0),
            },
        )
    }

    #[test]
    fn conserved_shuttles_are_clean() {
        let t = trace(
            2,
            vec![
                shuttle(1, 10, 0, true, 0, 512),
                shuttle(0, 12, 0, false, 1, 512),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
    }

    #[test]
    fn leaked_shuttle_send_is_flagged() {
        let t = trace(2, vec![shuttle(1, 10, 0, true, 0, 512)]);
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::ShuttleConservation);
        assert_eq!(r.hazards[0].rank, Some(0));
        assert!(r.hazards[0].detail.contains("1->0"), "{}", r.hazards[0]);
    }

    #[test]
    fn shuttle_byte_mismatch_is_flagged_even_when_counts_agree() {
        let t = trace(
            2,
            vec![
                shuttle(1, 10, 0, true, 0, 512),
                shuttle(0, 12, 0, false, 1, 500),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::ShuttleConservation);
    }

    #[test]
    fn shuttle_leak_on_crashed_endpoint_is_excused() {
        let t = trace(
            2,
            vec![
                shuttle(1, 10, 0, true, 0, 512),
                ev(
                    1,
                    15,
                    1,
                    EventKind::FaultInjected {
                        kind: FaultKind::Crash,
                        op_index: 3,
                        file: "s".into(),
                        bytes_kept: 0,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
    }

    fn redist(
        rank: usize,
        t: u64,
        seq: u64,
        outgoing: bool,
        peer: usize,
        bytes: u64,
        elements: u64,
    ) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::RedistShuttle {
                outgoing,
                peer,
                bytes,
                elements,
                file: "r".into(),
            },
        )
    }

    #[test]
    fn conserved_redistribution_is_clean() {
        let t = trace(
            3,
            vec![
                redist(0, 10, 0, true, 2, 96, 4),
                redist(2, 12, 0, false, 0, 96, 4),
                redist(1, 10, 0, true, 2, 8, 1),
                redist(2, 14, 1, false, 1, 8, 1),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
    }

    #[test]
    fn lost_redistribution_transfer_is_flagged() {
        let t = trace(2, vec![redist(1, 10, 0, true, 0, 96, 4)]);
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::RedistConservation);
        assert_eq!(r.hazards[0].rank, Some(0));
        assert!(r.hazards[0].detail.contains("1->0"), "{}", r.hazards[0]);
    }

    #[test]
    fn redistribution_element_mismatch_is_flagged_even_when_bytes_agree() {
        // Same byte total, different element counts: a mis-sliced payload.
        let t = trace(
            2,
            vec![
                redist(1, 10, 0, true, 0, 96, 4),
                redist(0, 12, 0, false, 1, 96, 3),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::RedistConservation);
    }

    #[test]
    fn redistribution_leak_on_crashed_endpoint_is_excused() {
        let t = trace(
            2,
            vec![
                redist(1, 10, 0, true, 0, 96, 4),
                ev(
                    0,
                    15,
                    0,
                    EventKind::FaultInjected {
                        kind: FaultKind::Crash,
                        op_index: 3,
                        file: "r".into(),
                        bytes_kept: 0,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
    }

    #[test]
    fn matched_messages_are_clean() {
        let t = trace(
            2,
            vec![
                ev(
                    0,
                    10,
                    0,
                    EventKind::MsgSend {
                        to: 1,
                        tag: 42,
                        bytes: 64,
                        collective: false,
                    },
                ),
                ev(
                    1,
                    12,
                    0,
                    EventKind::MsgRecv {
                        from: 0,
                        tag: 42,
                        bytes: 64,
                        collective: false,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
    }

    fn send(rank: usize, t: u64, seq: u64, to: usize, tag: u32) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::MsgSend {
                to,
                tag,
                bytes: 64,
                collective: false,
            },
        )
    }

    fn recv(rank: usize, t: u64, seq: u64, from: usize, tag: u32) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::MsgRecv {
                from,
                tag,
                bytes: 64,
                collective: false,
            },
        )
    }

    #[test]
    fn surplus_receive_is_a_duplicate_suppression_hazard() {
        let t = trace(
            2,
            vec![
                send(0, 10, 0, 1, 42),
                recv(1, 12, 0, 0, 42),
                recv(1, 14, 1, 0, 42),
            ],
        );
        let r = analyze(&t);
        // Message pairing also fires (1 send vs 2 recvs), but the
        // duplicate-suppression verdict must be present and name the
        // consumer.
        let dup: Vec<&Hazard> = r
            .hazards
            .iter()
            .filter(|h| h.rule == Rule::DuplicateSuppression)
            .collect();
        assert_eq!(dup.len(), 1);
        assert_eq!(dup[0].rank, Some(1));
        assert!(dup[0].detail.contains("duplicate"), "{}", dup[0]);
    }

    #[test]
    fn duplicate_suppression_is_not_crash_excused() {
        let t = trace(
            2,
            vec![
                send(0, 10, 0, 1, 7),
                recv(1, 12, 0, 0, 7),
                recv(1, 14, 1, 0, 7),
                ev(
                    0,
                    20,
                    1,
                    EventKind::FaultInjected {
                        kind: FaultKind::Crash,
                        op_index: 0,
                        file: "s".into(),
                        bytes_kept: 0,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        assert!(
            r.hazards
                .iter()
                .any(|h| h.rule == Rule::DuplicateSuppression),
            "crash must not excuse a consumed duplicate: {r}"
        );
    }

    fn retransmit(rank: usize, t: u64, seq: u64, to: usize, attempt: u32) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::Retransmit {
                to,
                tag: 42,
                msg_seq: 0,
                attempt,
                backoff_ns: 1_000,
            },
        )
    }

    #[test]
    fn retransmit_followed_by_delivery_is_clean() {
        let t = trace(
            2,
            vec![
                retransmit(0, 10, 0, 1, 1),
                send(0, 12, 1, 1, 42),
                recv(1, 14, 0, 0, 42),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
    }

    #[test]
    fn retransmit_ending_in_suspicion_is_clean() {
        let t = trace(
            2,
            vec![
                retransmit(0, 10, 0, 1, 1),
                retransmit(0, 20, 1, 1, 2),
                ev(
                    0,
                    30,
                    2,
                    EventKind::SuspectPeer {
                        peer: 1,
                        attempts: 3,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
    }

    #[test]
    fn unresolved_retransmit_is_flagged() {
        let t = trace(2, vec![retransmit(0, 10, 0, 1, 1)]);
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::RetransmitAccounting);
        assert_eq!(r.hazards[0].rank, Some(0));
        assert!(r.hazards[0].detail.contains("0->1"), "{}", r.hazards[0]);
    }

    #[test]
    fn suspicion_on_a_different_edge_does_not_resolve_a_retransmit() {
        let t = trace(
            3,
            vec![
                retransmit(0, 10, 0, 1, 1),
                ev(
                    0,
                    30,
                    1,
                    EventKind::SuspectPeer {
                        peer: 2,
                        attempts: 3,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::RetransmitAccounting);
    }

    use dstreams_trace::{QosLevel, ServeOp, ShedReason};

    fn admit(rank: usize, t: u64, seq: u64, id: u64) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::SessionAdmit {
                request_id: id,
                tenant: 1,
                class: QosLevel::Standard,
                op: ServeOp::Read,
                queue_depth: 1,
            },
        )
    }

    fn shed(rank: usize, t: u64, seq: u64, id: u64) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::SessionShed {
                request_id: id,
                tenant: 1,
                class: QosLevel::BestEffort,
                op: ServeOp::Read,
                reason: ShedReason::QueueFull,
            },
        )
    }

    fn done(rank: usize, t: u64, seq: u64, id: u64) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::SessionDone {
                request_id: id,
                tenant: 1,
                class: QosLevel::Standard,
                op: ServeOp::Read,
                latency_ns: 5,
                ok: true,
            },
        )
    }

    #[test]
    fn balanced_session_ledger_is_clean() {
        let t = trace(
            1,
            vec![admit(0, 10, 0, 1), shed(0, 11, 1, 2), done(0, 20, 2, 1)],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
        assert_eq!(r.session_requests, 1);
    }

    #[test]
    fn serving_a_shed_request_is_flagged_even_after_a_crash() {
        let t = trace(
            1,
            vec![
                shed(0, 10, 0, 7),
                done(0, 20, 1, 7),
                ev(
                    0,
                    30,
                    2,
                    EventKind::FaultInjected {
                        kind: FaultKind::Crash,
                        op_index: 0,
                        file: "s".into(),
                        bytes_kept: 0,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        let iso: Vec<&Hazard> = r
            .hazards
            .iter()
            .filter(|h| h.rule == Rule::SessionIsolation)
            .collect();
        assert_eq!(iso.len(), 1, "{r}");
        assert!(iso[0].detail.contains("shed"), "{}", iso[0]);
        assert!(iso[0].detail.contains("served anyway"), "{}", iso[0]);
    }

    #[test]
    fn lost_admitted_request_is_flagged_without_crash_only() {
        let lost = trace(1, vec![admit(0, 10, 0, 1)]);
        let r = analyze(&lost);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::SessionIsolation);
        assert!(r.hazards[0].detail.contains("never completed"));

        let crashed = trace(
            1,
            vec![
                admit(0, 10, 0, 1),
                ev(
                    0,
                    15,
                    1,
                    EventKind::FaultInjected {
                        kind: FaultKind::Crash,
                        op_index: 0,
                        file: "s".into(),
                        bytes_kept: 0,
                    },
                ),
            ],
        );
        assert!(analyze(&crashed).clean(), "crash excuses a lost request");

        // A peer declared dead by the failure detector counts as crashed:
        // message-plane kills never emit a storage Crash event, but the
        // service's aborted requests are just as excusable.
        let suspected = trace(
            2,
            vec![
                admit(0, 10, 0, 1),
                ev(
                    1,
                    15,
                    0,
                    EventKind::SuspectPeer {
                        peer: 0,
                        attempts: 5,
                    },
                ),
            ],
        );
        let r = analyze(&suspected);
        assert_eq!(r.crashed_ranks, vec![0]);
        assert!(r.clean(), "a suspected peer excuses a lost request: {r}");
    }

    #[test]
    fn double_completion_and_phantom_completion_are_flagged() {
        let t = trace(
            1,
            vec![
                admit(0, 10, 0, 1),
                done(0, 20, 1, 1),
                done(0, 21, 2, 1),
                done(0, 22, 3, 9),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 2, "{r}");
        assert!(r.hazards[0].detail.contains("completed twice"));
        assert!(r.hazards[1].detail.contains("never admitted"));
    }

    fn cache(rank: usize, t: u64, seq: u64, outcome: CacheOutcome, file: &str) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::CacheAccess {
                tenant: 1,
                file: file.into(),
                outcome,
                bytes: 64,
            },
        )
    }

    #[test]
    fn hit_on_a_live_entry_is_clean() {
        let t = trace(
            1,
            vec![
                cache(0, 10, 0, CacheOutcome::Miss, "t1.3"),
                cache(0, 11, 1, CacheOutcome::Insert, "t1.3"),
                cache(0, 20, 2, CacheOutcome::Hit, "t1.3"),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
        assert_eq!(r.cache_hits_checked, 1);
    }

    #[test]
    fn hit_without_insert_is_flagged() {
        let t = trace(1, vec![cache(0, 20, 0, CacheOutcome::Hit, "t1.3")]);
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1);
        assert_eq!(r.hazards[0].rule, Rule::CacheCoherence);
        assert!(r.hazards[0].detail.contains("no live entry"));
    }

    #[test]
    fn hit_after_invalidation_or_eviction_is_flagged() {
        for kill in [CacheOutcome::Invalidate, CacheOutcome::Evict] {
            let t = trace(
                1,
                vec![
                    cache(0, 10, 0, CacheOutcome::Insert, "t1.3"),
                    cache(0, 15, 1, kill, "t1.3"),
                    cache(0, 20, 2, CacheOutcome::Hit, "t1.3"),
                ],
            );
            let r = analyze(&t);
            assert_eq!(r.hazards.len(), 1, "{kill:?}: {r}");
            assert_eq!(r.hazards[0].rule, Rule::CacheCoherence);
        }
    }

    #[test]
    fn hit_after_an_intervening_file_write_is_flagged() {
        let t = trace(
            1,
            vec![
                cache(0, 10, 0, CacheOutcome::Insert, "t1.3"),
                seal_write(0, 15, 1, "t1.3", 5),
                cache(0, 20, 2, CacheOutcome::Hit, "t1.3"),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1, "{r}");
        assert_eq!(r.hazards[0].rule, Rule::CacheCoherence);
        assert!(r.hazards[0].detail.contains("t1.3"));
    }

    #[test]
    fn reinsert_after_write_makes_hits_clean_again() {
        let t = trace(
            1,
            vec![
                cache(0, 10, 0, CacheOutcome::Insert, "t1.3"),
                seal_write(0, 15, 1, "t1.3", 5),
                cache(0, 16, 2, CacheOutcome::Miss, "t1.3"),
                cache(0, 17, 3, CacheOutcome::Insert, "t1.3"),
                cache(0, 20, 4, CacheOutcome::Hit, "t1.3"),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
    }

    fn seg_seal(rank: usize, t: u64, seq: u64, file: &str, segment: u64) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::SegmentSeal {
                stream: "s".into(),
                segment,
                file: file.into(),
                records: 4,
                bytes: 4096,
            },
        )
    }

    fn seg_read(rank: usize, t: u64, seq: u64, file: &str) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::PfsIndependent {
                op: PfsOp::Read,
                file: file.into(),
                offset: 0,
                bytes: 4096,
                regime: IndependentRegime::Cached,
                cost_ns: 10,
            },
        )
    }

    #[test]
    fn sealed_tail_read_after_barrier_is_clean() {
        // Seal on rank 0, barrier round, read on rank 1: the barrier
        // gives the read a happens-before path from the seal.
        let t = trace(
            2,
            vec![
                seg_seal(0, 100, 0, "s.seg000000", 0),
                coll(0, 110, 1, CollOp::Barrier, None),
                coll(1, 110, 0, CollOp::Barrier, None),
                seg_read(1, 200, 1, "s.seg000000"),
            ],
        );
        let r = analyze(&t);
        assert!(r.clean(), "{r}");
        assert_eq!(r.tail_reads_checked, 1);
    }

    #[test]
    fn concurrent_tail_read_is_flagged_with_witness() {
        // No synchronization between the seal and the read: snapshot
        // isolation cannot be established, and the witness carries the
        // two incomparable clocks.
        let t = trace(
            2,
            vec![
                seg_seal(0, 100, 0, "s.seg000000", 0),
                seg_read(1, 50, 0, "s.seg000000"),
            ],
        );
        let r = analyze(&t);
        let hits: Vec<_> = r
            .hazards
            .iter()
            .filter(|h| h.rule == Rule::UnsealedTailRead)
            .collect();
        assert_eq!(hits.len(), 1, "{r}");
        assert_eq!(hits[0].rank, Some(1));
        assert!(hits[0].detail.contains("no happens-before path"), "{r}");
        assert!(hits[0].witness.is_some());
    }

    #[test]
    fn read_of_never_sealed_segment_is_flagged() {
        // A TailConsume names the file (so it is in scope as a segment
        // file) but no SegmentSeal for it exists anywhere.
        let t = trace(
            1,
            vec![
                ev(
                    0,
                    10,
                    0,
                    EventKind::TailConsume {
                        stream: "s".into(),
                        reader: 1,
                        segment: 0,
                        file: "s.seg000000".into(),
                        bytes: 4096,
                    },
                ),
                seg_read(0, 20, 1, "s.seg000000"),
            ],
        );
        let r = analyze(&t);
        let hits: Vec<_> = r
            .hazards
            .iter()
            .filter(|h| h.rule == Rule::UnsealedTailRead)
            .collect();
        assert_eq!(hits.len(), 1, "{r}");
        assert!(hits[0].detail.contains("never sealed"), "{r}");
    }

    #[test]
    fn compact_under_live_reader_is_flagged() {
        let t = trace(
            1,
            vec![
                ev(
                    0,
                    10,
                    0,
                    EventKind::TailAttach {
                        stream: "s".into(),
                        reader: 1,
                        first_segment: 0,
                        sealed: 2,
                    },
                ),
                ev(
                    0,
                    20,
                    1,
                    EventKind::Compact {
                        stream: "s".into(),
                        segment: 0,
                        file: "s.seg000000".into(),
                        bytes: 4096,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        assert_eq!(r.hazards.len(), 1, "{r}");
        assert_eq!(r.hazards[0].rule, Rule::CompactedUnderReader);
        assert!(r.hazards[0].detail.contains("reader 1"), "{r}");
        assert!(r.hazards[0].witness.is_some());
        assert_eq!(r.compactions_checked, 1);
    }

    #[test]
    fn compact_behind_consumed_or_detached_cursors_is_clean() {
        let t = trace(
            1,
            vec![
                ev(
                    0,
                    10,
                    0,
                    EventKind::TailAttach {
                        stream: "s".into(),
                        reader: 1,
                        first_segment: 0,
                        sealed: 2,
                    },
                ),
                ev(
                    0,
                    20,
                    1,
                    EventKind::TailConsume {
                        stream: "s".into(),
                        reader: 1,
                        segment: 0,
                        file: "s.seg000000".into(),
                        bytes: 4096,
                    },
                ),
                ev(
                    0,
                    30,
                    2,
                    EventKind::Compact {
                        stream: "s".into(),
                        segment: 0,
                        file: "s.seg000000".into(),
                        bytes: 4096,
                    },
                ),
                ev(
                    0,
                    40,
                    3,
                    EventKind::TailDetach {
                        stream: "s".into(),
                        reader: 1,
                        consumed_through: 1,
                    },
                ),
                ev(
                    0,
                    50,
                    4,
                    EventKind::Compact {
                        stream: "s".into(),
                        segment: 1,
                        file: "s.seg000001".into(),
                        bytes: 4096,
                    },
                ),
            ],
        );
        let r = analyze(&t);
        let hits: Vec<_> = r
            .hazards
            .iter()
            .filter(|h| h.rule == Rule::CompactedUnderReader)
            .collect();
        assert!(hits.is_empty(), "{r}");
        assert_eq!(r.compactions_checked, 2);
    }
}
