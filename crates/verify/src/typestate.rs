//! Typestate d/stream wrappers: the Fig. 2 automaton in the type system.
//!
//! The dynamic API in `dstreams-core` enforces the paper's state machine
//! at run time — an illegal call order surfaces as
//! [`StreamError::StateViolation`]. The wrappers here move that check to
//! compile time: each protocol state is a distinct type parameter, every
//! transition consumes the stream and returns it in its successor state,
//! and an illegal transition is simply *not a method* of the current
//! state's type. The mapping to the paper's Figure 2:
//!
//! ```text
//! output:  open ──► Empty ──insert──► Loaded ──insert──► Loaded
//!                     │                 │  │
//!                   close             write write_begin
//!                     ▼                 │  └──► Flushing ──write_end──► Empty
//!                   (done)              └─────────────────────────────► Empty
//!
//! input:   open ──► ReadReady ──read/unsorted_read──► Extracting ──extract*──► Extracting
//!              ▲        │  │                              │
//!              │      close prefetch/prefetch_unsorted  finish (all extracts done)
//!              │        │  └──► PrefetchedSorted/Unsorted ──read──► Extracting
//!              └────────┴──────────────────────────────────────────────┘
//! ```
//!
//! What the types rule out (each is a `compile_fail` doctest below):
//! insert after `write_begin`, `write` or `close` with the group in the
//! wrong state, unmatched `write_begin`/`write_end`, extract before a
//! read, a second `prefetch` while one is in flight, consuming a
//! prefetch with the mismatched read mode, and skipping over an
//! in-flight prefetch. Data-dependent conditions (end of stream, extract
//! counts, layout mismatches) remain runtime `Result`s — the dynamic API
//! stays available for code that needs data-dependent call orders (e.g.
//! a variable number of writes in flight).
//!
//! The wrappers are zero-cost: each state is a zero-sized marker except
//! [`Flushing`], which holds the in-flight [`PendingWrite`] so that the
//! only way back to [`Empty`] is the matching `write_end`.
//!
//! # Illegal orders rejected at compile time
//!
//! Insert after `write_begin` (the group is already being flushed):
//!
//! ```compile_fail
//! use dstreams_collections::Collection;
//! use dstreams_verify::typestate::{Flushing, OStream};
//! fn misuse(s: OStream<'_, Flushing>, c: &Collection<u32>) {
//!     let _ = s.insert_collection(c);
//! }
//! ```
//!
//! Double `close` (the first close consumed the stream):
//!
//! ```compile_fail
//! use dstreams_verify::typestate::{Empty, OStream};
//! fn misuse(s: OStream<'_, Empty>) {
//!     let _ = s.close();
//!     let _ = s.close();
//! }
//! ```
//!
//! `close` with inserts pending (a loaded group must be written first):
//!
//! ```compile_fail
//! use dstreams_verify::typestate::{Loaded, OStream};
//! fn misuse(s: OStream<'_, Loaded>) {
//!     let _ = s.close();
//! }
//! ```
//!
//! `close` with a split-collective write in flight:
//!
//! ```compile_fail
//! use dstreams_verify::typestate::{Flushing, OStream};
//! fn misuse(s: OStream<'_, Flushing>) {
//!     let _ = s.close();
//! }
//! ```
//!
//! `write_end` without a matching `write_begin`:
//!
//! ```compile_fail
//! use dstreams_verify::typestate::{Empty, OStream};
//! fn misuse(s: OStream<'_, Empty>) {
//!     let _ = s.write_end();
//! }
//! ```
//!
//! Double `write_end` (the flush was already retired):
//!
//! ```compile_fail
//! use dstreams_verify::typestate::{Flushing, OStream};
//! fn misuse(s: OStream<'_, Flushing>) {
//!     let s = s.write_end();
//!     let _ = s.write_end();
//! }
//! ```
//!
//! `write` with no pending inserts (Fig. 2 requires `insert⁺` first):
//!
//! ```compile_fail
//! use dstreams_verify::typestate::{Empty, OStream};
//! fn misuse(s: OStream<'_, Empty>) {
//!     let _ = s.write();
//! }
//! ```
//!
//! Extract before any read buffered a record:
//!
//! ```compile_fail
//! use dstreams_collections::Collection;
//! use dstreams_verify::typestate::{IStream, ReadReady};
//! fn misuse(s: IStream<'_, ReadReady>, c: &mut Collection<u32>) {
//!     let _ = s.extract_collection(c);
//! }
//! ```
//!
//! A second `prefetch` while one is in flight:
//!
//! ```compile_fail
//! use dstreams_verify::typestate::{IStream, PrefetchedSorted};
//! fn misuse(s: IStream<'_, PrefetchedSorted>) {
//!     let _ = s.prefetch();
//! }
//! ```
//!
//! Consuming a sorted prefetch with `unsorted_read`:
//!
//! ```compile_fail
//! use dstreams_verify::typestate::{IStream, PrefetchedSorted};
//! fn misuse(s: IStream<'_, PrefetchedSorted>) {
//!     let _ = s.unsorted_read();
//! }
//! ```
//!
//! Skipping a record while a prefetch is in flight:
//!
//! ```compile_fail
//! use dstreams_verify::typestate::{IStream, PrefetchedSorted};
//! fn misuse(s: IStream<'_, PrefetchedSorted>) {
//!     let _ = s.skip_record();
//! }
//! ```
//!
//! Reading the next record while the current one still owes extracts:
//!
//! ```compile_fail
//! use dstreams_verify::typestate::{Extracting, IStream};
//! fn misuse(s: IStream<'_, Extracting>) {
//!     let _ = s.read();
//! }
//! ```

use dstreams_collections::{Collection, Layout};
use dstreams_core::{Extractor, Inserter, PendingWrite, StreamData, StreamError, StreamOptions};
use dstreams_machine::NodeCtx;
use dstreams_pfs::Pfs;

mod sealed {
    pub trait Sealed {}
}

/// Protocol states of a typestate [`OStream`].
pub trait OState: sealed::Sealed {}

/// Protocol states of a typestate [`IStream`].
pub trait IState: sealed::Sealed {}

/// Output state: the interleave group is empty — the stream may take
/// inserts or close.
pub struct Empty;

/// Output state: at least one insert is pending — the stream may take
/// more inserts or flush the group with `write`/`write_begin`.
pub struct Loaded;

/// Output state: a split-collective write is in flight. Holds the
/// [`PendingWrite`] so the only way forward is the matching
/// [`OStream::write_end`].
pub struct Flushing {
    pending: PendingWrite,
}

impl sealed::Sealed for Empty {}
impl sealed::Sealed for Loaded {}
impl sealed::Sealed for Flushing {}
impl OState for Empty {}
impl OState for Loaded {}
impl OState for Flushing {}

/// States that may accept an insert (Fig. 2 allows `insert` from the
/// open state and after previous inserts — not during a flush).
pub trait Insertable: OState {}
impl Insertable for Empty {}
impl Insertable for Loaded {}

/// Input state: no record is buffered — the stream may read, prefetch,
/// skip, or close.
pub struct ReadReady;

/// Input state: a record is buffered and owes extracts.
pub struct Extracting;

/// Input state: a record fetched by [`IStream::prefetch`] is in flight;
/// only a sorted [`IStream::read`] (or `close`) may consume it.
pub struct PrefetchedSorted;

/// Input state: a record fetched by [`IStream::prefetch_unsorted`] is in
/// flight; only [`IStream::unsorted_read`] (or `close`) may consume it.
pub struct PrefetchedUnsorted;

impl sealed::Sealed for ReadReady {}
impl sealed::Sealed for Extracting {}
impl sealed::Sealed for PrefetchedSorted {}
impl sealed::Sealed for PrefetchedUnsorted {}
impl IState for ReadReady {}
impl IState for Extracting {}
impl IState for PrefetchedSorted {}
impl IState for PrefetchedUnsorted {}

/// States from which an input stream may close: anywhere except
/// mid-extraction (finish the record first).
pub trait ICloseable: IState {}
impl ICloseable for ReadReady {}
impl ICloseable for PrefetchedSorted {}
impl ICloseable for PrefetchedUnsorted {}

/// A typestate output d/stream: [`dstreams_core::OStream`] wrapped so
/// that Fig. 2's output automaton is enforced by the compiler.
///
/// A runtime error from the underlying stream (layout mismatch,
/// interleave mismatch, PFS failure) consumes the wrapper — the protocol
/// offers no legal continuation after a failed collective.
pub struct OStream<'a, S: OState> {
    inner: dstreams_core::OStream<'a>,
    state: S,
}

impl<'a> OStream<'a, Empty> {
    /// Open an output stream in the [`Empty`] state. Collective.
    pub fn create(
        ctx: &'a NodeCtx,
        pfs: &Pfs,
        layout: &Layout,
        name: &str,
    ) -> Result<Self, StreamError> {
        Ok(OStream {
            inner: dstreams_core::OStream::create(ctx, pfs, layout, name)?,
            state: Empty,
        })
    }

    /// [`OStream::create`] with explicit options.
    pub fn create_with(
        ctx: &'a NodeCtx,
        pfs: &Pfs,
        layout: &Layout,
        name: &str,
        opts: StreamOptions,
    ) -> Result<Self, StreamError> {
        Ok(OStream {
            inner: dstreams_core::OStream::create_with(ctx, pfs, layout, name, opts)?,
            state: Empty,
        })
    }

    /// The d/stream `close` primitive. Only an [`Empty`] stream closes:
    /// pending inserts or an in-flight flush are compile errors here,
    /// so this cannot raise a state violation.
    pub fn close(self) -> Result<(), StreamError> {
        self.inner.close()
    }
}

impl<'a, S: OState> OStream<'a, S> {
    /// The stream's layout.
    pub fn layout(&self) -> &Layout {
        self.inner.layout()
    }

    /// Records written so far through this stream.
    pub fn records_written(&self) -> usize {
        self.inner.records_written()
    }
}

impl<'a, S: Insertable> OStream<'a, S> {
    /// Insert an entire collection (`s << g`): the stream is [`Loaded`]
    /// afterwards.
    pub fn insert_collection<T: StreamData>(
        self,
        c: &Collection<T>,
    ) -> Result<OStream<'a, Loaded>, StreamError> {
        let OStream { mut inner, .. } = self;
        inner.insert_collection(c)?;
        Ok(OStream {
            inner,
            state: Loaded,
        })
    }

    /// Insert a projection of each element (`s << g.field`).
    pub fn insert_with<T>(
        self,
        c: &Collection<T>,
        f: impl Fn(&T, &mut Inserter<'_>),
    ) -> Result<OStream<'a, Loaded>, StreamError> {
        let OStream { mut inner, .. } = self;
        inner.insert_with(c, f)?;
        Ok(OStream {
            inner,
            state: Loaded,
        })
    }
}

impl<'a> OStream<'a, Loaded> {
    /// Flush the interleave group as one write record (the d/stream
    /// `write` primitive). Collective. [`Loaded`] guarantees at least
    /// one pending insert, so `EmptyWrite` is unreachable.
    pub fn write(self) -> Result<OStream<'a, Empty>, StreamError> {
        let OStream { mut inner, .. } = self;
        inner.write()?;
        Ok(OStream {
            inner,
            state: Empty,
        })
    }

    /// Begin a split-collective write. The returned [`Flushing`] stream
    /// holds the pending handle: the *only* path back to [`Empty`] is
    /// the matching [`OStream::write_end`], so unmatched begin/end pairs
    /// cannot be expressed. Collective.
    pub fn write_begin(self) -> Result<OStream<'a, Flushing>, StreamError> {
        let OStream { mut inner, .. } = self;
        let pending = inner.write_begin()?;
        Ok(OStream {
            inner,
            state: Flushing { pending },
        })
    }
}

impl<'a> OStream<'a, Flushing> {
    /// Retire the in-flight split-collective write. Collective cost
    /// accounting happens here; the stream returns to [`Empty`].
    pub fn write_end(self) -> Result<OStream<'a, Empty>, StreamError> {
        let OStream { mut inner, state } = self;
        inner.write_end(state.pending)?;
        Ok(OStream {
            inner,
            state: Empty,
        })
    }
}

/// Outcome of a typestate read: either a record is buffered and the
/// stream owes extracts, or the file is exhausted and the stream is
/// still [`ReadReady`] (to skip/close).
pub enum ReadOutcome<'a> {
    /// A record was buffered; extract it.
    Record(IStream<'a, Extracting>),
    /// End of stream: no record remained.
    End(IStream<'a, ReadReady>),
}

/// Outcome of a typestate prefetch: a record is in flight, or the file
/// is exhausted (prefetch past the end is a no-op in Fig. 2's async
/// extension, not an error).
pub enum Fetched<'a, S: IState> {
    /// A record is in flight; consume it with the matching read mode.
    InFlight(IStream<'a, S>),
    /// End of stream: nothing left to fetch.
    End(IStream<'a, ReadReady>),
}

/// Outcome of a typestate `skip_record`.
pub enum Skipped<'a> {
    /// A record was skipped; the cursor moved past it.
    Next(IStream<'a, ReadReady>),
    /// End of stream: no record remained to skip.
    End(IStream<'a, ReadReady>),
}

/// A typestate input d/stream: [`dstreams_core::IStream`] wrapped so
/// that Fig. 2's input automaton is enforced by the compiler.
pub struct IStream<'a, S: IState> {
    inner: dstreams_core::IStream<'a>,
    // Zero-sized state marker: carried only for the type parameter, so
    // nothing ever reads it (unlike OStream's Flushing, which holds the
    // in-flight handle).
    #[allow(dead_code)]
    state: S,
}

impl<'a> IStream<'a, ReadReady> {
    /// Open an input stream in the [`ReadReady`] state. Collective.
    pub fn open(
        ctx: &'a NodeCtx,
        pfs: &Pfs,
        layout: &Layout,
        name: &str,
    ) -> Result<Self, StreamError> {
        Ok(IStream {
            inner: dstreams_core::IStream::open(ctx, pfs, layout, name)?,
            state: ReadReady,
        })
    }

    /// Whether the file has another record after the current position.
    pub fn at_end(&self) -> bool {
        self.inner.at_end()
    }

    /// The d/stream `read` primitive: buffer the next record with
    /// elements routed to their owners. End of stream is an outcome,
    /// not an error. Collective.
    pub fn read(self) -> Result<ReadOutcome<'a>, StreamError> {
        let IStream { mut inner, .. } = self;
        match inner.read() {
            Ok(()) => Ok(ReadOutcome::Record(IStream {
                inner,
                state: Extracting,
            })),
            Err(StreamError::EndOfStream) => Ok(ReadOutcome::End(IStream {
                inner,
                state: ReadReady,
            })),
            Err(e) => Err(e),
        }
    }

    /// The d/stream `unsortedRead` primitive (no routing). Collective.
    pub fn unsorted_read(self) -> Result<ReadOutcome<'a>, StreamError> {
        let IStream { mut inner, .. } = self;
        match inner.unsorted_read() {
            Ok(()) => Ok(ReadOutcome::Record(IStream {
                inner,
                state: Extracting,
            })),
            Err(StreamError::EndOfStream) => Ok(ReadOutcome::End(IStream {
                inner,
                state: ReadReady,
            })),
            Err(e) => Err(e),
        }
    }

    /// Begin a read-ahead for a sorted consumer. At most one prefetch is
    /// in flight — a second is a compile error on the returned state.
    /// Collective.
    pub fn prefetch(self) -> Result<Fetched<'a, PrefetchedSorted>, StreamError> {
        let IStream { mut inner, .. } = self;
        match inner.prefetch() {
            Ok(true) => Ok(Fetched::InFlight(IStream {
                inner,
                state: PrefetchedSorted,
            })),
            Ok(false) => Ok(Fetched::End(IStream {
                inner,
                state: ReadReady,
            })),
            Err(e) => Err(e),
        }
    }

    /// Begin a read-ahead for an unsorted consumer. Collective.
    pub fn prefetch_unsorted(self) -> Result<Fetched<'a, PrefetchedUnsorted>, StreamError> {
        let IStream { mut inner, .. } = self;
        match inner.prefetch_unsorted() {
            Ok(true) => Ok(Fetched::InFlight(IStream {
                inner,
                state: PrefetchedUnsorted,
            })),
            Ok(false) => Ok(Fetched::End(IStream {
                inner,
                state: ReadReady,
            })),
            Err(e) => Err(e),
        }
    }

    /// Skip the next record without buffering its data. Collective.
    pub fn skip_record(self) -> Result<Skipped<'a>, StreamError> {
        let IStream { mut inner, .. } = self;
        match inner.skip_record() {
            Ok(()) => Ok(Skipped::Next(IStream {
                inner,
                state: ReadReady,
            })),
            Err(StreamError::EndOfStream) => Ok(Skipped::End(IStream {
                inner,
                state: ReadReady,
            })),
            Err(e) => Err(e),
        }
    }
}

impl<'a> IStream<'a, PrefetchedSorted> {
    /// Consume the in-flight sorted prefetch (the only read mode this
    /// state offers — the mismatch is a compile error). Collective.
    pub fn read(self) -> Result<IStream<'a, Extracting>, StreamError> {
        let IStream { mut inner, .. } = self;
        inner.read()?;
        Ok(IStream {
            inner,
            state: Extracting,
        })
    }
}

impl<'a> IStream<'a, PrefetchedUnsorted> {
    /// Consume the in-flight unsorted prefetch. Collective.
    pub fn unsorted_read(self) -> Result<IStream<'a, Extracting>, StreamError> {
        let IStream { mut inner, .. } = self;
        inner.unsorted_read()?;
        Ok(IStream {
            inner,
            state: Extracting,
        })
    }
}

impl<'a> IStream<'a, Extracting> {
    /// Extract an entire collection (`s >> g`). Extract counts are
    /// data-dependent (the record says how many inserts it holds), so
    /// over-extraction stays a runtime error.
    pub fn extract_collection<T: StreamData>(
        mut self,
        c: &mut Collection<T>,
    ) -> Result<Self, StreamError> {
        self.inner.extract_collection(c)?;
        Ok(self)
    }

    /// Extract a projection of each element (`s >> g.field`).
    pub fn extract_with<T>(
        mut self,
        c: &mut Collection<T>,
        f: impl Fn(&mut T, &mut Extractor<'_>) -> Result<(), StreamError>,
    ) -> Result<Self, StreamError> {
        self.inner.extract_with(c, f)?;
        Ok(self)
    }

    /// Extract calls still owed on the buffered record.
    pub fn extracts_remaining(&self) -> usize {
        self.inner.extracts_remaining()
    }

    /// Declare the record fully consumed and return to [`ReadReady`].
    /// Errors with [`StreamError::UnconsumedData`] if extracts are still
    /// owed (the count is data-dependent, so this check is runtime).
    pub fn finish(self) -> Result<IStream<'a, ReadReady>, StreamError> {
        let remaining = self.inner.extracts_remaining();
        if remaining > 0 {
            return Err(StreamError::UnconsumedData {
                extracts_remaining: remaining,
            });
        }
        let IStream { inner, .. } = self;
        Ok(IStream {
            inner,
            state: ReadReady,
        })
    }
}

impl<'a, S: IState> IStream<'a, S> {
    /// The reader layout.
    pub fn layout(&self) -> &Layout {
        self.inner.layout()
    }
}

impl<'a, S: ICloseable> IStream<'a, S> {
    /// The d/stream `close` primitive. A mid-extraction close is a
    /// compile error ([`IStream::finish`] the record first); an
    /// in-flight prefetch is drained, as in the dynamic API.
    pub fn close(self) -> Result<(), StreamError> {
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_collections::DistKind;
    use dstreams_machine::{Machine, MachineConfig};

    #[test]
    fn full_protocol_round_trip() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let layout = Layout::dense(6, 2, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u32).unwrap();

            // Output: insert, write, insert, split write, close.
            let s = OStream::create(ctx, &p, &layout, "ts").unwrap();
            let s = s.insert_collection(&c).unwrap();
            let s = s.insert_collection(&c).unwrap();
            let s = s.write().unwrap();
            let s = s.insert_collection(&c).unwrap();
            let s = s.write_begin().unwrap();
            let s = s.write_end().unwrap();
            assert_eq!(s.records_written(), 2);
            s.close().unwrap();

            // Input: read-extract-finish, prefetch-read-extract-finish,
            // then the end-of-stream outcomes.
            let mut g = Collection::new(ctx, layout.clone(), |_| 0u32).unwrap();
            let r = IStream::open(ctx, &p, &layout, "ts").unwrap();
            let r = match r.read().unwrap() {
                ReadOutcome::Record(r) => r,
                ReadOutcome::End(_) => panic!("record expected"),
            };
            let r = r.extract_collection(&mut g).unwrap();
            assert_eq!(r.extracts_remaining(), 1);
            let r = r.extract_collection(&mut g).unwrap();
            let r = r.finish().unwrap();
            for (i, v) in g.iter() {
                assert_eq!(*v, i as u32);
            }
            let r = match r.prefetch().unwrap() {
                Fetched::InFlight(r) => r,
                Fetched::End(_) => panic!("second record expected"),
            };
            let r = r.read().unwrap();
            let r = r.extract_collection(&mut g).unwrap();
            let r = r.finish().unwrap();
            let r = match r.prefetch().unwrap() {
                Fetched::End(r) => r,
                Fetched::InFlight(_) => panic!("stream exhausted"),
            };
            let r = match r.read().unwrap() {
                ReadOutcome::End(r) => r,
                ReadOutcome::Record(_) => panic!("stream exhausted"),
            };
            r.close().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn finish_with_extracts_owed_is_a_runtime_error() {
        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let layout = Layout::dense(4, 1, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u32).unwrap();
            let s = OStream::create(ctx, &p, &layout, "f").unwrap();
            let s = s.insert_collection(&c).unwrap();
            let s = s.insert_collection(&c).unwrap();
            s.write().unwrap().close().unwrap();

            let mut g = Collection::new(ctx, layout.clone(), |_| 0u32).unwrap();
            let r = IStream::open(ctx, &p, &layout, "f").unwrap();
            let ReadOutcome::Record(r) = r.read().unwrap() else {
                panic!("record expected");
            };
            let r = r.extract_collection(&mut g).unwrap();
            assert!(matches!(
                r.finish(),
                Err(StreamError::UnconsumedData {
                    extracts_remaining: 1
                })
            ));
        })
        .unwrap();
    }

    #[test]
    fn unsorted_prefetch_round_trip() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let layout = Layout::dense(8, 2, DistKind::Cyclic).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u64).unwrap();
            let s = OStream::create(ctx, &p, &layout, "u").unwrap();
            let s = s.insert_collection(&c).unwrap();
            s.write().unwrap().close().unwrap();

            let mut g = Collection::new(ctx, layout.clone(), |_| 0u64).unwrap();
            let r = IStream::open(ctx, &p, &layout, "u").unwrap();
            let Fetched::InFlight(r) = r.prefetch_unsorted().unwrap() else {
                panic!("record expected");
            };
            let r = r.unsorted_read().unwrap();
            let r = r.extract_collection(&mut g).unwrap();
            r.finish().unwrap().close().unwrap();
            // Unsorted: values intact, assignment arbitrary — check the
            // multiset via a sum.
            let local: u64 = g.iter().map(|(_, v)| *v).sum();
            let total = ctx.all_reduce(local, |a, b| a + b).unwrap();
            assert_eq!(total, (0..8).sum::<u64>());
        })
        .unwrap();
    }

    #[test]
    fn close_drains_an_in_flight_prefetch() {
        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let layout = Layout::dense(4, 1, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u32).unwrap();
            let s = OStream::create(ctx, &p, &layout, "d").unwrap();
            let s = s.insert_collection(&c).unwrap();
            s.write().unwrap().close().unwrap();

            let r = IStream::open(ctx, &p, &layout, "d").unwrap();
            let Fetched::InFlight(r) = r.prefetch().unwrap() else {
                panic!("record expected");
            };
            r.close().unwrap();
        })
        .unwrap();
    }
}
