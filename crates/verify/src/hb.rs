//! Happens-before engine: per-rank vector clocks derived from trace
//! events, and the partial-order analyses built on them.
//!
//! The rule-by-rule checks in [`crate::analyze`] are pairwise: each
//! looks at one protocol in isolation and asks whether its ledger
//! balances. This module asks the stronger question — *could these two
//! operations have observed each other?* — by reconstructing the
//! happens-before partial order of the run and stamping every event
//! with a vector clock (FastTrack/Eraser tradition, applied to our
//! deterministic `(rank, vtime, seq)` traces).
//!
//! ## HB edges (the verification model)
//!
//! * **Program order** — events on one rank in `(vtime, seq)` order.
//! * **Message delivery** — the k-th `MsgSend` on a `(from, to, tag)`
//!   channel happens-before the k-th `MsgRecv` on that channel. The
//!   reliable-delivery layer logs exactly one `MsgSend` per logically
//!   delivered message and resequences per edge (retransmits and
//!   dropped duplicates appear as `Retransmit`/`DupDropped`, which
//!   carry no edge), so FIFO count-matching is exact.
//! * **Shuttle pairing** — the k-th outgoing `AggShuttle` toward a
//!   peer happens-before the k-th incoming `AggShuttle` from the
//!   shipper on that peer. Shuttle events annotate the message pair
//!   they ride, so this mirrors the delivery edge one event later.
//! * **Collectives as barrier merges** — each rank's i-th
//!   `Collective` event joins the clocks of every rank that has an
//!   i-th collective. This over-approximates rooted collectives
//!   (a broadcast is not a barrier), which can only *hide* races,
//!   never invent them; the collective-matching rule independently
//!   verifies the rounds line up.
//! * **Seal → dependent read** — a record's commit seal (a seal-sized
//!   independent write) is the self-describing commit point readers
//!   depend on: every later PFS read of that file joins the clock of
//!   every seal committed before it in the engine's linearization.
//! * **Async submit → complete** — same rank, covered by program
//!   order.
//!
//! The engine streams in `O(events × ranks)`: one pass over the
//! per-rank lanes with a round-robin worklist, each event stamped with
//! one clock of `nprocs` components. `e ≺ f` then decides in `O(1)`
//! by the epoch test `clock(f)[rank(e)] ≥ pos(e)`.
//!
//! Three analyses layer on the index: a PFS interval race detector
//! ([`find_interval_races`]), HB-grounded cache/session coherence
//! ([`find_coherence_violations`]), and an HB-aware structural trace
//! diff ([`diff_traces`]). Each flagged finding carries a witness —
//! the two conflicting events plus their incomparable vector clocks,
//! the absence proof `dsverify --explain` prints.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Bound;

use dstreams_core::RecordSeal;
use dstreams_trace::{Event, EventKind, PfsOp, Trace};

/// A reference to one trace event plus its stamped vector clock — the
/// unit a witness chain is made of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRef {
    /// Rank the event occurred on.
    pub rank: usize,
    /// Virtual time of the event.
    pub vtime_ns: u64,
    /// Per-rank sequence number.
    pub seq: u64,
    /// Short human-readable summary of the event kind.
    pub what: String,
    /// The event's vector clock under the HB model.
    pub clock: Vec<u64>,
}

impl fmt::Display for EventRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} t={}.{} {} — clock {:?}",
            self.rank, self.vtime_ns, self.seq, self.what, self.clock
        )
    }
}

/// The absence proof attached to a flagged race: two conflicting
/// events whose vector clocks are incomparable (neither component-wise
/// dominates at the other's own rank), so no happens-before path
/// orders them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The earlier event in the engine's linearization.
    pub first: EventRef,
    /// The later, conflicting event.
    pub second: EventRef,
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "    witness (incomparable vector clocks):")?;
        writeln!(f, "      {}", self.first)?;
        write!(f, "      {}", self.second)
    }
}

/// Short summary of an event kind for witnesses and diff output.
pub fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::MsgSend { to, tag, bytes, .. } => {
            format!("msg_send to {to} tag {tag} ({bytes} B)")
        }
        EventKind::MsgRecv {
            from, tag, bytes, ..
        } => {
            format!("msg_recv from {from} tag {tag} ({bytes} B)")
        }
        EventKind::Collective { op, root, .. } => match root {
            Some(r) => format!("collective {}(root={r})", op.name()),
            None => format!("collective {}", op.name()),
        },
        EventKind::PfsIndependent {
            op,
            file,
            offset,
            bytes,
            ..
        } => format!(
            "pfs_independent {} \"{file}\" [{offset}, {})",
            op.name(),
            offset + bytes
        ),
        EventKind::PfsCollective {
            op,
            file,
            offset,
            bytes,
            ..
        } => format!(
            "pfs_collective {} \"{file}\" [{offset}, {})",
            op.name(),
            offset + bytes
        ),
        EventKind::AggShuttle {
            outgoing,
            peer,
            bytes,
            file,
            op,
            ..
        } => format!(
            "agg_shuttle {} {} {peer} {} \"{file}\" ({bytes} B)",
            if *outgoing { "to" } else { "from" },
            if *outgoing { "->" } else { "<-" },
            op.name()
        ),
        EventKind::RedistShuttle {
            outgoing,
            peer,
            bytes,
            ..
        } => format!(
            "redist_shuttle {} {peer} ({bytes} B)",
            if *outgoing { "to" } else { "from" }
        ),
        EventKind::Retransmit { to, attempt, .. } => {
            format!("retransmit to {to} attempt {attempt}")
        }
        EventKind::DupDropped { from, .. } => format!("dup_dropped from {from}"),
        EventKind::SuspectPeer { peer, .. } => format!("suspect_peer {peer}"),
        EventKind::FaultInjected { kind, file, .. } => {
            format!("fault_injected {} \"{file}\"", kind.name())
        }
        EventKind::PfsRetry { attempt, .. } => format!("pfs_retry attempt {attempt}"),
        EventKind::PhaseBegin { phase } => format!("phase_begin {}", phase.name()),
        EventKind::PhaseEnd { phase } => format!("phase_end {}", phase.name()),
        EventKind::AsyncSubmit { op_id, .. } => format!("async_submit op {op_id}"),
        EventKind::AsyncComplete { op_id, .. } => format!("async_complete op {op_id}"),
        EventKind::SessionAdmit { request_id, .. } => {
            format!("session_admit request {request_id}")
        }
        EventKind::SessionShed { request_id, .. } => {
            format!("session_shed request {request_id}")
        }
        EventKind::SessionDone { request_id, .. } => {
            format!("session_done request {request_id}")
        }
        EventKind::CacheAccess { file, outcome, .. } => {
            format!("cache_access {} \"{file}\"", outcome.name())
        }
        EventKind::SegmentSeal {
            stream, segment, ..
        } => {
            format!("segment_seal \"{stream}\" segment {segment}")
        }
        EventKind::TailAttach {
            stream,
            reader,
            first_segment,
            ..
        } => format!("tail_attach \"{stream}\" reader {reader} at segment {first_segment}"),
        EventKind::TailConsume {
            stream,
            reader,
            segment,
            ..
        } => format!("tail_consume \"{stream}\" reader {reader} segment {segment}"),
        EventKind::TailDetach { stream, reader, .. } => {
            format!("tail_detach \"{stream}\" reader {reader}")
        }
        EventKind::Compact {
            stream, segment, ..
        } => {
            format!("compact \"{stream}\" segment {segment}")
        }
    }
}

/// Per-event vector clocks for one trace: the happens-before index.
#[derive(Debug, Clone)]
pub struct HbIndex {
    nprocs: usize,
    /// Per-rank lanes of global event indices, `(vtime, seq)` order.
    lanes: Vec<Vec<usize>>,
    /// Rank of each event (copied out so HB queries need no trace).
    ranks: Vec<usize>,
    /// Stamped vector clock of each event (empty for events whose rank
    /// is out of range — they take no part in the order).
    clocks: Vec<Vec<u64>>,
    /// 1-based per-rank position of each event (0 = unindexed).
    pos: Vec<u64>,
    /// Processing order: a linearization consistent with HB.
    order: Vec<usize>,
    /// Cross edges the scheduler had to force because the trace's
    /// prerequisites could not be satisfied (a broken trace; zero on
    /// anything the runtime actually produced).
    forced_edges: usize,
}

/// What the scheduler decided about one lane head.
enum Step {
    /// Processed; advance this lane's cursor.
    Advance,
    /// Processed a whole collective round; cursors already advanced.
    Batch,
    /// Blocked on a cross edge not yet available.
    Blocked,
}

impl HbIndex {
    /// Build the index for a trace. One pass, `O(events × ranks)`.
    pub fn build(trace: &Trace) -> HbIndex {
        let n = trace.nprocs;
        let ne = trace.events.len();
        let mut lanes: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in trace.events.iter().enumerate() {
            if e.rank < n {
                lanes[e.rank].push(i);
            }
        }
        for lane in &mut lanes {
            lane.sort_by_key(|&i| (trace.events[i].vtime_ns, trace.events[i].seq));
        }

        // Totals for orphan detection: a receive whose send count is
        // exhausted (or a collective round nobody else reaches) must
        // not block forever on a fixture's half-told story.
        let mut chan_total: BTreeMap<(usize, usize, u32), u64> = BTreeMap::new();
        let mut shuttle_total: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        let mut coll_total = vec![0u64; n];
        for e in &trace.events {
            if e.rank >= n {
                continue;
            }
            match &e.kind {
                EventKind::MsgSend { to, tag, .. } => {
                    *chan_total.entry((e.rank, *to, *tag)).or_insert(0) += 1;
                }
                EventKind::AggShuttle {
                    outgoing: true,
                    peer,
                    ..
                } => {
                    *shuttle_total.entry((e.rank, *peer)).or_insert(0) += 1;
                }
                EventKind::Collective { .. } => coll_total[e.rank] += 1,
                _ => {}
            }
        }

        let seal_len = RecordSeal::LEN as u64;
        let mut idx = HbIndex {
            nprocs: n,
            lanes,
            ranks: trace.events.iter().map(|e| e.rank).collect(),
            clocks: vec![Vec::new(); ne],
            pos: vec![0u64; ne],
            order: Vec::with_capacity(ne),
            forced_edges: 0,
        };

        let mut running: Vec<Vec<u64>> = vec![vec![0; n]; n];
        let mut cursor = vec![0usize; n];
        let mut sends_done: BTreeMap<(usize, usize, u32), Vec<usize>> = BTreeMap::new();
        let mut recvs_done: BTreeMap<(usize, usize, u32), u64> = BTreeMap::new();
        let mut shuttles_out_done: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        let mut shuttles_in_done: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        let mut coll_done = vec![0u64; n];
        let mut commit: BTreeMap<String, Vec<u64>> = BTreeMap::new();

        // One non-collective event: tick, join cross edges, stamp.
        // `force` drops the cross-edge prerequisite (broken traces).
        let process_one = |idx: &mut HbIndex,
                           running: &mut Vec<Vec<u64>>,
                           sends_done: &mut BTreeMap<(usize, usize, u32), Vec<usize>>,
                           recvs_done: &mut BTreeMap<(usize, usize, u32), u64>,
                           shuttles_out_done: &mut BTreeMap<(usize, usize), Vec<usize>>,
                           shuttles_in_done: &mut BTreeMap<(usize, usize), u64>,
                           commit: &mut BTreeMap<String, Vec<u64>>,
                           trace: &Trace,
                           r: usize,
                           gi: usize| {
            running[r][r] += 1;
            match &trace.events[gi].kind {
                EventKind::MsgRecv { from, tag, .. } => {
                    let key = (*from, r, *tag);
                    let k = *recvs_done.get(&key).unwrap_or(&0);
                    if let Some(sends) = sends_done.get(&key) {
                        if let Some(&send) = sends.get(k as usize) {
                            join_into(&mut running[r], &idx.clocks[send]);
                        }
                    }
                    *recvs_done.entry(key).or_insert(0) += 1;
                }
                EventKind::AggShuttle {
                    outgoing: false,
                    peer,
                    ..
                } => {
                    let key = (*peer, r);
                    let k = *shuttles_in_done.get(&key).unwrap_or(&0);
                    if let Some(outs) = shuttles_out_done.get(&key) {
                        if let Some(&out) = outs.get(k as usize) {
                            join_into(&mut running[r], &idx.clocks[out]);
                        }
                    }
                    *shuttles_in_done.entry(key).or_insert(0) += 1;
                }
                EventKind::PfsIndependent {
                    op: PfsOp::Read,
                    file,
                    ..
                }
                | EventKind::PfsCollective {
                    op: PfsOp::Read,
                    file,
                    ..
                } => {
                    if let Some(c) = commit.get(file.as_str()) {
                        join_into(&mut running[r], c);
                    }
                }
                _ => {}
            }
            idx.clocks[gi] = running[r].clone();
            idx.pos[gi] = running[r][r];
            idx.order.push(gi);
            match &trace.events[gi].kind {
                EventKind::MsgSend { to, tag, .. } => {
                    sends_done.entry((r, *to, *tag)).or_default().push(gi);
                }
                EventKind::AggShuttle {
                    outgoing: true,
                    peer,
                    ..
                } => {
                    shuttles_out_done.entry((r, *peer)).or_default().push(gi);
                }
                EventKind::PfsIndependent {
                    op: PfsOp::Write,
                    file,
                    bytes,
                    ..
                } if *bytes == seal_len => {
                    let slot = commit.entry(file.clone()).or_insert_with(|| vec![0; n]);
                    join_into(slot, &idx.clocks[gi]);
                }
                _ => {}
            }
        };

        loop {
            let mut progressed = false;
            let mut remaining = false;
            for r in 0..n {
                loop {
                    if cursor[r] >= idx.lanes[r].len() {
                        break;
                    }
                    let gi = idx.lanes[r][cursor[r]];
                    let step = match &trace.events[gi].kind {
                        EventKind::MsgRecv { from, tag, .. } => {
                            let key = (*from, r, *tag);
                            let k = *recvs_done.get(&key).unwrap_or(&0);
                            let total = *chan_total.get(&key).unwrap_or(&0);
                            let have = sends_done.get(&key).map(Vec::len).unwrap_or(0) as u64;
                            if k >= total || have > k {
                                Step::Advance
                            } else {
                                Step::Blocked
                            }
                        }
                        EventKind::AggShuttle {
                            outgoing: false,
                            peer,
                            ..
                        } => {
                            let key = (*peer, r);
                            let k = *shuttles_in_done.get(&key).unwrap_or(&0);
                            let total = *shuttle_total.get(&key).unwrap_or(&0);
                            let have =
                                shuttles_out_done.get(&key).map(Vec::len).unwrap_or(0) as u64;
                            if k >= total || have > k {
                                Step::Advance
                            } else {
                                Step::Blocked
                            }
                        }
                        EventKind::Collective { .. } => {
                            let round = coll_done[r];
                            let participants: Vec<usize> =
                                (0..n).filter(|&p| coll_total[p] > round).collect();
                            let ready = participants.iter().all(|&p| {
                                coll_done[p] == round
                                    && cursor[p] < idx.lanes[p].len()
                                    && matches!(
                                        trace.events[idx.lanes[p][cursor[p]]].kind,
                                        EventKind::Collective { .. }
                                    )
                            });
                            if ready {
                                // Barrier merge: tick every participant,
                                // stamp them all with the join, and set
                                // every running clock to it.
                                for &p in &participants {
                                    running[p][p] += 1;
                                }
                                let mut joined = running[participants[0]].clone();
                                for &p in &participants[1..] {
                                    join_into(&mut joined, &running[p]);
                                }
                                for &p in &participants {
                                    let pg = idx.lanes[p][cursor[p]];
                                    idx.clocks[pg] = joined.clone();
                                    idx.pos[pg] = joined[p];
                                    idx.order.push(pg);
                                    running[p] = joined.clone();
                                    coll_done[p] += 1;
                                    cursor[p] += 1;
                                }
                                Step::Batch
                            } else {
                                Step::Blocked
                            }
                        }
                        _ => Step::Advance,
                    };
                    match step {
                        Step::Advance => {
                            process_one(
                                &mut idx,
                                &mut running,
                                &mut sends_done,
                                &mut recvs_done,
                                &mut shuttles_out_done,
                                &mut shuttles_in_done,
                                &mut commit,
                                trace,
                                r,
                                gi,
                            );
                            cursor[r] += 1;
                            progressed = true;
                        }
                        Step::Batch => {
                            progressed = true;
                        }
                        Step::Blocked => {
                            remaining = true;
                            break;
                        }
                    }
                }
                if cursor[r] < idx.lanes[r].len() {
                    remaining = true;
                }
            }
            if !remaining {
                break;
            }
            if !progressed {
                // Deadlocked trace (impossible for runtime-produced
                // traces): force the blocked head with the smallest
                // (vtime, rank, seq) through without its cross edge so
                // the pass always terminates.
                let victim = (0..n)
                    .filter(|&r| cursor[r] < idx.lanes[r].len())
                    .min_by_key(|&r| {
                        let e = &trace.events[idx.lanes[r][cursor[r]]];
                        (e.vtime_ns, r, e.seq)
                    })
                    .expect("remaining work implies a blocked lane");
                let gi = idx.lanes[victim][cursor[victim]];
                if matches!(trace.events[gi].kind, EventKind::Collective { .. }) {
                    coll_done[victim] += 1;
                }
                process_one(
                    &mut idx,
                    &mut running,
                    &mut sends_done,
                    &mut recvs_done,
                    &mut shuttles_out_done,
                    &mut shuttles_in_done,
                    &mut commit,
                    trace,
                    victim,
                    gi,
                );
                cursor[victim] += 1;
                idx.forced_edges += 1;
            }
        }
        idx
    }

    /// Ranks the index covers.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Cross edges that had to be forced (zero on well-formed traces).
    pub fn forced_edges(&self) -> usize {
        self.forced_edges
    }

    /// The engine's processing order: a linearization consistent with
    /// the happens-before partial order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Per-rank lanes of global event indices in program order.
    pub fn lanes(&self) -> &[Vec<usize>] {
        &self.lanes
    }

    /// The stamped vector clock of event `i` (empty when the event's
    /// rank was out of range).
    pub fn clock(&self, i: usize) -> &[u64] {
        &self.clocks[i]
    }

    /// `O(1)` epoch test: does event `a` happen strictly before `b`?
    pub fn happens_before(&self, a: usize, b: usize) -> bool {
        a != b
            && self.pos[a] > 0
            && self.clocks[b].get(self.ranks[a]).copied().unwrap_or(0) >= self.pos[a]
    }

    /// True when neither event happens-before the other.
    pub fn concurrent(&self, a: usize, b: usize) -> bool {
        !self.happens_before(a, b) && !self.happens_before(b, a)
    }

    /// Witness-ready reference for event `i`.
    pub fn event_ref(&self, trace: &Trace, i: usize) -> EventRef {
        let e = &trace.events[i];
        EventRef {
            rank: e.rank,
            vtime_ns: e.vtime_ns,
            seq: e.seq,
            what: describe(&e.kind),
            clock: self.clocks[i].clone(),
        }
    }
}

/// Component-wise maximum, in place.
fn join_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// One byte-interval file access extracted from an event. Aggregated
/// traffic is attributed back to the originating rank through the
/// `AggShuttle` op/offset metadata: an outgoing write shuttle is the
/// origin's logical write of its slice, an incoming read shuttle is
/// the requester's logical read of its span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileAccess {
    /// Global index of the event the access belongs to.
    pub event: usize,
    /// Rank the access is attributed to.
    pub rank: usize,
    /// Read or write.
    pub op: PfsOp,
    /// File touched.
    pub file: String,
    /// Start of the byte interval (inclusive).
    pub start: u64,
    /// End of the byte interval (exclusive).
    pub end: u64,
}

/// Extract the file access an event describes, if any. Shuttles
/// captured before the attribution metadata existed (`offset: None`)
/// cannot be mapped to an interval and yield nothing.
pub fn file_access(i: usize, e: &Event) -> Option<FileAccess> {
    match &e.kind {
        EventKind::PfsIndependent {
            op,
            file,
            offset,
            bytes,
            ..
        }
        | EventKind::PfsCollective {
            op,
            file,
            offset,
            bytes,
            ..
        } if *bytes > 0 => Some(FileAccess {
            event: i,
            rank: e.rank,
            op: *op,
            file: file.clone(),
            start: *offset,
            end: offset + bytes,
        }),
        EventKind::AggShuttle {
            outgoing,
            bytes,
            file,
            op,
            offset: Some(o),
            ..
        } if *bytes > 0
            && ((*outgoing && *op == PfsOp::Write) || (!*outgoing && *op == PfsOp::Read)) =>
        {
            Some(FileAccess {
                event: i,
                rank: e.rank,
                op: *op,
                file: file.clone(),
                start: *o,
                end: o + bytes,
            })
        }
        _ => None,
    }
}

/// Two conflicting file-range accesses with no happens-before path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// File both accesses touch.
    pub file: String,
    /// Event index of the access processed first.
    pub first: usize,
    /// Its direction.
    pub first_op: PfsOp,
    /// Event index of the conflicting access.
    pub second: usize,
    /// Its direction.
    pub second_op: PfsOp,
    /// Overlapping byte interval start.
    pub start: u64,
    /// Overlapping byte interval end (exclusive).
    pub end: u64,
}

/// What the interval race detector covered and found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Races found (capped per file; see `suppressed`).
    pub races: Vec<Race>,
    /// Byte-interval accesses checked.
    pub accesses: usize,
    /// Races beyond the per-file cap that were not materialized.
    pub suppressed: usize,
}

/// Per-file cap on materialized races: one buggy pattern repeated per
/// round would otherwise bury the report.
const RACE_CAP_PER_FILE: usize = 4;

struct WriteSeg {
    end: u64,
    event: usize,
}

struct ReadSeg {
    end: u64,
    /// Last read per rank (at most `nprocs` entries).
    readers: Vec<usize>,
}

#[derive(Default)]
struct FileStore {
    writes: BTreeMap<u64, WriteSeg>,
    reads: BTreeMap<u64, ReadSeg>,
    reported: usize,
}

/// Keys of segments in a non-overlapping store intersecting `[s, e)`.
fn overlapping_keys<S>(map: &BTreeMap<u64, S>, s: u64, e: u64, end_of: fn(&S) -> u64) -> Vec<u64> {
    let mut keys = Vec::new();
    if let Some((&k, seg)) = map.range(..=s).next_back() {
        if end_of(seg) > s {
            keys.push(k);
        }
    }
    for (&k, _) in map.range((Bound::Excluded(s), Bound::Excluded(e))) {
        keys.push(k);
    }
    keys
}

/// Flag every pair of conflicting file-range accesses (write/write or
/// write/read on overlapping byte intervals) with no happens-before
/// path. Accesses by ranks in `excused` (crashed, or declared dead by
/// the failure detector) are skipped: a dying rank's tail is
/// legitimately unordered with the survivors' recovery.
pub fn find_interval_races(trace: &Trace, idx: &HbIndex, excused: &[usize]) -> RaceReport {
    let mut stores: BTreeMap<&str, FileStore> = BTreeMap::new();
    let mut report = RaceReport {
        races: Vec::new(),
        accesses: 0,
        suppressed: 0,
    };
    for &gi in idx.order() {
        let Some(acc) = file_access(gi, &trace.events[gi]) else {
            continue;
        };
        if excused.contains(&acc.rank) {
            continue;
        }
        report.accesses += 1;
        let store = stores.entry(file_name(&trace.events[gi].kind)).or_default();
        let (s, e) = (acc.start, acc.end);
        let flag = |store: &mut FileStore,
                    races: &mut Vec<Race>,
                    suppressed: &mut usize,
                    prev: usize,
                    prev_op: PfsOp,
                    os: u64,
                    oe: u64| {
            if excused.contains(&trace.events[prev].rank) {
                return;
            }
            if store.reported >= RACE_CAP_PER_FILE {
                *suppressed += 1;
                return;
            }
            store.reported += 1;
            races.push(Race {
                file: acc.file.clone(),
                first: prev,
                first_op: prev_op,
                second: gi,
                second_op: acc.op,
                start: os,
                end: oe,
            });
        };
        // Conflicts against settled writes (W/W or W-then-R).
        for k in overlapping_keys(&store.writes, s, e, |w| w.end) {
            let seg = &store.writes[&k];
            let (os, oe) = (k.max(s), seg.end.min(e));
            if !idx.happens_before(seg.event, gi) {
                let prev = seg.event;
                flag(
                    store,
                    &mut report.races,
                    &mut report.suppressed,
                    prev,
                    PfsOp::Write,
                    os,
                    oe,
                );
            }
        }
        match acc.op {
            PfsOp::Write => {
                // Conflicts against unsuperseded reads (R-then-W).
                for k in overlapping_keys(&store.reads, s, e, |r| r.end) {
                    let seg = store.reads.remove(&k).expect("key from overlap scan");
                    let (os, oe) = (k.max(s), seg.end.min(e));
                    for &rev in &seg.readers {
                        if !idx.happens_before(rev, gi) {
                            flag(
                                store,
                                &mut report.races,
                                &mut report.suppressed,
                                rev,
                                PfsOp::Read,
                                os,
                                oe,
                            );
                        }
                    }
                    if k < s {
                        store.reads.insert(
                            k,
                            ReadSeg {
                                end: s,
                                readers: seg.readers.clone(),
                            },
                        );
                    }
                    if seg.end > e {
                        store.reads.insert(
                            e,
                            ReadSeg {
                                end: seg.end,
                                readers: seg.readers,
                            },
                        );
                    }
                }
                // The new write supersedes the overlapped coverage.
                for k in overlapping_keys(&store.writes, s, e, |w| w.end) {
                    let seg = store.writes.remove(&k).expect("key from overlap scan");
                    if k < s {
                        store.writes.insert(
                            k,
                            WriteSeg {
                                end: s,
                                event: seg.event,
                            },
                        );
                    }
                    if seg.end > e {
                        store.writes.insert(
                            e,
                            WriteSeg {
                                end: seg.end,
                                event: seg.event,
                            },
                        );
                    }
                }
                store.writes.insert(s, WriteSeg { end: e, event: gi });
            }
            PfsOp::Read => merge_read(&mut store.reads, trace, s, e, gi),
        }
    }
    report
}

/// Record a read of `[s, e)` in the non-overlapping read store,
/// splitting segments at the boundaries and replacing this rank's
/// previous entry on the overlapped coverage.
fn merge_read(reads: &mut BTreeMap<u64, ReadSeg>, trace: &Trace, s: u64, e: u64, ev: usize) {
    let me = trace.events[ev].rank;
    let mut pieces: Vec<(u64, u64, Vec<usize>)> = Vec::new();
    for k in overlapping_keys(reads, s, e, |r| r.end) {
        let seg = reads.remove(&k).expect("key from overlap scan");
        if k < s {
            reads.insert(
                k,
                ReadSeg {
                    end: s,
                    readers: seg.readers.clone(),
                },
            );
        }
        if seg.end > e {
            reads.insert(
                e,
                ReadSeg {
                    end: seg.end,
                    readers: seg.readers.clone(),
                },
            );
        }
        pieces.push((k.max(s), seg.end.min(e), seg.readers));
    }
    pieces.sort_unstable_by_key(|p| p.0);
    let mut cur = s;
    for (os, oe, mut readers) in pieces {
        if os > cur {
            reads.insert(
                cur,
                ReadSeg {
                    end: os,
                    readers: vec![ev],
                },
            );
        }
        if let Some(slot) = readers.iter_mut().find(|x| trace.events[**x].rank == me) {
            *slot = ev;
        } else {
            readers.push(ev);
        }
        reads.insert(os, ReadSeg { end: oe, readers });
        cur = oe;
    }
    if cur < e {
        reads.insert(
            cur,
            ReadSeg {
                end: e,
                readers: vec![ev],
            },
        );
    }
}

fn file_name(kind: &EventKind) -> &str {
    match kind {
        EventKind::PfsIndependent { file, .. }
        | EventKind::PfsCollective { file, .. }
        | EventKind::AggShuttle { file, .. } => file.as_str(),
        _ => "",
    }
}

/// A cache hit served from an entry invalidated by a causally earlier
/// write the serving rank had already (transitively) observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleHit {
    /// Rank that served the hit.
    pub rank: usize,
    /// Cached file.
    pub file: String,
    /// Event index of the insert that created the entry.
    pub insert: usize,
    /// Event index of the invalidating write.
    pub write: usize,
    /// Event index of the stale hit.
    pub hit: usize,
}

/// A session completion that causally precedes another rank's
/// admission of the same request — the lockstep service ledger ran
/// backwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSkew {
    /// The skewed request.
    pub request_id: u64,
    /// Event index of the completion.
    pub done: usize,
    /// Event index of the admission it precedes.
    pub admit: usize,
}

/// What the HB coherence pass covered and found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceReport {
    /// Stale cache hits under HB order.
    pub stale_hits: Vec<StaleHit>,
    /// Session admissions causally after a completion.
    pub skews: Vec<SessionSkew>,
    /// Cache hits checked.
    pub hits_checked: usize,
}

/// Re-ground the cache-coherence and session-isolation checks on
/// happens-before order: a hit is stale when *any* rank's write to the
/// cached file is causally between the insert and the hit (the
/// timestamp rule only sees same-rank writes), and a request's
/// completion on one rank must never happen-before its admission on
/// another. Session skews involving ranks in `excused` are skipped
/// (recovery legitimately reshuffles the lockstep loop).
pub fn find_coherence_violations(
    trace: &Trace,
    idx: &HbIndex,
    excused: &[usize],
) -> CoherenceReport {
    use dstreams_trace::CacheOutcome;
    let mut report = CoherenceReport {
        stale_hits: Vec::new(),
        skews: Vec::new(),
        hits_checked: 0,
    };

    // All write accesses per file, any rank, in linearized order.
    let mut writes_by_file: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for &gi in idx.order() {
        if let Some(acc) = file_access(gi, &trace.events[gi]) {
            if acc.op == PfsOp::Write {
                writes_by_file.entry(acc.file).or_default().push(gi);
            }
        }
    }

    for lane in idx.lanes() {
        // file -> insert event of the live entry on this rank.
        let mut live: BTreeMap<&str, usize> = BTreeMap::new();
        for &gi in lane {
            match &trace.events[gi].kind {
                EventKind::CacheAccess { file, outcome, .. } => match outcome {
                    CacheOutcome::Insert => {
                        live.insert(file.as_str(), gi);
                    }
                    CacheOutcome::Evict | CacheOutcome::Invalidate => {
                        live.remove(file.as_str());
                    }
                    CacheOutcome::Hit => {
                        let Some(&ins) = live.get(file.as_str()) else {
                            // No live entry: the timestamp rule already
                            // owns this case.
                            continue;
                        };
                        report.hits_checked += 1;
                        for &w in writes_by_file.get(file.as_str()).into_iter().flatten() {
                            if !idx.happens_before(w, ins) && idx.happens_before(w, gi) {
                                report.stale_hits.push(StaleHit {
                                    rank: trace.events[gi].rank,
                                    file: file.clone(),
                                    insert: ins,
                                    write: w,
                                    hit: gi,
                                });
                                break;
                            }
                        }
                    }
                    CacheOutcome::Miss => {}
                },
                // Same-lane PFS writes invalidate, as in the timestamp
                // rule; cross-rank writes are what the HB pass adds.
                EventKind::PfsIndependent {
                    op: PfsOp::Write,
                    file,
                    ..
                }
                | EventKind::PfsCollective {
                    op: PfsOp::Write,
                    file,
                    ..
                } => {
                    live.remove(file.as_str());
                }
                _ => {}
            }
        }
    }

    // request id -> (admit events, done events) across all ranks.
    let mut sessions: BTreeMap<u64, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for (i, e) in trace.events.iter().enumerate() {
        match &e.kind {
            EventKind::SessionAdmit { request_id, .. } => {
                sessions.entry(*request_id).or_default().0.push(i);
            }
            EventKind::SessionDone { request_id, .. } => {
                sessions.entry(*request_id).or_default().1.push(i);
            }
            _ => {}
        }
    }
    for (id, (admits, dones)) in &sessions {
        for &d in dones {
            for &a in admits {
                if trace.events[d].rank == trace.events[a].rank {
                    continue;
                }
                if excused.contains(&trace.events[d].rank)
                    || excused.contains(&trace.events[a].rank)
                {
                    continue;
                }
                if idx.happens_before(d, a) {
                    report.skews.push(SessionSkew {
                        request_id: *id,
                        done: d,
                        admit: a,
                    });
                }
            }
        }
    }
    report
}

/// Where two traces first causally diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Rank whose lane holds the origin event.
    pub rank: usize,
    /// 0-based position in that rank's lane.
    pub position: usize,
    /// The event trace A has at that position (`None`: lane ended).
    pub a: Option<EventRef>,
    /// The event trace B has at that position (`None`: lane ended).
    pub b: Option<EventRef>,
    /// The causal frontier: per other rank, the last event the origin
    /// depends on — provably inside the shared prefix, so everything
    /// the origin could have observed is identical in both traces.
    pub frontier: Vec<EventRef>,
}

/// Result of an HB-aware structural diff of two traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffReport {
    /// `Some((a, b))` when the traces disagree on rank count (no
    /// per-rank comparison is possible).
    pub nprocs_mismatch: Option<(usize, usize)>,
    /// Events in trace A / trace B.
    pub events: (usize, usize),
    /// Per rank, the first structurally divergent lane position.
    pub divergent_ranks: Vec<(usize, usize)>,
    /// The HB-minimal divergence: the first causally-divergent event —
    /// no other rank's divergence happens-before it.
    pub origin: Option<Divergence>,
}

impl DiffReport {
    /// True when the traces are structurally identical.
    pub fn identical(&self) -> bool {
        self.nprocs_mismatch.is_none() && self.origin.is_none()
    }
}

/// HB-aware structural diff: find each rank's first divergent event
/// (comparing event kinds positionally per lane), then single out the
/// causally-minimal one and its witness chain. Two same-seed replays
/// report zero divergence; a seeded fault pinpoints the origin.
pub fn diff_traces(a: &Trace, b: &Trace) -> DiffReport {
    if a.nprocs != b.nprocs {
        return DiffReport {
            nprocs_mismatch: Some((a.nprocs, b.nprocs)),
            events: (a.events.len(), b.events.len()),
            divergent_ranks: Vec::new(),
            origin: None,
        };
    }
    let ia = HbIndex::build(a);
    let ib = HbIndex::build(b);
    let mut divergent: Vec<(usize, usize)> = Vec::new();
    for r in 0..a.nprocs {
        let (la, lb) = (&ia.lanes()[r], &ib.lanes()[r]);
        let shared = la
            .iter()
            .zip(lb.iter())
            .take_while(|(&x, &y)| a.events[x].kind == b.events[y].kind)
            .count();
        if shared < la.len() || shared < lb.len() {
            divergent.push((r, shared));
        }
    }
    if divergent.is_empty() {
        return DiffReport {
            nprocs_mismatch: None,
            events: (a.events.len(), b.events.len()),
            divergent_ranks: divergent,
            origin: None,
        };
    }

    // The candidate clock: from whichever trace has an event at the
    // divergent position (prefer A). Frontier entries below each
    // candidate's position lie in the shared prefix, so clocks from
    // either trace agree there.
    let clock_of = |&(r, p): &(usize, usize)| -> Option<(bool, usize)> {
        if let Some(&gi) = ia.lanes()[r].get(p) {
            Some((true, gi))
        } else {
            ib.lanes()[r].get(p).map(|&gi| (false, gi))
        }
    };
    let dominated = |c: &(usize, usize)| -> bool {
        let Some((in_a, gi)) = clock_of(c) else {
            return false;
        };
        let clock = if in_a { ia.clock(gi) } else { ib.clock(gi) };
        divergent
            .iter()
            .any(|&(s, p)| (s, p) != *c && clock.get(s).copied().unwrap_or(0) > p as u64)
    };
    let &(rank, position) = divergent
        .iter()
        .find(|c| !dominated(c))
        .unwrap_or(&divergent[0]);

    let (in_a, gi) = clock_of(&(rank, position)).expect("divergent lane has an event");
    let (trace, idx) = if in_a { (a, &ia) } else { (b, &ib) };
    let clock = idx.clock(gi).to_vec();
    let mut frontier = Vec::new();
    for (s, &cnt) in clock.iter().enumerate() {
        if s == rank || cnt == 0 {
            continue;
        }
        if let Some(&fi) = idx.lanes()[s].get(cnt as usize - 1) {
            frontier.push(idx.event_ref(trace, fi));
        }
    }
    let origin = Divergence {
        rank,
        position,
        a: ia.lanes()[rank].get(position).map(|&x| ia.event_ref(a, x)),
        b: ib.lanes()[rank].get(position).map(|&x| ib.event_ref(b, x)),
        frontier,
    };
    DiffReport {
        nprocs_mismatch: None,
        events: (a.events.len(), b.events.len()),
        divergent_ranks: divergent,
        origin: Some(origin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_trace::CollOp;

    fn ev(rank: usize, t: u64, seq: u64, kind: EventKind) -> Event {
        Event {
            rank,
            vtime_ns: t,
            seq,
            kind,
        }
    }

    fn trace(nprocs: usize, events: Vec<Event>) -> Trace {
        Trace { nprocs, events }
    }

    fn send(rank: usize, t: u64, seq: u64, to: usize, tag: u32) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::MsgSend {
                to,
                tag,
                bytes: 8,
                collective: false,
            },
        )
    }

    fn recv(rank: usize, t: u64, seq: u64, from: usize, tag: u32) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::MsgRecv {
                from,
                tag,
                bytes: 8,
                collective: false,
            },
        )
    }

    fn coll(rank: usize, t: u64, seq: u64) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::Collective {
                op: CollOp::Barrier,
                root: None,
                bytes: 0,
            },
        )
    }

    fn write(rank: usize, t: u64, seq: u64, file: &str, offset: u64, bytes: u64) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::PfsIndependent {
                op: PfsOp::Write,
                file: file.into(),
                offset,
                bytes,
                regime: dstreams_trace::IndependentRegime::Cached,
                cost_ns: 10,
            },
        )
    }

    fn read(rank: usize, t: u64, seq: u64, file: &str, offset: u64, bytes: u64) -> Event {
        ev(
            rank,
            t,
            seq,
            EventKind::PfsIndependent {
                op: PfsOp::Read,
                file: file.into(),
                offset,
                bytes,
                regime: dstreams_trace::IndependentRegime::Cached,
                cost_ns: 10,
            },
        )
    }

    #[test]
    fn program_order_is_happens_before() {
        let t = trace(
            1,
            vec![write(0, 10, 0, "f", 0, 8), write(0, 20, 1, "f", 8, 8)],
        );
        let idx = HbIndex::build(&t);
        assert!(idx.happens_before(0, 1));
        assert!(!idx.happens_before(1, 0));
        assert!(!idx.concurrent(0, 1));
    }

    #[test]
    fn message_edge_orders_across_ranks() {
        // w(0) ; send(0->1) ; recv(1) ; w(1): the two writes are ordered.
        let t = trace(
            2,
            vec![
                write(0, 10, 0, "f", 0, 8),
                send(0, 11, 1, 1, 7),
                recv(1, 12, 0, 0, 7),
                write(1, 13, 1, "f", 0, 8),
            ],
        );
        let idx = HbIndex::build(&t);
        assert!(idx.happens_before(0, 3));
        assert_eq!(idx.forced_edges(), 0);
        let races = find_interval_races(&t, &idx, &[]);
        assert!(races.races.is_empty(), "{races:?}");
        assert_eq!(races.accesses, 2);
    }

    #[test]
    fn unordered_overlapping_writes_race() {
        let t = trace(
            2,
            vec![write(0, 10, 0, "f", 0, 100), write(1, 10, 0, "f", 50, 100)],
        );
        let idx = HbIndex::build(&t);
        assert!(idx.concurrent(0, 1));
        let report = find_interval_races(&t, &idx, &[]);
        assert_eq!(report.races.len(), 1, "{report:?}");
        let race = &report.races[0];
        assert_eq!((race.start, race.end), (50, 100));
        assert_eq!(race.first_op, PfsOp::Write);
        assert_eq!(race.second_op, PfsOp::Write);
    }

    #[test]
    fn disjoint_unordered_writes_do_not_race() {
        let t = trace(
            2,
            vec![write(0, 10, 0, "f", 0, 50), write(1, 10, 0, "f", 50, 50)],
        );
        let idx = HbIndex::build(&t);
        let report = find_interval_races(&t, &idx, &[]);
        assert!(report.races.is_empty(), "{report:?}");
    }

    #[test]
    fn barrier_merge_orders_writes() {
        let t = trace(
            2,
            vec![
                write(0, 10, 0, "f", 0, 100),
                coll(0, 20, 1),
                coll(1, 20, 0),
                write(1, 30, 1, "f", 50, 100),
            ],
        );
        let idx = HbIndex::build(&t);
        assert!(idx.happens_before(0, 3));
        let report = find_interval_races(&t, &idx, &[]);
        assert!(report.races.is_empty(), "{report:?}");
    }

    #[test]
    fn unordered_write_read_overlap_races() {
        let t = trace(
            2,
            vec![write(0, 10, 0, "f", 0, 100), read(1, 10, 0, "f", 90, 20)],
        );
        let idx = HbIndex::build(&t);
        let report = find_interval_races(&t, &idx, &[]);
        assert_eq!(report.races.len(), 1, "{report:?}");
        assert_eq!((report.races[0].start, report.races[0].end), (90, 100));
    }

    #[test]
    fn seal_orders_dependent_read() {
        // Writer seals (20-byte independent write), reader reads the
        // sealed data: the seal edge orders them with no message.
        let seal_len = RecordSeal::LEN as u64;
        let t = trace(
            2,
            vec![
                write(0, 10, 0, "f", 100, 64),
                write(0, 20, 1, "f", 0, seal_len),
                read(1, 30, 0, "f", 100, 64),
            ],
        );
        let idx = HbIndex::build(&t);
        assert!(idx.happens_before(0, 2), "data write must precede read");
        let report = find_interval_races(&t, &idx, &[]);
        assert!(report.races.is_empty(), "{report:?}");
    }

    #[test]
    fn read_then_unordered_write_races() {
        // Reader first in linearization, writer concurrent: R/W race.
        let t = trace(
            2,
            vec![read(0, 10, 0, "f", 0, 64), write(1, 10, 0, "f", 0, 64)],
        );
        let idx = HbIndex::build(&t);
        let report = find_interval_races(&t, &idx, &[]);
        assert_eq!(report.races.len(), 1, "{report:?}");
        assert_eq!(report.races[0].first_op, PfsOp::Read);
        assert_eq!(report.races[0].second_op, PfsOp::Write);
    }

    #[test]
    fn crashed_rank_accesses_are_excused() {
        let t = trace(
            2,
            vec![write(0, 10, 0, "f", 0, 100), write(1, 10, 0, "f", 50, 100)],
        );
        let idx = HbIndex::build(&t);
        let report = find_interval_races(&t, &idx, &[1]);
        assert!(report.races.is_empty(), "{report:?}");
    }

    #[test]
    fn shuttle_pairing_orders_logical_and_physical_writes() {
        // Origin ships its slice (logical write), aggregator claims it
        // and issues the coalesced physical write: ordered, no race.
        let t = trace(
            2,
            vec![
                send(0, 10, 0, 1, 900),
                ev(
                    0,
                    10,
                    1,
                    EventKind::AggShuttle {
                        outgoing: true,
                        peer: 1,
                        bytes: 64,
                        file: "f".into(),
                        op: PfsOp::Write,
                        offset: Some(128),
                    },
                ),
                recv(1, 12, 0, 0, 900),
                ev(
                    1,
                    12,
                    1,
                    EventKind::AggShuttle {
                        outgoing: false,
                        peer: 0,
                        bytes: 64,
                        file: "f".into(),
                        op: PfsOp::Write,
                        offset: Some(128),
                    },
                ),
                write(1, 20, 2, "f", 0, 256),
            ],
        );
        let idx = HbIndex::build(&t);
        assert!(
            idx.happens_before(1, 4),
            "shuttle edge must order the writes"
        );
        let report = find_interval_races(&t, &idx, &[]);
        assert!(report.races.is_empty(), "{report:?}");
    }

    #[test]
    fn stale_hit_under_hb_is_found() {
        use dstreams_trace::CacheOutcome;
        let cache = |rank: usize, t: u64, seq: u64, outcome: CacheOutcome| {
            ev(
                rank,
                t,
                seq,
                EventKind::CacheAccess {
                    tenant: 1,
                    file: "f".into(),
                    outcome,
                    bytes: 64,
                },
            )
        };
        // Rank 0 caches f; rank 1 rewrites f and tells rank 0; rank 0
        // still serves a hit.
        let t = trace(
            2,
            vec![
                cache(0, 10, 0, CacheOutcome::Insert),
                write(1, 11, 0, "f", 0, 64),
                send(1, 12, 1, 0, 5),
                recv(0, 13, 1, 1, 5),
                cache(0, 14, 2, CacheOutcome::Hit),
            ],
        );
        let idx = HbIndex::build(&t);
        let report = find_coherence_violations(&t, &idx, &[]);
        assert_eq!(report.stale_hits.len(), 1, "{report:?}");
        assert_eq!(report.stale_hits[0].rank, 0);
        // Without the message the write is concurrent: unknowable, clean.
        let t2 = trace(
            2,
            vec![
                cache(0, 10, 0, CacheOutcome::Insert),
                write(1, 11, 0, "f", 0, 64),
                cache(0, 14, 2, CacheOutcome::Hit),
            ],
        );
        let idx2 = HbIndex::build(&t2);
        let report2 = find_coherence_violations(&t2, &idx2, &[]);
        assert!(report2.stale_hits.is_empty(), "{report2:?}");
    }

    #[test]
    fn session_done_before_admit_is_skew() {
        let admit = |rank: usize, t: u64, seq: u64| {
            ev(
                rank,
                t,
                seq,
                EventKind::SessionAdmit {
                    request_id: 9,
                    tenant: 1,
                    class: dstreams_trace::QosLevel::Standard,
                    op: dstreams_trace::ServeOp::Read,
                    queue_depth: 1,
                },
            )
        };
        let done = |rank: usize, t: u64, seq: u64| {
            ev(
                rank,
                t,
                seq,
                EventKind::SessionDone {
                    request_id: 9,
                    tenant: 1,
                    class: dstreams_trace::QosLevel::Standard,
                    op: dstreams_trace::ServeOp::Read,
                    latency_ns: 10,
                    ok: true,
                },
            )
        };
        let t = trace(
            2,
            vec![
                admit(0, 10, 0),
                done(0, 11, 1),
                send(0, 12, 2, 1, 3),
                recv(1, 13, 0, 0, 3),
                admit(1, 14, 1),
                done(1, 15, 2),
            ],
        );
        let idx = HbIndex::build(&t);
        let report = find_coherence_violations(&t, &idx, &[]);
        assert_eq!(report.skews.len(), 1, "{report:?}");
        assert_eq!(report.skews[0].request_id, 9);
    }

    #[test]
    fn identical_traces_self_diff_clean() {
        let t = trace(
            2,
            vec![
                write(0, 10, 0, "f", 0, 8),
                coll(0, 20, 1),
                coll(1, 20, 0),
                read(1, 30, 1, "f", 0, 8),
            ],
        );
        let d = diff_traces(&t, &t.clone());
        assert!(d.identical(), "{d:?}");
    }

    #[test]
    fn seeded_divergence_pinpoints_origin() {
        let base = vec![
            coll(0, 10, 0),
            coll(1, 10, 0),
            write(0, 20, 1, "f", 0, 8),
            write(1, 20, 1, "f", 8, 8),
        ];
        let a = trace(2, base.clone());
        let mut evs = base;
        // Rank 1 writes somewhere else after the shared barrier.
        evs[3] = write(1, 20, 1, "f", 64, 8);
        let b = trace(2, evs);
        let d = diff_traces(&a, &b);
        assert!(!d.identical());
        let o = d.origin.expect("divergence must have an origin");
        assert_eq!(o.rank, 1);
        assert_eq!(o.position, 1, "barrier is shared; write diverges");
        assert!(o.a.is_some() && o.b.is_some());
        // The frontier references rank 0's barrier — shared prefix.
        assert_eq!(o.frontier.len(), 1);
        assert_eq!(o.frontier[0].rank, 0);
    }

    #[test]
    fn diff_flags_nprocs_mismatch() {
        let a = trace(2, vec![]);
        let b = trace(3, vec![]);
        let d = diff_traces(&a, &b);
        assert!(!d.identical());
        assert_eq!(d.nprocs_mismatch, Some((2, 3)));
    }

    #[test]
    fn diff_flags_truncated_lane() {
        let a = trace(
            1,
            vec![write(0, 10, 0, "f", 0, 8), write(0, 20, 1, "f", 8, 8)],
        );
        let b = trace(1, vec![write(0, 10, 0, "f", 0, 8)]);
        let d = diff_traces(&a, &b);
        let o = d.origin.expect("truncation is a divergence");
        assert_eq!((o.rank, o.position), (0, 1));
        assert!(o.a.is_some());
        assert!(o.b.is_none());
    }

    #[test]
    fn forced_edges_only_on_broken_traces() {
        // A receive whose send exists but can never be processed first
        // (the sender itself blocks on a receive from the receiver —
        // a cycle no real execution can produce).
        let t = trace(
            2,
            vec![
                recv(0, 10, 0, 1, 1),
                send(0, 11, 1, 1, 2),
                recv(1, 10, 0, 0, 2),
                send(1, 11, 1, 0, 1),
            ],
        );
        let idx = HbIndex::build(&t);
        assert!(idx.forced_edges() > 0);
        assert_eq!(idx.order().len(), 4, "every event still gets a clock");
    }

    #[test]
    fn empty_trace_builds_empty_index() {
        let t = trace(2, vec![]);
        let idx = HbIndex::build(&t);
        assert_eq!(idx.order().len(), 0);
        assert_eq!(idx.forced_edges(), 0);
    }
}
