//! Soundness properties of the happens-before engine over live traces.
//!
//! Every fault-free run of the real runtime is, by construction, fully
//! synchronized: collectives order the ranks, the reliable message
//! layer orders each channel, and shuttle pairing orders aggregation
//! traffic. Two properties must therefore hold for *arbitrary* program
//! shapes, not just the hand-picked examples:
//!
//! * **race freedom** — the full analyzer (including the HB interval
//!   race detector and HB coherence rules) reports the trace clean; a
//!   hazard here is a false positive in the engine, not a bug in the
//!   runtime.
//! * **deterministic self-diff** — replaying the same program under the
//!   same configuration yields a trace that `diff_traces` finds
//!   causally identical; any reported divergence means either the
//!   runtime is nondeterministic or the diff invented one.

use dstreams_collections::{Collection, DistKind, Layout};
use dstreams_core::{IStream, OStream};
use dstreams_machine::{CollectiveConfig, Machine, MachineConfig};
use dstreams_pfs::Pfs;
use dstreams_trace::{Trace, TraceSink};
use dstreams_unbounded::{AppendOptions, AppendStream, TailReader};
use dstreams_verify::{analyze, diff_traces};
use proptest::prelude::*;

/// One fault-free write-then-read run over the live runtime, returning
/// the reparsed portable trace.
fn traced_run(nprocs: usize, elements: usize, cyclic: bool, aggregators: usize) -> Trace {
    let sink = TraceSink::new(nprocs);
    let pfs = Pfs::in_memory(nprocs);
    let p = pfs.clone();
    let mut config = MachineConfig::functional(nprocs).traced(sink.clone());
    if aggregators > 0 {
        config = config.with_collective(CollectiveConfig {
            aggregators,
            stripe_align: true,
        });
    }
    let dist = if cyclic {
        DistKind::Cyclic
    } else {
        DistKind::Block
    };
    Machine::run(config, move |ctx| {
        let layout = Layout::dense(elements, ctx.nprocs(), dist).unwrap();
        let c = Collection::new(ctx, layout.clone(), |g| g as u64).unwrap();
        let mut s = OStream::create(ctx, &p, &layout, "prop").unwrap();
        s.insert_collection(&c).unwrap();
        s.write().unwrap();
        s.insert_collection(&c).unwrap();
        let pending = s.write_begin().unwrap();
        s.write_end(pending).unwrap();
        s.close().unwrap();

        let mut g = Collection::new(ctx, layout.clone(), |_| 0u64).unwrap();
        let mut r = IStream::open(ctx, &p, &layout, "prop").unwrap();
        r.read().unwrap();
        r.extract_collection(&mut g).unwrap();
        r.close().unwrap();
        for (gid, v) in g.iter() {
            assert_eq!(*v, gid as u64);
        }
    })
    .unwrap();
    Trace::from_events_json(&sink.take().to_events_json()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn fault_free_live_traces_are_race_free_and_self_diff_clean(
        nprocs in 1usize..5,
        elements in 1usize..40,
        cyclic in any::<bool>(),
        agg in 0usize..3,
    ) {
        let aggregators = agg.min(nprocs);
        let trace = traced_run(nprocs, elements, cyclic, aggregators);
        prop_assert!(!trace.events.is_empty());

        // Race freedom: the full rule set, HB rules included, is clean.
        let report = analyze(&trace);
        prop_assert!(report.clean(), "false positive on a live trace: {report}");
        prop_assert_eq!(report.forced_hb_edges, 0, "HB scheduler forced an edge");
        prop_assert!(report.file_accesses > 0, "race detector saw no accesses");

        // Deterministic self-diff: a same-configuration replay is
        // causally identical, and so is the trace against itself.
        let replay = traced_run(nprocs, elements, cyclic, aggregators);
        let diff = diff_traces(&trace, &replay);
        prop_assert!(diff.identical(), "replay diverged: {diff:?}");
        prop_assert!(diff_traces(&trace, &trace).identical());
    }

    /// The same soundness contract for the streaming runtime: a
    /// fault-free producer/tail-reader run — seals, windowed appends,
    /// mid-run attach, retention — is race-free under the full rule set
    /// (the two streaming rules included), needs no forced HB edges,
    /// and replays causally identical.
    #[test]
    fn fault_free_streaming_traces_are_race_free_and_self_diff_clean(
        nprocs in 1usize..4,
        segments in 1u64..4,
        records in 1u64..3,
        depth in 1usize..4,
        retain in any::<bool>(),
    ) {
        let trace = streaming_run(nprocs, segments, records, depth, retain);
        prop_assert!(!trace.events.is_empty());

        let report = analyze(&trace);
        prop_assert!(report.clean(), "false positive on a streaming trace: {report}");
        prop_assert_eq!(report.forced_hb_edges, 0, "HB scheduler forced an edge");
        prop_assert!(report.tail_reads_checked > 0, "isolation rule saw no reads");

        let replay = streaming_run(nprocs, segments, records, depth, retain);
        let diff = diff_traces(&trace, &replay);
        prop_assert!(diff.identical(), "streaming replay diverged: {diff:?}");
    }
}

/// One fault-free append-stream run with a tailing reader: `segments`
/// seals of `records` windowed appends each, the reader polling after
/// every seal, retention optionally squeezing to a 1-byte budget.
fn streaming_run(nprocs: usize, segments: u64, records: u64, depth: usize, retain: bool) -> Trace {
    let sink = TraceSink::new(nprocs);
    let pfs = Pfs::in_memory(nprocs);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::functional(nprocs).traced(sink.clone()),
        move |ctx| {
            let layout = Layout::dense(6, ctx.nprocs(), DistKind::Block).unwrap();
            let opts = AppendOptions {
                window_depth: depth,
                retention_bytes: if retain { Some(1) } else { None },
                ..Default::default()
            };
            let mut s = AppendStream::create_with(ctx, &p, &layout, "hbp", opts).unwrap();
            let mut r = TailReader::attach(ctx, &p, &layout, "hbp").unwrap();
            for seg in 0..segments {
                for rec in 0..records {
                    let c = Collection::new(ctx, layout.clone(), move |g| {
                        seg * 1000 + rec * 100 + g as u64
                    })
                    .unwrap();
                    s.insert_collection(&c).unwrap();
                    s.append().unwrap();
                }
                s.seal().unwrap();
                let got = r
                    .poll(|is, entry| {
                        let mut g = Collection::new(ctx, layout.clone(), |_| 0u64).unwrap();
                        for rec in 0..entry.records {
                            is.read()?;
                            is.extract_collection(&mut g)?;
                            for (gid, v) in g.iter() {
                                assert_eq!(*v, entry.index * 1000 + rec * 100 + gid as u64);
                            }
                        }
                        Ok(())
                    })
                    .unwrap();
                assert!(got, "sealed segment {seg} was not visible to the tail");
            }
            r.detach().unwrap();
            s.close().unwrap();
        },
    )
    .unwrap();
    Trace::from_events_json(&sink.take().to_events_json()).unwrap()
}
