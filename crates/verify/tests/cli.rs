//! End-to-end tests of the `dsverify` binary and the analyzer over
//! negative trace fixtures and real runtime traces.

use std::process::Command;

use dstreams_collections::{Collection, DistKind, Layout};
use dstreams_core::{IStream, OStream};
use dstreams_machine::{CollectiveConfig, Machine, MachineConfig};
use dstreams_pfs::Pfs;
use dstreams_trace::{Trace, TraceSink};
use dstreams_verify::{analyze, Rule};

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn load(name: &str) -> Trace {
    let text = std::fs::read_to_string(fixture(name)).unwrap();
    Trace::from_events_json(&text).unwrap()
}

#[test]
fn mismatched_collective_fixture_is_flagged() {
    let report = analyze(&load("mismatched_collective.dstrace.json"));
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.rule, Rule::CollectiveMatching);
    assert!(h.detail.contains("all_reduce on ranks [0, 2]"), "{h}");
    assert!(h.detail.contains("broadcast(root=0) on ranks [1]"), "{h}");
}

#[test]
fn unmatched_write_begin_fixture_is_flagged() {
    let report = analyze(&load("unmatched_write_begin.dstrace.json"));
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.rule, Rule::AsyncPairing);
    assert_eq!(h.rank, Some(0));
    assert!(h.detail.contains("never retired"), "{h}");
    // Rank 1 retired its flush, so exactly one pair was counted.
    assert_eq!(report.async_pairs, 1);
}

#[test]
fn leaked_agg_shuttle_fixture_is_flagged() {
    let report = analyze(&load("leaked_agg_shuttle.dstrace.json"));
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.rule, Rule::ShuttleConservation);
    // The hazard points at the aggregator that dropped the payload.
    assert_eq!(h.rank, Some(0));
    assert!(h.detail.contains("1->0"), "{h}");
    assert!(h.detail.contains("4096 B shipped"), "{h}");
}

#[test]
fn lost_redist_transfer_fixture_is_flagged() {
    let report = analyze(&load("lost_redist_transfer.dstrace.json"));
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.rule, Rule::RedistConservation);
    // The hazard points at the receiver whose claim disagrees: rank 2
    // shipped 4 elements toward rank 0, which claimed only 3.
    assert_eq!(h.rank, Some(0));
    assert!(h.detail.contains("2->0"), "{h}");
    assert!(h.detail.contains("4 element(s)/512 B"), "{h}");
    assert!(h.detail.contains("3 element(s)/512 B"), "{h}");
}

#[test]
fn duplicate_shuttle_delivery_fixture_is_flagged() {
    let report = analyze(&load("duplicate_shuttle_delivery.dstrace.json"));
    // The double claim trips the dedup rule, and its knock-on effects
    // (surplus point-to-point receive, non-conserved shuttle bytes) trip
    // the pairing and conservation rules too.
    let dup: Vec<_> = report
        .hazards
        .iter()
        .filter(|h| h.rule == Rule::DuplicateSuppression)
        .collect();
    assert_eq!(dup.len(), 1, "{report}");
    assert_eq!(dup[0].rank, Some(0));
    assert!(dup[0].detail.contains("1->0"), "{}", dup[0]);
    assert!(dup[0].detail.contains("2 receives"), "{}", dup[0]);
    assert!(
        report
            .hazards
            .iter()
            .any(|h| h.rule == Rule::ShuttleConservation),
        "{report}"
    );
}

#[test]
fn unacked_retransmit_fixture_is_flagged() {
    let report = analyze(&load("unacked_retransmit.dstrace.json"));
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.rule, Rule::RetransmitAccounting);
    assert_eq!(h.rank, Some(1));
    assert!(h.detail.contains("1->0"), "{h}");
    assert!(h.detail.contains("3 retransmit(s)"), "{h}");
}

#[test]
fn shed_request_served_fixture_is_flagged() {
    let report = analyze(&load("shed_request_served.dstrace.json"));
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.rule, Rule::SessionIsolation);
    assert_eq!(h.rank, Some(0));
    assert!(h.detail.contains("request 7"), "{h}");
    assert!(h.detail.contains("served anyway"), "{h}");
    // The legitimately admitted request balanced.
    assert_eq!(report.session_requests, 1);
}

#[test]
fn stale_cache_hit_fixture_is_flagged() {
    let report = analyze(&load("stale_cache_hit.dstrace.json"));
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.rule, Rule::CacheCoherence);
    assert_eq!(h.rank, Some(0));
    assert!(h.detail.contains("t4.2"), "{h}");
    assert!(h.detail.contains("no live entry"), "{h}");
}

#[test]
fn dsverify_flags_fixtures_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg(fixture("mismatched_collective.dstrace.json"))
        .arg(fixture("unmatched_write_begin.dstrace.json"))
        .arg(fixture("leaked_agg_shuttle.dstrace.json"))
        .arg(fixture("lost_redist_transfer.dstrace.json"))
        .arg(fixture("duplicate_shuttle_delivery.dstrace.json"))
        .arg(fixture("unacked_retransmit.dstrace.json"))
        .arg(fixture("shed_request_served.dstrace.json"))
        .arg(fixture("stale_cache_hit.dstrace.json"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("collective-matching"), "{stdout}");
    assert!(stdout.contains("async-pairing"), "{stdout}");
    assert!(stdout.contains("shuttle-conservation"), "{stdout}");
    assert!(stdout.contains("redist-conservation"), "{stdout}");
    assert!(stdout.contains("duplicate-suppression"), "{stdout}");
    assert!(stdout.contains("retransmit-accounting"), "{stdout}");
    assert!(stdout.contains("session-isolation"), "{stdout}");
    assert!(stdout.contains("cache-coherence"), "{stdout}");
}

#[test]
fn dsverify_usage_and_bad_input_exit_2() {
    let no_args = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .output()
        .unwrap();
    assert_eq!(no_args.status.code(), Some(2));

    let dir = std::env::temp_dir().join("dsverify-bad-input");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.dstrace.json");
    std::fs::write(&bad, "{\"format\": \"other\"}").unwrap();
    let parse_err = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(parse_err.status.code(), Some(2), "{parse_err:?}");
}

/// A real traced run, exported through the portable JSON format and
/// re-analyzed: the runtime's own protocol discipline must be clean.
#[test]
fn real_traced_run_round_trips_clean_through_dsverify() {
    let nprocs = 2;
    let sink = TraceSink::new(nprocs);
    let pfs = Pfs::in_memory(nprocs);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::functional(nprocs).traced(sink.clone()),
        move |ctx| {
            let layout = Layout::dense(8, ctx.nprocs(), DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u64).unwrap();
            let mut s = OStream::create(ctx, &p, &layout, "clean").unwrap();
            // One blocking and one split-collective record.
            s.insert_collection(&c).unwrap();
            s.write().unwrap();
            s.insert_collection(&c).unwrap();
            let pending = s.write_begin().unwrap();
            s.write_end(pending).unwrap();
            s.close().unwrap();
        },
    )
    .unwrap();
    let json = sink.take().to_events_json();

    let dir = std::env::temp_dir().join("dsverify-clean-run");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("clean.dstrace.json");
    std::fs::write(&path, &json).unwrap();

    let reparsed = Trace::from_events_json(&json).unwrap();
    let report = analyze(&reparsed);
    assert!(report.clean(), "{report}");
    assert!(report.async_pairs >= 1, "{report}");

    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

/// The aggregated (collective-buffering) runtime path, traced and
/// re-analyzed: real shuttle traffic is conserved, so the new rule stays
/// silent on a healthy run — the leak fixture above is discriminating.
#[test]
fn aggregated_traced_run_round_trips_clean_through_dsverify() {
    let nprocs = 4;
    let sink = TraceSink::new(nprocs);
    let pfs = Pfs::in_memory(nprocs);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::functional(nprocs)
            .traced(sink.clone())
            .with_collective(CollectiveConfig {
                aggregators: 2,
                stripe_align: true,
            }),
        move |ctx| {
            let layout = Layout::dense(16, ctx.nprocs(), DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u64).unwrap();
            let mut s = OStream::create(ctx, &p, &layout, "agg_clean").unwrap();
            s.insert_collection(&c).unwrap();
            s.write().unwrap();
            s.close().unwrap();
        },
    )
    .unwrap();
    let json = sink.take().to_events_json();
    let reparsed = Trace::from_events_json(&json).unwrap();
    assert!(
        reparsed
            .events
            .iter()
            .any(|e| matches!(e.kind, dstreams_trace::EventKind::AggShuttle { .. })),
        "the aggregated run never shipped a shuttle"
    );
    let report = analyze(&reparsed);
    assert!(report.clean(), "{report}");
}

/// A cross-distribution planned read, traced and re-analyzed: live
/// redistribution shuttle traffic conserves per pair, so the new rule
/// stays silent on a healthy run — the lost-transfer fixture above is
/// discriminating, not vacuous.
#[test]
fn cross_shape_read_round_trips_clean_through_dsverify() {
    let nprocs = 4;
    let sink = TraceSink::new(nprocs);
    let pfs = Pfs::in_memory(nprocs);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::functional(nprocs).traced(sink.clone()),
        move |ctx| {
            let wlayout = Layout::dense(24, ctx.nprocs(), DistKind::Block).unwrap();
            let c = Collection::new(ctx, wlayout.clone(), |g| g as u64).unwrap();
            let mut s = OStream::create(ctx, &p, &wlayout, "xshape").unwrap();
            s.insert_collection(&c).unwrap();
            s.write().unwrap();
            s.close().unwrap();

            let rlayout = Layout::dense(24, ctx.nprocs(), DistKind::Cyclic).unwrap();
            let mut g = Collection::new(ctx, rlayout.clone(), |_| 0u64).unwrap();
            let mut r = IStream::open(ctx, &p, &rlayout, "xshape").unwrap();
            r.read().unwrap();
            r.extract_collection(&mut g).unwrap();
            r.close().unwrap();
            for (gid, v) in g.iter() {
                assert_eq!(*v, gid as u64);
            }
        },
    )
    .unwrap();
    let json = sink.take().to_events_json();
    let reparsed = Trace::from_events_json(&json).unwrap();
    assert!(
        reparsed
            .events
            .iter()
            .any(|e| matches!(e.kind, dstreams_trace::EventKind::RedistShuttle { .. })),
        "the cross-distribution read never shuttled an element"
    );
    let report = analyze(&reparsed);
    assert!(report.clean(), "{report}");
}

/// A live multi-tenant service run, traced and re-analyzed: the session
/// ledger balances and every cache hit is live, so the two new rules
/// stay silent on a healthy run — the shed-served and stale-hit fixtures
/// above are discriminating, not vacuous.
#[test]
fn live_service_trace_round_trips_clean_through_dsverify() {
    use dstreams_pfs::DiskModel;
    use dstreams_serve::{run_service, OpMix, QosLevel, ServiceConfig, TenantProfile, TrafficSpec};

    let nprocs = 2;
    let sink = TraceSink::new(nprocs);
    let pfs = Pfs::in_memory(nprocs);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::functional(nprocs).traced(sink.clone()),
        move |ctx| {
            let cfg = ServiceConfig::for_model(&DiskModel::instant());
            let tenants = vec![
                TenantProfile {
                    tenant: 1,
                    class: QosLevel::Premium,
                    elements: 8,
                },
                TenantProfile {
                    tenant: 2,
                    class: QosLevel::BestEffort,
                    elements: 8,
                },
            ];
            let arrivals = dstreams_serve::traffic::generate(
                &TrafficSpec {
                    seed: 11,
                    sessions: 25,
                    ops_per_session: 4,
                    mean_session_gap_ns: 20_000,
                    mean_interarrival_ns: 20_000,
                    zipf_s: 1.0,
                    mix: OpMix::read_mostly(),
                },
                &tenants,
            );
            let report = run_service(ctx, &p, &cfg, &tenants, &arrivals).unwrap();
            assert_eq!(report.aborted, 0);
            assert!(report.cache.hits > 0, "warm reads must hit");
        },
    )
    .unwrap();
    let json = sink.take().to_events_json();
    let reparsed = Trace::from_events_json(&json).unwrap();
    assert!(
        reparsed
            .events
            .iter()
            .any(|e| matches!(e.kind, dstreams_trace::EventKind::SessionAdmit { .. })),
        "the service run never admitted a session"
    );
    let report = analyze(&reparsed);
    assert!(report.clean(), "{report}");
    assert!(report.session_requests > 0, "{report}");
    assert!(report.cache_hits_checked > 0, "{report}");

    let dir = std::env::temp_dir().join("dsverify-service-run");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("service.dstrace.json");
    std::fs::write(&path, &json).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn unordered_overlap_write_fixture_is_flagged() {
    let report = analyze(&load("unordered_overlap_write.dstrace.json"));
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.rule, Rule::HbIntervalRace);
    assert!(h.detail.contains("write/write race"), "{h}");
    assert!(h.detail.contains("[50, 100)"), "{h}");
    assert!(h.witness.is_some(), "{h}");
}

#[test]
fn hb_stale_cache_hit_fixture_is_flagged() {
    let report = analyze(&load("hb_stale_cache_hit.dstrace.json"));
    assert_eq!(report.hazards.len(), 1, "{report}");
    let h = &report.hazards[0];
    assert_eq!(h.rule, Rule::HbCoherence);
    assert_eq!(h.rank, Some(0));
    assert!(h.detail.contains("t1.0"), "{h}");
    assert!(h.witness.is_some(), "{h}");
}

#[test]
fn dsverify_explain_prints_witness_chain() {
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg("--explain")
        .arg(fixture("unordered_overlap_write.dstrace.json"))
        .arg(fixture("hb_stale_cache_hit.dstrace.json"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("hb-interval-race"), "{stdout}");
    assert!(stdout.contains("hb-coherence"), "{stdout}");
    assert!(
        stdout.contains("witness (incomparable vector clocks)"),
        "{stdout}"
    );
    // Both conflicting events are shown with their vector clocks.
    assert!(stdout.contains("clock ["), "{stdout}");
}

#[test]
fn dsverify_rules_subset_selects_rules() {
    // With only collective-matching selected, the race fixture is clean.
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg("--rules")
        .arg("collective-matching")
        .arg(fixture("unordered_overlap_write.dstrace.json"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // The race rule alone still flags it.
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg("--rules")
        .arg("hb-interval-race")
        .arg(fixture("unordered_overlap_write.dstrace.json"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    // Unknown rule names are a usage error listing the vocabulary.
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg("--rules")
        .arg("no-such-rule")
        .arg(fixture("unordered_overlap_write.dstrace.json"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown rule"), "{stderr}");
    assert!(stderr.contains("hb-interval-race"), "{stderr}");
}

#[test]
fn dsverify_empty_trace_exits_2_nothing_analyzed() {
    let dir = std::env::temp_dir().join("dsverify-empty-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("empty.dstrace.json");
    std::fs::write(
        &path,
        "{\"format\": \"dstrace\", \"version\": 1, \"nprocs\": 2, \"events\": []}",
    )
    .unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("nothing analyzed"), "{stderr}");
}

#[test]
fn dsverify_diff_identical_traces_exits_0() {
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg("--diff")
        .arg(fixture("diff_seed_a.dstrace.json"))
        .arg(fixture("diff_seed_a.dstrace.json"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("causally identical"), "{stdout}");
}

#[test]
fn dsverify_diff_seeded_divergence_pinpoints_origin() {
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg("--diff")
        .arg(fixture("diff_seed_a.dstrace.json"))
        .arg(fixture("diff_seed_b.dstrace.json"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The only divergent lane is rank 1's, at its second event (the
    // write whose byte count differs between the seeds).
    assert!(
        stdout.contains("first causally-divergent event: rank 1 at lane position 1"),
        "{stdout}"
    );
    // The causal frontier names rank 0's barrier — the last event the
    // origin depends on, provably inside the shared prefix.
    assert!(stdout.contains("causal frontier"), "{stdout}");
    assert!(stdout.contains("collective barrier"), "{stdout}");
}

#[test]
fn unsealed_tail_read_fixture_is_flagged() {
    let report = analyze(&load("unsealed_tail_read.dstrace.json"));
    let hits: Vec<_> = report
        .hazards
        .iter()
        .filter(|h| h.rule == Rule::UnsealedTailRead)
        .collect();
    assert_eq!(hits.len(), 1, "{report}");
    assert_eq!(hits[0].rank, Some(1));
    assert!(
        hits[0].detail.contains("no happens-before path"),
        "{report}"
    );
    assert!(hits[0].witness.is_some(), "{report}");
    assert_eq!(report.tail_reads_checked, 1);
}

#[test]
fn compacted_under_reader_fixture_is_flagged() {
    let report = analyze(&load("compacted_under_reader.dstrace.json"));
    let hits: Vec<_> = report
        .hazards
        .iter()
        .filter(|h| h.rule == Rule::CompactedUnderReader)
        .collect();
    assert_eq!(hits.len(), 1, "{report}");
    assert_eq!(hits[0].rank, Some(0));
    assert!(hits[0].detail.contains("reader 1"), "{report}");
    assert!(hits[0].witness.is_some(), "{report}");
    assert_eq!(report.compactions_checked, 1);
}

#[test]
fn dsverify_flags_streaming_fixtures_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg("--explain")
        .arg(fixture("unsealed_tail_read.dstrace.json"))
        .arg(fixture("compacted_under_reader.dstrace.json"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("unsealed-tail-read"), "{stdout}");
    assert!(stdout.contains("compacted-under-reader"), "{stdout}");
    // --explain prints the incomparable clocks of each witness pair.
    assert!(stdout.contains("witness"), "{stdout}");
}

/// A live append-stream run with a tailing reader and retention, traced
/// and re-analyzed: every tail read has a happens-before path from its
/// seal and every compact is behind all cursors, so the two streaming
/// rules stay silent on a healthy run — the fixtures above are
/// discriminating, not vacuous.
#[test]
fn live_streaming_trace_round_trips_clean_through_dsverify() {
    use dstreams_unbounded::{AppendOptions, AppendStream, TailReader};

    let nprocs = 2;
    let sink = TraceSink::new(nprocs);
    let pfs = Pfs::in_memory(nprocs);
    let p = pfs.clone();
    Machine::run(
        MachineConfig::functional(nprocs).traced(sink.clone()),
        move |ctx| {
            let lo = Layout::dense(8, ctx.nprocs(), DistKind::Block).unwrap();
            let opts = AppendOptions {
                retention_bytes: Some(1),
                ..Default::default()
            };
            let mut s = AppendStream::create_with(ctx, &p, &lo, "live", opts).unwrap();
            let mut r = TailReader::attach(ctx, &p, &lo, "live").unwrap();
            for seg in 0..3u64 {
                let c = Collection::new(ctx, lo.clone(), move |g| seg + g as u64).unwrap();
                s.insert_collection(&c).unwrap();
                s.append().unwrap();
                s.seal().unwrap();
                assert!(r
                    .poll(|is, _| {
                        let mut g = Collection::new(ctx, lo.clone(), |_| 0u64).unwrap();
                        is.read()?;
                        is.extract_collection(&mut g)?;
                        Ok(())
                    })
                    .unwrap());
            }
            r.detach().unwrap();
            s.close().unwrap();
        },
    )
    .unwrap();
    let json = sink.take().to_events_json();

    let reparsed = Trace::from_events_json(&json).unwrap();
    let report = analyze(&reparsed);
    assert!(report.clean(), "{report}");
    assert!(report.tail_reads_checked > 0, "{report}");
    assert!(report.compactions_checked > 0, "{report}");

    let dir = std::env::temp_dir().join("dsverify-streaming-run");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("streaming.dstrace.json");
    std::fs::write(&path, &json).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_dsverify"))
        .arg(&path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}
