//! Error type for the collections layer.

use std::fmt;

use dstreams_machine::MachineError;

use crate::layout::LayoutDescriptor;

/// Errors raised by distribution / collection operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectionError {
    /// An element index was outside the collection.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Collection size.
        len: usize,
    },
    /// A template index produced by an alignment fell outside the
    /// distribution's template.
    TemplateOverflow {
        /// Offending template cell.
        template_index: usize,
        /// Template size.
        template_len: usize,
    },
    /// An element was accessed on a rank that does not own it.
    NotLocal {
        /// Global element index.
        index: usize,
        /// Owning rank.
        owner: usize,
        /// Accessing rank.
        rank: usize,
    },
    /// A distribution was constructed with invalid parameters.
    BadDistribution(String),
    /// An operation does not support the collection's placement. Carries
    /// the offending layout (as it would appear in a file header) so
    /// callers can report or switch on the exact shape that was rejected.
    UnsupportedPlacement {
        /// The rejected layout.
        layout: LayoutDescriptor,
        /// The operation that rejected it.
        operation: &'static str,
        /// What the operation requires of a placement.
        requirement: String,
    },
    /// Two collections expected to be aligned are not.
    AlignmentMismatch(String),
    /// Machine-level failure inside a collection collective.
    Machine(MachineError),
}

impl fmt::Display for CollectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectionError::IndexOutOfRange { index, len } => {
                write!(
                    f,
                    "element index {index} out of range for collection of {len}"
                )
            }
            CollectionError::TemplateOverflow {
                template_index,
                template_len,
            } => write!(
                f,
                "alignment maps to template cell {template_index}, template has {template_len}"
            ),
            CollectionError::NotLocal { index, owner, rank } => write!(
                f,
                "element {index} is owned by rank {owner}, accessed from rank {rank}"
            ),
            CollectionError::BadDistribution(msg) => write!(f, "bad distribution: {msg}"),
            CollectionError::UnsupportedPlacement {
                layout,
                operation,
                requirement,
            } => write!(
                f,
                "{operation} does not support this placement ({requirement}): \
                 dist code {} param {} over {} ranks, {} elements",
                layout.dist_code, layout.dist_param, layout.nprocs, layout.n_elements
            ),
            CollectionError::AlignmentMismatch(msg) => write!(f, "alignment mismatch: {msg}"),
            CollectionError::Machine(e) => write!(f, "machine error in collection op: {e}"),
        }
    }
}

impl std::error::Error for CollectionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CollectionError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for CollectionError {
    fn from(e: MachineError) -> Self {
        CollectionError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CollectionError::NotLocal {
            index: 5,
            owner: 2,
            rank: 0,
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains('2') && s.contains('0'));
    }
}
