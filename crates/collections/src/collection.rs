//! Collections: distributed arrays of objects, the pC++ data structure on
//! which d/streams operate.
//!
//! A `Collection<T>` is SPMD state: every rank holds the elements its
//! layout assigns to it, in increasing global-index order. "Object
//! parallelism" — the concurrent application of a function to every
//! element — is expressed with [`Collection::apply`]; the ranks genuinely
//! run in parallel because the machine runs one thread per rank.

use dstreams_machine::wire::{frame_blocks, unframe_blocks};
use dstreams_machine::{NodeCtx, Wire};

use crate::error::CollectionError;
use crate::layout::Layout;

/// A distributed array of objects of type `T` (one rank's view).
#[derive(Debug)]
pub struct Collection<T> {
    layout: Layout,
    rank: usize,
    /// Global indices of local elements, in increasing order.
    global_ids: Vec<usize>,
    /// Local elements, parallel to `global_ids`.
    local: Vec<T>,
}

impl<T> Collection<T> {
    /// Build this rank's part of a collection, initializing each local
    /// element from its global index.
    pub fn new(
        ctx: &NodeCtx,
        layout: Layout,
        mut init: impl FnMut(usize) -> T,
    ) -> Result<Self, CollectionError> {
        if layout.nprocs() != ctx.nprocs() {
            return Err(CollectionError::BadDistribution(format!(
                "layout built for {} procs, machine has {}",
                layout.nprocs(),
                ctx.nprocs()
            )));
        }
        let global_ids = layout.local_elements(ctx.rank());
        let local = global_ids.iter().map(|&g| init(g)).collect();
        Ok(Collection {
            layout,
            rank: ctx.rank(),
            global_ids,
            local,
        })
    }

    /// The collection's layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Total number of elements across all ranks.
    pub fn len(&self) -> usize {
        self.layout.len()
    }

    /// Whether the collection has no elements at all.
    pub fn is_empty(&self) -> bool {
        self.layout.is_empty()
    }

    /// Number of elements on this rank.
    pub fn local_len(&self) -> usize {
        self.local.len()
    }

    /// Global indices of this rank's elements, in storage order.
    pub fn global_ids(&self) -> &[usize] {
        &self.global_ids
    }

    /// Immutable view of the local elements, in storage order.
    pub fn local(&self) -> &[T] {
        &self.local
    }

    /// Mutable view of the local elements, in storage order.
    pub fn local_mut(&mut self) -> &mut [T] {
        &mut self.local
    }

    /// Iterate `(global_index, &element)` over local elements.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.global_ids.iter().copied().zip(self.local.iter())
    }

    /// Iterate `(global_index, &mut element)` over local elements.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.global_ids.iter().copied().zip(self.local.iter_mut())
    }

    /// Reference to the element with global index `i`, if local.
    pub fn get(&self, i: usize) -> Result<&T, CollectionError> {
        let slot = self.slot_of(i)?;
        Ok(&self.local[slot])
    }

    /// Mutable reference to the element with global index `i`, if local.
    pub fn get_mut(&mut self, i: usize) -> Result<&mut T, CollectionError> {
        let slot = self.slot_of(i)?;
        Ok(&mut self.local[slot])
    }

    fn slot_of(&self, i: usize) -> Result<usize, CollectionError> {
        if i >= self.layout.len() {
            return Err(CollectionError::IndexOutOfRange {
                index: i,
                len: self.layout.len(),
            });
        }
        self.global_ids
            .binary_search(&i)
            .map_err(|_| CollectionError::NotLocal {
                index: i,
                owner: self.layout.owner(i).expect("checked above"),
                rank: self.rank,
            })
    }

    /// Object-parallel application: run `f` on every local element. With
    /// all ranks calling this, every element of the distributed array is
    /// visited exactly once, concurrently across ranks — pC++'s
    /// `collection.memberFunction()` idiom.
    pub fn apply(&mut self, mut f: impl FnMut(&mut T)) {
        for e in &mut self.local {
            f(e);
        }
    }

    /// Like [`Collection::apply`], with the global index supplied.
    pub fn apply_indexed(&mut self, mut f: impl FnMut(usize, &mut T)) {
        for (g, e) in self.global_ids.iter().copied().zip(self.local.iter_mut()) {
            f(g, e);
        }
    }

    /// Reduce a per-element projection across the entire distributed
    /// collection; the result is delivered to every rank.
    pub fn reduce<U, P, O>(
        &self,
        ctx: &NodeCtx,
        identity: U,
        project: P,
        op: O,
    ) -> Result<U, CollectionError>
    where
        U: Wire + Clone,
        P: Fn(&T) -> U,
        O: Fn(U, U) -> U + Copy,
    {
        let local = self.local.iter().map(&project).fold(identity, &op);
        Ok(ctx.all_reduce(local, op)?)
    }

    /// Collective remote element access — pC++'s global element name
    /// space: every rank asks for a set of element indices (local or
    /// remote) and receives their serialized images. Owners serve
    /// requests through one all-to-all exchange; every rank must call
    /// this, even with an empty request list.
    ///
    /// Out-of-range indices error *before* any communication; to keep the
    /// ranks' collectives aligned, validate indices beforehand (or accept
    /// that an error on one rank aborts the whole SPMD phase).
    ///
    /// Returns the requested elements' bytes in request order.
    pub fn fetch_all(
        &self,
        ctx: &NodeCtx,
        requests: &[usize],
        serialize: impl Fn(&T) -> Vec<u8>,
    ) -> Result<Vec<Vec<u8>>, CollectionError> {
        // Phase 1: route requests to owners.
        let mut want: Vec<Vec<Vec<u8>>> = vec![Vec::new(); ctx.nprocs()];
        for &gid in requests {
            let owner = self.layout.owner(gid)?;
            want[owner].push((gid as u64).to_le_bytes().to_vec());
        }
        let framed: Vec<Vec<u8>> = want.iter().map(|w| frame_blocks(w)).collect();
        let incoming = ctx.all_to_all(framed)?;

        // Phase 2: serve and route responses back.
        let mut replies: Vec<Vec<Vec<u8>>> = vec![Vec::new(); ctx.nprocs()];
        for (from, buf) in incoming.iter().enumerate() {
            let asks = unframe_blocks(buf).ok_or_else(|| {
                CollectionError::BadDistribution("fetch_all: malformed request frame".into())
            })?;
            for ask in asks {
                let gid = u64::from_le_bytes(ask.as_slice().try_into().map_err(|_| {
                    CollectionError::BadDistribution("fetch_all: bad request id".into())
                })?) as usize;
                let elem = self.get(gid)?;
                replies[from].push((gid as u64).to_le_bytes().to_vec());
                replies[from].push(serialize(elem));
            }
        }
        let framed: Vec<Vec<u8>> = replies.iter().map(|r| frame_blocks(r)).collect();
        let answers = ctx.all_to_all(framed)?;

        // Phase 3: match responses to this rank's request order.
        let mut by_gid: std::collections::HashMap<usize, Vec<u8>> =
            std::collections::HashMap::new();
        for buf in &answers {
            let blocks = unframe_blocks(buf).ok_or_else(|| {
                CollectionError::BadDistribution("fetch_all: malformed reply frame".into())
            })?;
            for pair in blocks.chunks(2) {
                let [gid, data] = pair else {
                    return Err(CollectionError::BadDistribution(
                        "fetch_all: odd reply frame".into(),
                    ));
                };
                let g = u64::from_le_bytes(gid.as_slice().try_into().map_err(|_| {
                    CollectionError::BadDistribution("fetch_all: bad reply id".into())
                })?) as usize;
                by_gid.insert(g, data.clone());
            }
        }
        requests
            .iter()
            .map(|gid| {
                by_gid.get(gid).cloned().ok_or({
                    CollectionError::IndexOutOfRange {
                        index: *gid,
                        len: self.layout.len(),
                    }
                })
            })
            .collect()
    }

    /// Redistribute the collection in memory to a new layout (possibly a
    /// different distribution pattern; the machine size is fixed within a
    /// run). Elements are serialized, routed to their new owners in one
    /// all-to-all, and rebuilt — the in-memory analogue of writing with
    /// one layout and `read`ing with another. Collective.
    pub fn redistribute(
        self,
        ctx: &NodeCtx,
        new_layout: Layout,
        serialize: impl Fn(&T) -> Vec<u8>,
        deserialize: impl Fn(&[u8]) -> T,
    ) -> Result<Collection<T>, CollectionError> {
        if new_layout.nprocs() != ctx.nprocs() {
            return Err(CollectionError::BadDistribution(format!(
                "new layout built for {} procs, machine has {}",
                new_layout.nprocs(),
                ctx.nprocs()
            )));
        }
        if new_layout.len() != self.layout.len() {
            return Err(CollectionError::BadDistribution(format!(
                "cannot redistribute {} elements into a layout of {}",
                self.layout.len(),
                new_layout.len()
            )));
        }
        // Route each element to its new owner.
        let mut parts: Vec<Vec<Vec<u8>>> = vec![Vec::new(); ctx.nprocs()];
        for (gid, e) in self.iter() {
            let owner = new_layout.owner(gid)?;
            parts[owner].push((gid as u64).to_le_bytes().to_vec());
            parts[owner].push(serialize(e));
        }
        let framed: Vec<Vec<u8>> = parts.iter().map(|p| frame_blocks(p)).collect();
        ctx.charge_memcpy(framed.iter().map(|f| f.len()).sum());
        let received = ctx.all_to_all(framed)?;

        // Rebuild local storage in the new layout's slot order.
        let global_ids = new_layout.local_elements(ctx.rank());
        let mut slots: Vec<Option<T>> = (0..global_ids.len()).map(|_| None).collect();
        for buf in received {
            let blocks = unframe_blocks(&buf).ok_or_else(|| {
                CollectionError::BadDistribution("redistribute: malformed frame".into())
            })?;
            for pair in blocks.chunks(2) {
                let [gid, data] = pair else {
                    return Err(CollectionError::BadDistribution(
                        "redistribute: odd frame".into(),
                    ));
                };
                let g =
                    u64::from_le_bytes(gid.as_slice().try_into().map_err(|_| {
                        CollectionError::BadDistribution("redistribute: bad id".into())
                    })?) as usize;
                let slot = global_ids
                    .binary_search(&g)
                    .map_err(|_| CollectionError::NotLocal {
                        index: g,
                        owner: new_layout.owner(g).unwrap_or(usize::MAX),
                        rank: ctx.rank(),
                    })?;
                slots[slot] = Some(deserialize(data));
            }
        }
        let local: Vec<T> = slots
            .into_iter()
            .enumerate()
            .map(|(slot, v)| {
                v.ok_or(CollectionError::IndexOutOfRange {
                    index: global_ids[slot],
                    len: new_layout.len(),
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(Collection {
            layout: new_layout,
            rank: ctx.rank(),
            global_ids,
            local,
        })
    }

    /// Gather a serialized image of every element to rank 0, ordered by
    /// global index. Returns `Some` on rank 0 only. Intended for the
    /// debugging workflow the paper motivates: comparing a parallel run's
    /// data against a sequential reference.
    pub fn gather_to_root(
        &self,
        ctx: &NodeCtx,
        serialize: impl Fn(&T) -> Vec<u8>,
    ) -> Result<Option<Vec<Vec<u8>>>, CollectionError> {
        // Frame (global_id, bytes) pairs per rank, then reorder at root.
        let mut blocks = Vec::with_capacity(self.local.len() * 2);
        for (g, e) in self.iter() {
            blocks.push((g as u64).to_le_bytes().to_vec());
            blocks.push(serialize(e));
        }
        let framed = frame_blocks(&blocks);
        let gathered = ctx.gather(0, framed)?;
        match gathered {
            None => Ok(None),
            Some(per_rank) => {
                let mut out: Vec<Option<Vec<u8>>> = vec![None; self.layout.len()];
                for buf in per_rank {
                    let blocks = unframe_blocks(&buf).ok_or_else(|| {
                        CollectionError::BadDistribution("gather_to_root: malformed frame".into())
                    })?;
                    for pair in blocks.chunks(2) {
                        let [gid, data] = pair else {
                            return Err(CollectionError::BadDistribution(
                                "gather_to_root: odd frame".into(),
                            ));
                        };
                        let g = u64::from_le_bytes(gid.as_slice().try_into().map_err(|_| {
                            CollectionError::BadDistribution("gather_to_root: bad id".into())
                        })?) as usize;
                        out[g] = Some(data.clone());
                    }
                }
                out.into_iter()
                    .enumerate()
                    .map(|(g, v)| {
                        v.ok_or(CollectionError::IndexOutOfRange {
                            index: g,
                            len: self.layout.len(),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(Some)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistKind;
    use dstreams_machine::{Machine, MachineConfig};

    fn layout(n: usize, np: usize, kind: DistKind) -> Layout {
        Layout::dense(n, np, kind).unwrap()
    }

    #[test]
    fn construction_covers_every_element_once() {
        let counts = Machine::run(MachineConfig::functional(3), |ctx| {
            let c = Collection::new(ctx, layout(10, 3, DistKind::Cyclic), |g| g * 2).unwrap();
            for (g, v) in c.iter() {
                assert_eq!(*v, g * 2);
            }
            c.local_len()
        })
        .unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 10);
    }

    #[test]
    fn layout_machine_mismatch_is_rejected() {
        Machine::run(MachineConfig::functional(2), |ctx| {
            let err = Collection::new(ctx, layout(10, 3, DistKind::Block), |_| 0u8).unwrap_err();
            assert!(matches!(err, CollectionError::BadDistribution(_)));
        })
        .unwrap();
    }

    #[test]
    fn get_distinguishes_local_remote_and_out_of_range() {
        Machine::run(MachineConfig::functional(2), |ctx| {
            let c = Collection::new(ctx, layout(4, 2, DistKind::Block), |g| g).unwrap();
            if ctx.rank() == 0 {
                assert_eq!(*c.get(1).unwrap(), 1);
                assert!(matches!(
                    c.get(3),
                    Err(CollectionError::NotLocal {
                        index: 3,
                        owner: 1,
                        rank: 0
                    })
                ));
            }
            assert!(matches!(
                c.get(99),
                Err(CollectionError::IndexOutOfRange { .. })
            ));
        })
        .unwrap();
    }

    #[test]
    fn apply_visits_each_local_element() {
        Machine::run(MachineConfig::functional(4), |ctx| {
            let mut c = Collection::new(ctx, layout(13, 4, DistKind::Block), |g| g as i64).unwrap();
            c.apply(|v| *v += 100);
            c.apply_indexed(|g, v| assert_eq!(*v, g as i64 + 100));
        })
        .unwrap();
    }

    #[test]
    fn reduce_spans_the_whole_collection() {
        let sums = Machine::run(MachineConfig::functional(3), |ctx| {
            let c = Collection::new(ctx, layout(10, 3, DistKind::Cyclic), |g| g as u64).unwrap();
            c.reduce(ctx, 0u64, |&v| v, |a, b| a + b).unwrap()
        })
        .unwrap();
        assert_eq!(sums, vec![45, 45, 45]);
    }

    #[test]
    fn gather_to_root_orders_by_global_index() {
        let out = Machine::run(MachineConfig::functional(3), |ctx| {
            let c = Collection::new(ctx, layout(7, 3, DistKind::Cyclic), |g| g as u8 + 10).unwrap();
            c.gather_to_root(ctx, |v| vec![*v]).unwrap()
        })
        .unwrap();
        let root = out[0].as_ref().unwrap();
        assert_eq!(root.len(), 7);
        for (g, bytes) in root.iter().enumerate() {
            assert_eq!(bytes, &vec![g as u8 + 10]);
        }
        assert!(out[1].is_none() && out[2].is_none());
    }

    #[test]
    fn redistribute_moves_every_element_to_its_new_owner() {
        Machine::run(MachineConfig::functional(4), |ctx| {
            let c = Collection::new(ctx, layout(13, 4, DistKind::Block), |g| {
                vec![g as u8; g % 3 + 1]
            })
            .unwrap();
            let new = layout(13, 4, DistKind::Cyclic);
            let c2 = c
                .redistribute(ctx, new.clone(), |v| v.clone(), |b| b.to_vec())
                .unwrap();
            assert_eq!(c2.layout(), &new);
            for (gid, v) in c2.iter() {
                assert_eq!(v, &vec![gid as u8; gid % 3 + 1]);
            }
        })
        .unwrap();
    }

    #[test]
    fn redistribute_rejects_mismatched_shapes() {
        Machine::run(MachineConfig::functional(2), |ctx| {
            let c = Collection::new(ctx, layout(6, 2, DistKind::Block), |g| g as u64).unwrap();
            let err = c
                .redistribute(
                    ctx,
                    layout(7, 2, DistKind::Block),
                    |v| v.to_le_bytes().to_vec(),
                    |b| u64::from_le_bytes(b.try_into().unwrap()),
                )
                .unwrap_err();
            assert!(matches!(err, CollectionError::BadDistribution(_)));
        })
        .unwrap();
    }

    #[test]
    fn fetch_all_serves_local_and_remote_elements() {
        Machine::run(MachineConfig::functional(3), |ctx| {
            let c =
                Collection::new(ctx, layout(9, 3, DistKind::Cyclic), |g| g as u64 * 11).unwrap();
            // Every rank asks for a different mix, including duplicates.
            let requests: Vec<usize> = vec![0, 8, ctx.rank(), 8];
            let got = c
                .fetch_all(ctx, &requests, |v| v.to_le_bytes().to_vec())
                .unwrap();
            assert_eq!(got.len(), 4);
            for (ask, bytes) in requests.iter().zip(&got) {
                let v = u64::from_le_bytes(bytes.as_slice().try_into().unwrap());
                assert_eq!(v, *ask as u64 * 11);
            }
        })
        .unwrap();
    }

    #[test]
    fn fetch_all_with_empty_requests_is_collective_safe() {
        Machine::run(MachineConfig::functional(2), |ctx| {
            let c = Collection::new(ctx, layout(4, 2, DistKind::Block), |g| g as u8).unwrap();
            // Rank 0 asks for everything; rank 1 asks for nothing.
            let requests: Vec<usize> = if ctx.is_root() {
                vec![3, 2, 1, 0]
            } else {
                vec![]
            };
            let got = c.fetch_all(ctx, &requests, |v| vec![*v]).unwrap();
            if ctx.is_root() {
                assert_eq!(got, vec![vec![3], vec![2], vec![1], vec![0]]);
            } else {
                assert!(got.is_empty());
            }
        })
        .unwrap();
    }

    #[test]
    fn fetch_all_rejects_out_of_range_requests() {
        Machine::run(MachineConfig::functional(2), |ctx| {
            let c = Collection::new(ctx, layout(4, 2, DistKind::Block), |g| g as u8).unwrap();
            // Keep the error rank-consistent: both ranks ask for the bad id.
            assert!(c.fetch_all(ctx, &[9], |v| vec![*v]).is_err());
        })
        .unwrap();
    }

    #[test]
    fn variable_sized_elements_are_fine() {
        // The whole point of the paper: elements may differ in size.
        Machine::run(MachineConfig::functional(2), |ctx| {
            let mut c =
                Collection::new(ctx, layout(6, 2, DistKind::Block), |g| vec![g as u8; g]).unwrap();
            c.apply_indexed(|g, v| assert_eq!(v.len(), g));
            let total: u64 = c
                .reduce(ctx, 0u64, |v| v.len() as u64, |a, b| a + b)
                .unwrap();
            assert_eq!(total, (0..6).sum::<usize>() as u64);
        })
        .unwrap();
    }
}
