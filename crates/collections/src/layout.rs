//! A layout = distribution + alignment + element count: everything needed
//! to know which rank owns which element of a collection, and everything a
//! d/stream must record in its self-describing file header.

use crate::alignment::Alignment;
use crate::distribution::{DistKind, Distribution};
use crate::error::CollectionError;

/// Complete placement description of a collection's elements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layout {
    n_elements: usize,
    dist: Distribution,
    align: Alignment,
}

impl Layout {
    /// Build a layout of `n_elements` over `dist` via `align`; checks the
    /// alignment stays inside the template.
    pub fn new(
        n_elements: usize,
        dist: Distribution,
        align: Alignment,
    ) -> Result<Self, CollectionError> {
        if let Some(max) = align.max_cell(n_elements) {
            if max >= dist.len() {
                return Err(CollectionError::TemplateOverflow {
                    template_index: max,
                    template_len: dist.len(),
                });
            }
        }
        Ok(Layout {
            n_elements,
            dist,
            align,
        })
    }

    /// Identity-aligned layout where the template size equals the element
    /// count — the common case (the paper's Figure 3 example).
    pub fn dense(
        n_elements: usize,
        nprocs: usize,
        kind: DistKind,
    ) -> Result<Self, CollectionError> {
        Layout::new(
            n_elements,
            Distribution::new(n_elements, nprocs, kind)?,
            Alignment::identity(),
        )
    }

    /// Number of elements in the collection.
    pub fn len(&self) -> usize {
        self.n_elements
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.n_elements == 0
    }

    /// Machine size the layout was built for.
    pub fn nprocs(&self) -> usize {
        self.dist.nprocs()
    }

    /// The underlying distribution.
    pub fn distribution(&self) -> &Distribution {
        &self.dist
    }

    /// The alignment onto the template.
    pub fn alignment(&self) -> Alignment {
        self.align
    }

    /// Owning rank of element `i`.
    pub fn owner(&self, i: usize) -> Result<usize, CollectionError> {
        self.check(i)?;
        self.dist.owner(self.align.template_cell(i))
    }

    /// Whether element `i` lives on `rank`.
    pub fn is_local(&self, i: usize, rank: usize) -> Result<bool, CollectionError> {
        Ok(self.owner(i)? == rank)
    }

    /// Global element indices owned by `rank`, in increasing order — this
    /// is also the order of the rank's local storage and of the rank's
    /// block in a d/stream file.
    pub fn local_elements(&self, rank: usize) -> Vec<usize> {
        (0..self.n_elements)
            .filter(|&i| self.owner(i).expect("i < len") == rank)
            .collect()
    }

    /// Number of elements owned by `rank`.
    pub fn local_count(&self, rank: usize) -> usize {
        if self.align == Alignment::identity() && self.dist.len() == self.n_elements {
            // Dense case: delegate to the O(1) distribution counts.
            self.dist.local_count(rank)
        } else {
            self.local_elements(rank).len()
        }
    }

    /// Local slot (position within the owner's storage) of element `i`.
    pub fn local_slot(&self, i: usize) -> Result<usize, CollectionError> {
        Ok(self.place(i)?.1)
    }

    /// Closed-form placement of element `i`: `(owning rank, local slot)`.
    /// O(1) for dense identity-aligned layouts (the streaming common
    /// case); falls back to a scan for sparse alignments, whose local
    /// slots are not a closed-form function of the template.
    pub fn place(&self, i: usize) -> Result<(usize, usize), CollectionError> {
        self.check(i)?;
        if self.align == Alignment::identity() && self.dist.len() == self.n_elements {
            return self.dist.place(i);
        }
        let owner = self.owner(i)?;
        let slot = self
            .local_elements(owner)
            .iter()
            .position(|&e| e == i)
            .expect("element is in its owner's list");
        Ok((owner, slot))
    }

    fn check(&self, i: usize) -> Result<(), CollectionError> {
        if i >= self.n_elements {
            return Err(CollectionError::IndexOutOfRange {
                index: i,
                len: self.n_elements,
            });
        }
        Ok(())
    }

    /// Plain-data descriptor for serialization in d/stream file headers.
    pub fn descriptor(&self) -> LayoutDescriptor {
        LayoutDescriptor {
            n_elements: self.n_elements as u64,
            template_len: self.dist.len() as u64,
            nprocs: self.dist.nprocs() as u32,
            dist_code: self.dist.kind().code(),
            dist_param: self.dist.kind().param(),
            align_stride: self.align.stride as u64,
            align_offset: self.align.offset as u64,
        }
    }

    /// Rebuild a layout from a descriptor (e.g. read from a file header).
    pub fn from_descriptor(d: &LayoutDescriptor) -> Result<Layout, CollectionError> {
        let kind = DistKind::from_code(d.dist_code, d.dist_param).ok_or_else(|| {
            CollectionError::BadDistribution(format!(
                "unknown distribution code {} / param {}",
                d.dist_code, d.dist_param
            ))
        })?;
        let dist = Distribution::new(d.template_len as usize, d.nprocs as usize, kind)?;
        let align = Alignment::affine(d.align_stride as usize, d.align_offset as usize)?;
        Layout::new(d.n_elements as usize, dist, align)
    }

    /// The same placement re-expressed for a machine of `nprocs` ranks —
    /// used when a file written on P processors is read on Q (paper §4.1:
    /// "regardless of differences in the number of processors and
    /// distribution of the reading and writing arrays").
    pub fn with_nprocs(&self, nprocs: usize) -> Result<Layout, CollectionError> {
        Layout::new(
            self.n_elements,
            Distribution::new(self.dist.len(), nprocs, self.dist.kind())?,
            self.align,
        )
    }
}

/// Fixed-width, plain-data image of a [`Layout`] for file headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutDescriptor {
    /// Element count.
    pub n_elements: u64,
    /// Template length.
    pub template_len: u64,
    /// Machine size at write time.
    pub nprocs: u32,
    /// Distribution pattern code.
    pub dist_code: u32,
    /// Distribution parameter (block size for BLOCK-CYCLIC).
    pub dist_param: u64,
    /// Alignment stride.
    pub align_stride: u64,
    /// Alignment offset.
    pub align_offset: u64,
}

impl LayoutDescriptor {
    /// Serialized size in bytes.
    pub const WIRE_LEN: usize = 8 + 8 + 4 + 4 + 8 + 8 + 8;

    /// Encode as little-endian bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(Self::WIRE_LEN);
        v.extend_from_slice(&self.n_elements.to_le_bytes());
        v.extend_from_slice(&self.template_len.to_le_bytes());
        v.extend_from_slice(&self.nprocs.to_le_bytes());
        v.extend_from_slice(&self.dist_code.to_le_bytes());
        v.extend_from_slice(&self.dist_param.to_le_bytes());
        v.extend_from_slice(&self.align_stride.to_le_bytes());
        v.extend_from_slice(&self.align_offset.to_le_bytes());
        v
    }

    /// Decode from bytes produced by [`LayoutDescriptor::encode`].
    pub fn decode(b: &[u8]) -> Option<LayoutDescriptor> {
        if b.len() != Self::WIRE_LEN {
            return None;
        }
        let u64_at = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().unwrap());
        let u32_at = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().unwrap());
        Some(LayoutDescriptor {
            n_elements: u64_at(0),
            template_len: u64_at(8),
            nprocs: u32_at(16),
            dist_code: u32_at(20),
            dist_param: u64_at(24),
            align_stride: u64_at(32),
            align_offset: u64_at(40),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_layout_partitions_all_elements() {
        for kind in [DistKind::Block, DistKind::Cyclic, DistKind::BlockCyclic(3)] {
            let l = Layout::dense(13, 4, kind).unwrap();
            let mut seen = [false; 13];
            for r in 0..4 {
                for e in l.local_elements(r) {
                    assert!(!seen[e], "element {e} owned twice");
                    seen[e] = true;
                    assert_eq!(l.owner(e).unwrap(), r);
                }
                assert_eq!(l.local_count(r), l.local_elements(r).len());
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn aligned_layout_respects_the_affine_map() {
        // 5 elements at template cells 1, 3, 5, 7, 9 of a 10-cell CYCLIC
        // template over 2 procs: all odd cells live on rank 1.
        let dist = Distribution::new(10, 2, DistKind::Cyclic).unwrap();
        let align = Alignment::affine(2, 1).unwrap();
        let l = Layout::new(5, dist, align).unwrap();
        assert_eq!(l.local_count(0), 0);
        assert_eq!(l.local_count(1), 5);
        assert_eq!(l.local_elements(1), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn alignment_overflow_is_rejected() {
        let dist = Distribution::new(10, 2, DistKind::Block).unwrap();
        let align = Alignment::affine(3, 0).unwrap();
        // Element 4 maps to cell 12 > 9.
        assert!(matches!(
            Layout::new(5, dist, align),
            Err(CollectionError::TemplateOverflow { .. })
        ));
    }

    #[test]
    fn local_slot_matches_position_in_local_elements() {
        let l = Layout::dense(11, 3, DistKind::Cyclic).unwrap();
        for r in 0..3 {
            for (slot, e) in l.local_elements(r).into_iter().enumerate() {
                assert_eq!(l.local_slot(e).unwrap(), slot);
            }
        }
    }

    #[test]
    fn descriptor_roundtrips() {
        let dist = Distribution::new(20, 4, DistKind::BlockCyclic(3)).unwrap();
        let align = Alignment::affine(2, 1).unwrap();
        let l = Layout::new(9, dist, align).unwrap();
        let d = l.descriptor();
        let bytes = d.encode();
        assert_eq!(bytes.len(), LayoutDescriptor::WIRE_LEN);
        let d2 = LayoutDescriptor::decode(&bytes).unwrap();
        assert_eq!(d, d2);
        let l2 = Layout::from_descriptor(&d2).unwrap();
        assert_eq!(l, l2);
    }

    #[test]
    fn decode_rejects_wrong_length() {
        assert!(LayoutDescriptor::decode(&[0u8; 10]).is_none());
    }

    #[test]
    fn with_nprocs_redistributes_the_same_elements() {
        let l = Layout::dense(16, 4, DistKind::Block).unwrap();
        let l2 = l.with_nprocs(2).unwrap();
        assert_eq!(l2.len(), 16);
        assert_eq!(l2.local_count(0), 8);
        assert_eq!(l2.local_count(1), 8);
    }

    #[test]
    fn out_of_range_element_is_rejected() {
        let l = Layout::dense(4, 2, DistKind::Block).unwrap();
        assert!(l.owner(4).is_err());
        assert!(l.local_slot(9).is_err());
    }
}
