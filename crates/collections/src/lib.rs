//! # dstreams-collections — the pC++ object-parallel layer
//!
//! pC++ extends C++ with *collections*: distributed arrays of arbitrary
//! objects, with HPF-style `Distribution` and `Align` placement, over which
//! functions are applied concurrently ("object parallelism"). This crate
//! reproduces the part of that runtime the I/O library depends on:
//!
//! * [`Distribution`] — BLOCK / CYCLIC / BLOCK-CYCLIC placement of a
//!   template over processors, with owner and local-index arithmetic;
//! * [`Alignment`] — affine alignment of collection indices onto the
//!   template (`ALIGN(dummy[i], d[stride*i + offset])`);
//! * [`Layout`] — distribution + alignment + length, including the
//!   [`LayoutDescriptor`] image stored in d/stream file headers;
//! * [`Collection`] — one rank's local elements plus object-parallel
//!   `apply`, reductions, and a gather-to-root debugging aid.
//!
//! Elements may be of *variable size* (e.g. particle lists of differing
//! lengths) — the situation pC++/streams was designed for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod collection;
pub mod distribution;
pub mod error;
pub mod grid;
pub mod layout;

pub use alignment::Alignment;
pub use collection::Collection;
pub use distribution::{
    composed_local_count, composed_place, Axis, Composed2d, DistKind, Distribution,
};
pub use error::CollectionError;
pub use grid::{Grid2d, GridRow, RowHalo, RunHalo};
pub use layout::{Layout, LayoutDescriptor};
