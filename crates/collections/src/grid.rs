//! Distributed 2-D grids over collections.
//!
//! The paper's introduction motivates d/streams with "adaptive parallel
//! applications using dynamic distributed data structures (e.g.
//! distributed grids of variable density)". In pC++ such a grid is built
//! *over the distributed array base*: a 1-D collection whose elements are
//! grid rows (possibly of varying density). [`Grid2d`] packages that
//! idiom: row-wise placement via any [`DistKind`], per-cell access and
//! object-parallel application, and — for BLOCK row placement — the halo
//! exchange a stencil computation needs.
//!
//! Because a `Grid2d` *is* a `Collection<GridRow<T>>`, it streams through
//! d/streams like any other collection (`GridRow` implements the
//! element-decomposition contract via the caller's `StreamData` impl; the
//! `dstreams-core` crate provides one for primitive cell types).

use dstreams_machine::{NodeCtx, Wire};

use crate::collection::Collection;
use crate::distribution::DistKind;
use crate::error::CollectionError;
use crate::layout::Layout;

/// One row of a 2-D grid. The cell vector's length is the row's
/// *density*; adaptive grids vary it per row.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct GridRow<T> {
    /// The row's cells.
    pub cells: Vec<T>,
}

/// The halo returned by [`Grid2d::exchange_row_halo`]: the neighbor row
/// above and below this rank's contiguous range (`None` at grid edges).
pub type RowHalo<T> = (Option<Vec<T>>, Option<Vec<T>>);

/// Halo of one contiguous run of locally-owned rows, as returned by
/// [`Grid2d::exchange_run_halos`]. Under CYCLIC(k) placement a rank owns
/// many runs of `k` rows each; every run gets its own halo.
#[derive(Debug, Clone, PartialEq)]
pub struct RunHalo<T> {
    /// Global index of the run's first row.
    pub first_row: usize,
    /// Global index of the run's last row (inclusive).
    pub last_row: usize,
    /// Up to `width` rows immediately above the run, in increasing row
    /// order (the last entry is row `first_row - 1`); truncated at the
    /// grid edge.
    pub above: Vec<Vec<T>>,
    /// Up to `width` rows immediately below the run, in increasing row
    /// order (the first entry is row `last_row + 1`); truncated at the
    /// grid edge.
    pub below: Vec<Vec<T>>,
}

/// A distributed 2-D grid: rows placed over ranks, cells local to a row.
#[derive(Debug)]
pub struct Grid2d<T> {
    rows: usize,
    coll: Collection<GridRow<T>>,
}

impl<T> Grid2d<T> {
    /// Build a grid of `rows`, distributing rows by `kind`, with cell
    /// `(i, j)` initialized by `init`. `density(i)` gives row `i`'s cell
    /// count (uniform grids pass a constant).
    pub fn new(
        ctx: &NodeCtx,
        rows: usize,
        kind: DistKind,
        mut density: impl FnMut(usize) -> usize,
        mut init: impl FnMut(usize, usize) -> T,
    ) -> Result<Self, CollectionError> {
        let layout = Layout::dense(rows, ctx.nprocs(), kind)?;
        let coll = Collection::new(ctx, layout, |i| GridRow {
            cells: (0..density(i)).map(|j| init(i, j)).collect(),
        })?;
        Ok(Grid2d { rows, coll })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the grid has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The underlying collection (for streaming through d/streams).
    pub fn as_collection(&self) -> &Collection<GridRow<T>> {
        &self.coll
    }

    /// Mutable access to the underlying collection.
    pub fn as_collection_mut(&mut self) -> &mut Collection<GridRow<T>> {
        &mut self.coll
    }

    /// Consume the grid, yielding the collection.
    pub fn into_collection(self) -> Collection<GridRow<T>> {
        self.coll
    }

    /// Rebuild a grid view over a collection of rows.
    pub fn from_collection(coll: Collection<GridRow<T>>) -> Self {
        Grid2d {
            rows: coll.len(),
            coll,
        }
    }

    /// Reference to cell `(i, j)` if row `i` is local.
    pub fn get(&self, i: usize, j: usize) -> Result<&T, CollectionError> {
        let row = self.coll.get(i)?;
        row.cells.get(j).ok_or(CollectionError::IndexOutOfRange {
            index: j,
            len: row.cells.len(),
        })
    }

    /// Mutable reference to cell `(i, j)` if row `i` is local.
    pub fn get_mut(&mut self, i: usize, j: usize) -> Result<&mut T, CollectionError> {
        let row = self.coll.get_mut(i)?;
        let len = row.cells.len();
        row.cells
            .get_mut(j)
            .ok_or(CollectionError::IndexOutOfRange { index: j, len })
    }

    /// Object-parallel application over every local cell, with its
    /// `(row, column)` coordinates.
    pub fn apply_cells(&mut self, mut f: impl FnMut(usize, usize, &mut T)) {
        self.coll.apply_indexed(|i, row| {
            for (j, cell) in row.cells.iter_mut().enumerate() {
                f(i, j, cell);
            }
        });
    }

    /// Total cell count across all ranks.
    pub fn total_cells(&self, ctx: &NodeCtx) -> Result<u64, CollectionError> {
        self.coll
            .reduce(ctx, 0u64, |r| r.cells.len() as u64, |a, b| a + b)
    }
}

impl<T> Grid2d<T> {
    fn unsupported(&self, operation: &'static str, requirement: String) -> CollectionError {
        CollectionError::UnsupportedPlacement {
            layout: self.coll.layout().descriptor(),
            operation,
            requirement,
        }
    }

    /// The guaranteed length of every non-final contiguous row run under
    /// the grid's placement — the largest halo width `exchange_run_halos`
    /// can serve from a single neighboring run.
    fn run_quantum(&self) -> Result<usize, CollectionError> {
        let dist = self.coll.layout().distribution();
        Ok(match dist.kind() {
            DistKind::Block => dist.len().div_ceil(dist.nprocs()).max(1),
            DistKind::Cyclic => 1,
            DistKind::BlockCyclic(k) => k,
            DistKind::Composed2d(_) => {
                return Err(self.unsupported(
                    "halo exchange",
                    "row placement must be 1-D (BLOCK or CYCLIC(k))".into(),
                ))
            }
        })
    }
}

impl<T: Wire + Clone + Default> Grid2d<T> {
    /// Exchange boundary rows between neighboring ranks — the halo a
    /// vertical stencil needs. Requires BLOCK row placement (each rank
    /// owns one contiguous row range, so a single `(above, below)` pair
    /// describes its whole boundary); for CYCLIC(k) placements use
    /// [`Grid2d::exchange_run_halos`], which returns a halo per run.
    ///
    /// Returns `(above, below)`: the last row of the preceding rank's
    /// range and the first row of the following rank's, `None` at the
    /// grid edges. Collective.
    pub fn exchange_row_halo(&self, ctx: &NodeCtx) -> Result<RowHalo<T>, CollectionError> {
        if self.coll.layout().distribution().kind() != DistKind::Block {
            return Err(self.unsupported(
                "exchange_row_halo",
                "BLOCK row placement (one contiguous run per rank); \
                 use exchange_run_halos for CYCLIC(k) rows"
                    .into(),
            ));
        }
        let mut runs = self.exchange_run_halos(ctx, 1)?;
        Ok(match runs.pop() {
            Some(run) => (
                run.above.into_iter().next_back(),
                run.below.into_iter().next(),
            ),
            None => (None, None),
        })
    }

    /// Exchange halos of `width` rows around every contiguous run of
    /// locally-owned rows. Supports BLOCK and CYCLIC(k) row placement
    /// with `k >= width` (every non-final run then spans a full block of
    /// `k` rows, so each side of a halo comes from exactly one
    /// neighboring run). Collective; ranks without rows still
    /// participate and receive an empty vector.
    pub fn exchange_run_halos(
        &self,
        ctx: &NodeCtx,
        width: usize,
    ) -> Result<Vec<RunHalo<T>>, CollectionError> {
        if width == 0 {
            return Err(CollectionError::BadDistribution(
                "halo width must be at least 1".into(),
            ));
        }
        let quantum = self.run_quantum()?;
        if width > quantum {
            return Err(self.unsupported(
                "exchange_run_halos",
                format!(
                    "halo width {width} exceeds the placement's run length \
                     {quantum}; CYCLIC(k) rows need k >= width"
                ),
            ));
        }

        let encode = |row: &GridRow<T>| -> Vec<u8> {
            let mut buf = Vec::new();
            for c in &row.cells {
                let w = c.to_wire();
                buf.extend_from_slice(&(w.len() as u32).to_le_bytes());
                buf.extend_from_slice(&w);
            }
            buf
        };
        let decode = |buf: &[u8]| -> Result<Vec<T>, CollectionError> {
            let mut out = Vec::new();
            let mut pos = 0usize;
            while pos < buf.len() {
                let len = u32::from_le_bytes(
                    buf.get(pos..pos + 4)
                        .ok_or_else(|| {
                            CollectionError::BadDistribution("halo: truncated frame".into())
                        })?
                        .try_into()
                        .expect("4 bytes"),
                ) as usize;
                pos += 4;
                let raw = buf.get(pos..pos + len).ok_or_else(|| {
                    CollectionError::BadDistribution("halo: truncated cell".into())
                })?;
                pos += len;
                out.push(T::from_wire(raw).ok_or_else(|| {
                    CollectionError::BadDistribution("halo: undecodable cell".into())
                })?);
            }
            Ok(out)
        };

        // Split the local rows into contiguous runs of global ids; note
        // each run's position in local storage (local order == id order).
        let ids = self.coll.global_ids();
        let mut runs: Vec<(usize, usize)> = Vec::new(); // (local start, len)
        for (slot, &id) in ids.iter().enumerate() {
            match runs.last_mut() {
                Some(&mut (start, ref mut len)) if ids[start] + *len == id => *len += 1,
                _ => runs.push((slot, 1)),
            }
        }

        // Advertise each run's boundary rows: its first and last
        // min(width, run_len) rows. Every rank gathers every
        // advertisement and slices out what its own runs need — robust
        // to empty ranks, and small (halo data only, not whole runs).
        let push_rows = |mine: &mut Vec<u8>, rows: &[GridRow<T>]| {
            mine.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for row in rows {
                let e = encode(row);
                mine.extend_from_slice(&(e.len() as u64).to_le_bytes());
                mine.extend_from_slice(&e);
            }
        };
        let mut mine = Vec::new();
        mine.extend_from_slice(&(runs.len() as u32).to_le_bytes());
        for &(start, len) in &runs {
            let w = width.min(len);
            mine.extend_from_slice(&(ids[start] as u64).to_le_bytes());
            mine.extend_from_slice(&((ids[start] + len - 1) as u64).to_le_bytes());
            push_rows(&mut mine, &self.coll.local()[start..start + w]);
            push_rows(&mut mine, &self.coll.local()[start + len - w..start + len]);
        }
        let all = ctx.all_gather(mine)?;

        // Decode every rank's advertisements, keyed by run boundary ids.
        struct Adv {
            first_id: usize,
            last_id: usize,
            first: Vec<Vec<u8>>,
            last: Vec<Vec<u8>>,
        }
        let mut advs: Vec<Adv> = Vec::new();
        for buf in &all {
            let mut pos = 0usize;
            let u32_at = |pos: &mut usize| -> usize {
                let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes"));
                *pos += 4;
                v as usize
            };
            let u64_at = |pos: &mut usize| -> usize {
                let v = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
                *pos += 8;
                v as usize
            };
            let take_rows = |pos: &mut usize| -> Vec<Vec<u8>> {
                let n = u32_at(pos);
                (0..n)
                    .map(|_| {
                        let len = u64_at(pos);
                        let raw = buf[*pos..*pos + len].to_vec();
                        *pos += len;
                        raw
                    })
                    .collect()
            };
            let n_runs = u32_at(&mut pos);
            for _ in 0..n_runs {
                let first_id = u64_at(&mut pos);
                let last_id = u64_at(&mut pos);
                let first = take_rows(&mut pos);
                let last = take_rows(&mut pos);
                advs.push(Adv {
                    first_id,
                    last_id,
                    first,
                    last,
                });
            }
        }

        // Assemble each local run's halo. Because width <= quantum and
        // every non-final run spans a full quantum, each side lies
        // entirely within the single adjacent run.
        let missing =
            || CollectionError::BadDistribution("halo: missing neighbor advertisement".into());
        let mut out = Vec::with_capacity(runs.len());
        for &(start, len) in &runs {
            let (first_id, last_id) = (ids[start], ids[start] + len - 1);
            let mut above = Vec::new();
            if first_id > 0 {
                let w = width.min(first_id);
                let donor = advs
                    .iter()
                    .find(|a| a.last_id + 1 == first_id)
                    .ok_or_else(missing)?;
                for raw in &donor.last[donor.last.len() - w..] {
                    above.push(decode(raw)?);
                }
            }
            let mut below = Vec::new();
            if last_id + 1 < self.rows {
                let w = width.min(self.rows - last_id - 1);
                let donor = advs
                    .iter()
                    .find(|a| a.first_id == last_id + 1)
                    .ok_or_else(missing)?;
                for raw in &donor.first[..w] {
                    below.push(decode(raw)?);
                }
            }
            out.push(RunHalo {
                first_row: first_id,
                last_row: last_id,
                above,
                below,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_machine::{Machine, MachineConfig};

    #[test]
    fn construction_and_cell_access() {
        Machine::run(MachineConfig::functional(3), |ctx| {
            let mut grid =
                Grid2d::new(ctx, 9, DistKind::Block, |_| 4, |i, j| (i * 10 + j) as i64).unwrap();
            assert_eq!(grid.rows(), 9);
            for &i in grid.as_collection().global_ids().to_vec().iter() {
                for j in 0..4 {
                    assert_eq!(*grid.get(i, j).unwrap(), (i * 10 + j) as i64);
                }
                assert!(matches!(
                    grid.get(i, 4),
                    Err(CollectionError::IndexOutOfRange { .. })
                ));
            }
            *grid
                .get_mut(grid.as_collection().global_ids()[0], 0)
                .unwrap() = -1;
        })
        .unwrap();
    }

    #[test]
    fn variable_density_rows() {
        Machine::run(MachineConfig::functional(2), |ctx| {
            let grid =
                Grid2d::new(ctx, 6, DistKind::Block, |i| i + 1, |i, j| (i + j) as u32).unwrap();
            let total = grid.total_cells(ctx).unwrap();
            assert_eq!(total, (1..=6).sum::<usize>() as u64);
        })
        .unwrap();
    }

    #[test]
    fn apply_cells_touches_every_cell_once() {
        Machine::run(MachineConfig::functional(4), |ctx| {
            let mut grid = Grid2d::new(ctx, 8, DistKind::Block, |_| 3, |_, _| 0u64).unwrap();
            grid.apply_cells(|i, j, v| *v = (i * 100 + j) as u64);
            let sum = grid
                .as_collection()
                .reduce(ctx, 0u64, |r| r.cells.iter().sum::<u64>(), |a, b| a + b)
                .unwrap();
            let want: u64 = (0..8)
                .flat_map(|i| (0..3).map(move |j| (i * 100 + j) as u64))
                .sum();
            assert_eq!(sum, want);
        })
        .unwrap();
    }

    #[test]
    fn halo_exchange_delivers_neighbor_rows() {
        for np in [1usize, 2, 3, 4] {
            Machine::run(MachineConfig::functional(np), move |ctx| {
                let grid =
                    Grid2d::new(ctx, 8, DistKind::Block, |_| 2, |i, j| (i * 2 + j) as f64).unwrap();
                let (above, below) = grid.exchange_row_halo(ctx).unwrap();
                let ids = grid.as_collection().global_ids();
                if ids.is_empty() {
                    assert!(above.is_none() && below.is_none());
                    return;
                }
                let my_first = ids[0];
                let my_last = ids[ids.len() - 1];
                match above {
                    Some(row) => {
                        assert!(my_first > 0);
                        let want = my_first - 1;
                        assert_eq!(row, vec![(want * 2) as f64, (want * 2 + 1) as f64]);
                    }
                    None => assert_eq!(my_first, 0),
                }
                match below {
                    Some(row) => {
                        assert!(my_last < 7);
                        let want = my_last + 1;
                        assert_eq!(row, vec![(want * 2) as f64, (want * 2 + 1) as f64]);
                    }
                    None => assert_eq!(my_last, 7),
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn halo_requires_block_placement() {
        Machine::run(MachineConfig::functional(2), |ctx| {
            let grid = Grid2d::new(ctx, 6, DistKind::Cyclic, |_| 1, |_, _| 0i32).unwrap();
            // The single-pair API still wants BLOCK, but now says so with
            // the offending layout attached...
            match grid.exchange_row_halo(ctx) {
                Err(CollectionError::UnsupportedPlacement {
                    layout,
                    operation,
                    requirement,
                }) => {
                    assert_eq!(layout, grid.as_collection().layout().descriptor());
                    assert_eq!(layout.dist_code, DistKind::Cyclic.code());
                    assert_eq!(operation, "exchange_row_halo");
                    assert!(requirement.contains("exchange_run_halos"), "{requirement}");
                }
                other => panic!("expected UnsupportedPlacement, got {other:?}"),
            }
            // ...and the run-based API serves CYCLIC rows at width 1 but
            // rejects widths beyond the placement's run length.
            let halos = grid.exchange_run_halos(ctx, 1).unwrap();
            assert_eq!(halos.len(), 3);
            match grid.exchange_run_halos(ctx, 2) {
                Err(CollectionError::UnsupportedPlacement { requirement, .. }) => {
                    assert!(requirement.contains("k >= width"), "{requirement}");
                }
                other => panic!("expected UnsupportedPlacement, got {other:?}"),
            }
        })
        .unwrap();
    }

    #[test]
    fn run_halos_deliver_neighbor_rows_under_cyclic_k() {
        // 12 rows dealt CYCLIC(3) over up to 3 ranks; width up to k.
        for np in [1usize, 2, 3] {
            for width in [1usize, 2, 3] {
                Machine::run(MachineConfig::functional(np), move |ctx| {
                    let grid = Grid2d::new(
                        ctx,
                        12,
                        DistKind::BlockCyclic(3),
                        |_| 2,
                        |i, j| (i * 2 + j) as i64,
                    )
                    .unwrap();
                    let row = |i: usize| vec![(i * 2) as i64, (i * 2 + 1) as i64];
                    let halos = grid.exchange_run_halos(ctx, width).unwrap();
                    let mut seen_rows = 0usize;
                    for h in &halos {
                        // Runs are maximal contiguous stretches: blocks of
                        // k on a real grid, the whole grid on one rank.
                        let run_len = h.last_row - h.first_row + 1;
                        assert_eq!(run_len, if np == 1 { 12 } else { 3 });
                        seen_rows += run_len;
                        let want_above: Vec<_> = (h.first_row.saturating_sub(width)..h.first_row)
                            .map(row)
                            .collect();
                        let want_below: Vec<_> = (h.last_row + 1..(h.last_row + 1 + width).min(12))
                            .map(row)
                            .collect();
                        assert_eq!(h.above, want_above, "np {np} width {width}");
                        assert_eq!(h.below, want_below, "np {np} width {width}");
                    }
                    assert_eq!(seen_rows, grid.as_collection().local_len());
                })
                .unwrap();
            }
        }
    }

    #[test]
    fn run_halos_match_row_halo_under_block() {
        Machine::run(MachineConfig::functional(3), |ctx| {
            let grid = Grid2d::new(ctx, 8, DistKind::Block, |_| 1, |i, _| i as u32).unwrap();
            let (above, below) = grid.exchange_row_halo(ctx).unwrap();
            let halos = grid.exchange_run_halos(ctx, 1).unwrap();
            assert_eq!(halos.len(), 1);
            assert_eq!(above.as_ref(), halos[0].above.last());
            assert_eq!(below.as_ref(), halos[0].below.first());
        })
        .unwrap();
    }

    #[test]
    fn more_ranks_than_rows_is_fine() {
        Machine::run(MachineConfig::functional(5), |ctx| {
            let grid = Grid2d::new(ctx, 3, DistKind::Block, |_| 2, |i, j| (i + j) as u16).unwrap();
            // Ranks without rows see no halo; ranks with rows see correct ones.
            let (above, below) = grid.exchange_row_halo(ctx).unwrap();
            if grid.as_collection().local_len() == 0 {
                assert!(above.is_none() && below.is_none());
            }
        })
        .unwrap();
    }
}
