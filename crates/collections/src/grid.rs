//! Distributed 2-D grids over collections.
//!
//! The paper's introduction motivates d/streams with "adaptive parallel
//! applications using dynamic distributed data structures (e.g.
//! distributed grids of variable density)". In pC++ such a grid is built
//! *over the distributed array base*: a 1-D collection whose elements are
//! grid rows (possibly of varying density). [`Grid2d`] packages that
//! idiom: row-wise placement via any [`DistKind`], per-cell access and
//! object-parallel application, and — for BLOCK row placement — the halo
//! exchange a stencil computation needs.
//!
//! Because a `Grid2d` *is* a `Collection<GridRow<T>>`, it streams through
//! d/streams like any other collection (`GridRow` implements the
//! element-decomposition contract via the caller's `StreamData` impl; the
//! `dstreams-core` crate provides one for primitive cell types).

use dstreams_machine::{NodeCtx, Wire};

use crate::collection::Collection;
use crate::distribution::DistKind;
use crate::error::CollectionError;
use crate::layout::Layout;

/// One row of a 2-D grid. The cell vector's length is the row's
/// *density*; adaptive grids vary it per row.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct GridRow<T> {
    /// The row's cells.
    pub cells: Vec<T>,
}

/// The halo returned by [`Grid2d::exchange_row_halo`]: the neighbor row
/// above and below this rank's contiguous range (`None` at grid edges).
pub type RowHalo<T> = (Option<Vec<T>>, Option<Vec<T>>);

/// A distributed 2-D grid: rows placed over ranks, cells local to a row.
#[derive(Debug)]
pub struct Grid2d<T> {
    rows: usize,
    coll: Collection<GridRow<T>>,
}

impl<T> Grid2d<T> {
    /// Build a grid of `rows`, distributing rows by `kind`, with cell
    /// `(i, j)` initialized by `init`. `density(i)` gives row `i`'s cell
    /// count (uniform grids pass a constant).
    pub fn new(
        ctx: &NodeCtx,
        rows: usize,
        kind: DistKind,
        mut density: impl FnMut(usize) -> usize,
        mut init: impl FnMut(usize, usize) -> T,
    ) -> Result<Self, CollectionError> {
        let layout = Layout::dense(rows, ctx.nprocs(), kind)?;
        let coll = Collection::new(ctx, layout, |i| GridRow {
            cells: (0..density(i)).map(|j| init(i, j)).collect(),
        })?;
        Ok(Grid2d { rows, coll })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the grid has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The underlying collection (for streaming through d/streams).
    pub fn as_collection(&self) -> &Collection<GridRow<T>> {
        &self.coll
    }

    /// Mutable access to the underlying collection.
    pub fn as_collection_mut(&mut self) -> &mut Collection<GridRow<T>> {
        &mut self.coll
    }

    /// Consume the grid, yielding the collection.
    pub fn into_collection(self) -> Collection<GridRow<T>> {
        self.coll
    }

    /// Rebuild a grid view over a collection of rows.
    pub fn from_collection(coll: Collection<GridRow<T>>) -> Self {
        Grid2d {
            rows: coll.len(),
            coll,
        }
    }

    /// Reference to cell `(i, j)` if row `i` is local.
    pub fn get(&self, i: usize, j: usize) -> Result<&T, CollectionError> {
        let row = self.coll.get(i)?;
        row.cells.get(j).ok_or(CollectionError::IndexOutOfRange {
            index: j,
            len: row.cells.len(),
        })
    }

    /// Mutable reference to cell `(i, j)` if row `i` is local.
    pub fn get_mut(&mut self, i: usize, j: usize) -> Result<&mut T, CollectionError> {
        let row = self.coll.get_mut(i)?;
        let len = row.cells.len();
        row.cells
            .get_mut(j)
            .ok_or(CollectionError::IndexOutOfRange { index: j, len })
    }

    /// Object-parallel application over every local cell, with its
    /// `(row, column)` coordinates.
    pub fn apply_cells(&mut self, mut f: impl FnMut(usize, usize, &mut T)) {
        self.coll.apply_indexed(|i, row| {
            for (j, cell) in row.cells.iter_mut().enumerate() {
                f(i, j, cell);
            }
        });
    }

    /// Total cell count across all ranks.
    pub fn total_cells(&self, ctx: &NodeCtx) -> Result<u64, CollectionError> {
        self.coll
            .reduce(ctx, 0u64, |r| r.cells.len() as u64, |a, b| a + b)
    }
}

impl<T: Wire + Clone + Default> Grid2d<T> {
    /// Exchange boundary rows between neighboring ranks — the halo a
    /// vertical stencil needs. Requires BLOCK row placement (each rank
    /// owns one contiguous row range, so "neighbor" is well defined).
    ///
    /// Returns `(above, below)`: the last row of the preceding rank's
    /// range and the first row of the following rank's, `None` at the
    /// grid edges. Collective.
    pub fn exchange_row_halo(&self, ctx: &NodeCtx) -> Result<RowHalo<T>, CollectionError> {
        if self.coll.layout().distribution().kind() != DistKind::Block {
            return Err(CollectionError::BadDistribution(
                "halo exchange requires BLOCK row placement".into(),
            ));
        }
        // A rank's range is empty when rows < nprocs; ranks without rows
        // forward nothing but still participate (all_gather keeps the
        // call collective and handles skipping empty ranks naturally).
        let encode = |row: &GridRow<T>| -> Vec<u8> {
            let mut buf = Vec::new();
            for c in &row.cells {
                let w = c.to_wire();
                buf.extend_from_slice(&(w.len() as u32).to_le_bytes());
                buf.extend_from_slice(&w);
            }
            buf
        };
        let decode = |buf: &[u8]| -> Result<Vec<T>, CollectionError> {
            let mut out = Vec::new();
            let mut pos = 0usize;
            while pos < buf.len() {
                let len = u32::from_le_bytes(
                    buf.get(pos..pos + 4)
                        .ok_or_else(|| {
                            CollectionError::BadDistribution("halo: truncated frame".into())
                        })?
                        .try_into()
                        .expect("4 bytes"),
                ) as usize;
                pos += 4;
                let raw = buf.get(pos..pos + len).ok_or_else(|| {
                    CollectionError::BadDistribution("halo: truncated cell".into())
                })?;
                pos += len;
                out.push(T::from_wire(raw).ok_or_else(|| {
                    CollectionError::BadDistribution("halo: undecodable cell".into())
                })?);
            }
            Ok(out)
        };

        // Share each rank's (first_row_id, first_row, last_row_id,
        // last_row) and pick neighbors by global row index — robust to
        // empty ranks without pairwise-messaging gymnastics (halo data is
        // small: two rows per rank).
        let mut mine = Vec::new();
        if self.coll.local_len() > 0 {
            let ids = self.coll.global_ids();
            let first = &self.coll.local()[0];
            let last = &self.coll.local()[self.coll.local_len() - 1];
            mine.extend_from_slice(&(ids[0] as u64).to_le_bytes());
            let fe = encode(first);
            mine.extend_from_slice(&(fe.len() as u64).to_le_bytes());
            mine.extend_from_slice(&fe);
            mine.extend_from_slice(&(ids[ids.len() - 1] as u64).to_le_bytes());
            let le = encode(last);
            mine.extend_from_slice(&(le.len() as u64).to_le_bytes());
            mine.extend_from_slice(&le);
        }
        let all = ctx.all_gather(mine)?;

        // Decode every rank's boundary advertisement.
        struct Adv {
            first_id: usize,
            first: Vec<u8>,
            last_id: usize,
            last: Vec<u8>,
        }
        let mut advs: Vec<Adv> = Vec::new();
        for buf in &all {
            if buf.is_empty() {
                continue;
            }
            let u64_at = |pos: &mut usize| -> u64 {
                let v = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().expect("8 bytes"));
                *pos += 8;
                v
            };
            let mut pos = 0usize;
            let first_id = u64_at(&mut pos) as usize;
            let flen = u64_at(&mut pos) as usize;
            let first = buf[pos..pos + flen].to_vec();
            pos += flen;
            let last_id = u64_at(&mut pos) as usize;
            let llen = u64_at(&mut pos) as usize;
            let last = buf[pos..pos + llen].to_vec();
            advs.push(Adv {
                first_id,
                first,
                last_id,
                last,
            });
        }

        let (mut above, mut below) = (None, None);
        if self.coll.local_len() > 0 {
            let ids = self.coll.global_ids();
            let my_first = ids[0];
            let my_last = ids[ids.len() - 1];
            if my_first > 0 {
                let want = my_first - 1;
                if let Some(a) = advs.iter().find(|a| a.last_id == want) {
                    above = Some(decode(&a.last)?);
                } else if let Some(a) = advs.iter().find(|a| a.first_id == want) {
                    above = Some(decode(&a.first)?);
                }
            }
            if my_last + 1 < self.rows {
                let want = my_last + 1;
                if let Some(a) = advs.iter().find(|a| a.first_id == want) {
                    below = Some(decode(&a.first)?);
                } else if let Some(a) = advs.iter().find(|a| a.last_id == want) {
                    below = Some(decode(&a.last)?);
                }
            }
        }
        Ok((above, below))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_machine::{Machine, MachineConfig};

    #[test]
    fn construction_and_cell_access() {
        Machine::run(MachineConfig::functional(3), |ctx| {
            let mut grid =
                Grid2d::new(ctx, 9, DistKind::Block, |_| 4, |i, j| (i * 10 + j) as i64).unwrap();
            assert_eq!(grid.rows(), 9);
            for &i in grid.as_collection().global_ids().to_vec().iter() {
                for j in 0..4 {
                    assert_eq!(*grid.get(i, j).unwrap(), (i * 10 + j) as i64);
                }
                assert!(matches!(
                    grid.get(i, 4),
                    Err(CollectionError::IndexOutOfRange { .. })
                ));
            }
            *grid
                .get_mut(grid.as_collection().global_ids()[0], 0)
                .unwrap() = -1;
        })
        .unwrap();
    }

    #[test]
    fn variable_density_rows() {
        Machine::run(MachineConfig::functional(2), |ctx| {
            let grid =
                Grid2d::new(ctx, 6, DistKind::Block, |i| i + 1, |i, j| (i + j) as u32).unwrap();
            let total = grid.total_cells(ctx).unwrap();
            assert_eq!(total, (1..=6).sum::<usize>() as u64);
        })
        .unwrap();
    }

    #[test]
    fn apply_cells_touches_every_cell_once() {
        Machine::run(MachineConfig::functional(4), |ctx| {
            let mut grid = Grid2d::new(ctx, 8, DistKind::Block, |_| 3, |_, _| 0u64).unwrap();
            grid.apply_cells(|i, j, v| *v = (i * 100 + j) as u64);
            let sum = grid
                .as_collection()
                .reduce(ctx, 0u64, |r| r.cells.iter().sum::<u64>(), |a, b| a + b)
                .unwrap();
            let want: u64 = (0..8)
                .flat_map(|i| (0..3).map(move |j| (i * 100 + j) as u64))
                .sum();
            assert_eq!(sum, want);
        })
        .unwrap();
    }

    #[test]
    fn halo_exchange_delivers_neighbor_rows() {
        for np in [1usize, 2, 3, 4] {
            Machine::run(MachineConfig::functional(np), move |ctx| {
                let grid =
                    Grid2d::new(ctx, 8, DistKind::Block, |_| 2, |i, j| (i * 2 + j) as f64).unwrap();
                let (above, below) = grid.exchange_row_halo(ctx).unwrap();
                let ids = grid.as_collection().global_ids();
                if ids.is_empty() {
                    assert!(above.is_none() && below.is_none());
                    return;
                }
                let my_first = ids[0];
                let my_last = ids[ids.len() - 1];
                match above {
                    Some(row) => {
                        assert!(my_first > 0);
                        let want = my_first - 1;
                        assert_eq!(row, vec![(want * 2) as f64, (want * 2 + 1) as f64]);
                    }
                    None => assert_eq!(my_first, 0),
                }
                match below {
                    Some(row) => {
                        assert!(my_last < 7);
                        let want = my_last + 1;
                        assert_eq!(row, vec![(want * 2) as f64, (want * 2 + 1) as f64]);
                    }
                    None => assert_eq!(my_last, 7),
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn halo_requires_block_placement() {
        Machine::run(MachineConfig::functional(2), |ctx| {
            let grid = Grid2d::new(ctx, 6, DistKind::Cyclic, |_| 1, |_, _| 0i32).unwrap();
            assert!(matches!(
                grid.exchange_row_halo(ctx),
                Err(CollectionError::BadDistribution(_))
            ));
        })
        .unwrap();
    }

    #[test]
    fn more_ranks_than_rows_is_fine() {
        Machine::run(MachineConfig::functional(5), |ctx| {
            let grid = Grid2d::new(ctx, 3, DistKind::Block, |_| 2, |i, j| (i + j) as u16).unwrap();
            // Ranks without rows see no halo; ranks with rows see correct ones.
            let (above, below) = grid.exchange_row_halo(ctx).unwrap();
            if grid.as_collection().local_len() == 0 {
                assert!(above.is_none() && below.is_none());
            }
        })
        .unwrap();
    }
}
