//! HPF-style alignment of a collection onto a distribution template.
//!
//! The paper's example uses `Align a(12, "[ALIGN(dummy[i], d[i])]")` — the
//! identity alignment. In general HPF permits affine alignments
//! `template[stride * i + offset]`; we support exactly that family.

use crate::error::CollectionError;

/// An affine map from collection index to template cell:
/// `t = stride * i + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Alignment {
    /// Multiplier (must be ≥ 1).
    pub stride: usize,
    /// Additive offset.
    pub offset: usize,
}

impl Alignment {
    /// The identity alignment `ALIGN(dummy[i], d[i])`.
    pub fn identity() -> Self {
        Alignment {
            stride: 1,
            offset: 0,
        }
    }

    /// An affine alignment `ALIGN(dummy[i], d[stride*i + offset])`.
    pub fn affine(stride: usize, offset: usize) -> Result<Self, CollectionError> {
        if stride == 0 {
            return Err(CollectionError::BadDistribution(
                "alignment stride must be at least 1".into(),
            ));
        }
        Ok(Alignment { stride, offset })
    }

    /// Template cell for collection element `i`.
    pub fn template_cell(&self, i: usize) -> usize {
        self.stride * i + self.offset
    }

    /// Collection element mapping to template cell `t`, if any.
    pub fn element_for_cell(&self, t: usize) -> Option<usize> {
        if t < self.offset {
            return None;
        }
        let d = t - self.offset;
        d.is_multiple_of(self.stride).then_some(d / self.stride)
    }

    /// Highest template cell touched by a collection of `n` elements
    /// (`None` for an empty collection).
    pub fn max_cell(&self, n: usize) -> Option<usize> {
        n.checked_sub(1).map(|last| self.template_cell(last))
    }
}

impl Default for Alignment {
    fn default() -> Self {
        Alignment::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_straight_through() {
        let a = Alignment::identity();
        assert_eq!(a.template_cell(7), 7);
        assert_eq!(a.element_for_cell(7), Some(7));
    }

    #[test]
    fn affine_roundtrips() {
        let a = Alignment::affine(3, 2).unwrap();
        for i in 0..20 {
            let t = a.template_cell(i);
            assert_eq!(t, 3 * i + 2);
            assert_eq!(a.element_for_cell(t), Some(i));
        }
        // Cells between strides, or before the offset, have no element.
        assert_eq!(a.element_for_cell(0), None);
        assert_eq!(a.element_for_cell(3), None);
        assert_eq!(a.element_for_cell(4), None);
        assert_eq!(a.element_for_cell(2), Some(0));
    }

    #[test]
    fn zero_stride_is_rejected() {
        assert!(Alignment::affine(0, 1).is_err());
    }

    #[test]
    fn max_cell_bounds_template_usage() {
        let a = Alignment::affine(2, 1).unwrap();
        assert_eq!(a.max_cell(0), None);
        assert_eq!(a.max_cell(5), Some(9));
    }
}
