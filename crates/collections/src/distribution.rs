//! HPF-style distributions of a template over processors.
//!
//! pC++ inherits High Performance Fortran's distribution vocabulary: a
//! *template* of `n` abstract cells is distributed over `P` processors
//! BLOCK-wise, CYCLIC-ly, or in blocks of `k` dealt round-robin
//! (BLOCK-CYCLIC). Collections are then *aligned* to the template (see
//! [`crate::alignment`]). The paper's example declares
//! `Distribution d(12, &P, CYCLIC)`.

use crate::error::CollectionError;

/// The distribution pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistKind {
    /// Contiguous blocks of `ceil(n / P)` cells per processor.
    Block,
    /// Cell `t` on processor `t mod P`.
    Cyclic,
    /// Blocks of `k` cells dealt round-robin.
    BlockCyclic(usize),
}

impl DistKind {
    /// Stable numeric code used by the self-describing file format.
    pub fn code(self) -> u32 {
        match self {
            DistKind::Block => 0,
            DistKind::Cyclic => 1,
            DistKind::BlockCyclic(_) => 2,
        }
    }

    /// Parameter accompanying [`DistKind::code`] (block size, or 0).
    pub fn param(self) -> u64 {
        match self {
            DistKind::BlockCyclic(k) => k as u64,
            _ => 0,
        }
    }

    /// Inverse of [`DistKind::code`]/[`DistKind::param`].
    pub fn from_code(code: u32, param: u64) -> Option<DistKind> {
        match code {
            0 => Some(DistKind::Block),
            1 => Some(DistKind::Cyclic),
            2 if param > 0 => Some(DistKind::BlockCyclic(param as usize)),
            _ => None,
        }
    }
}

/// A template of `len` cells distributed over `nprocs` processors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Distribution {
    len: usize,
    nprocs: usize,
    kind: DistKind,
}

impl Distribution {
    /// Create a distribution; validates parameters.
    pub fn new(len: usize, nprocs: usize, kind: DistKind) -> Result<Self, CollectionError> {
        if nprocs == 0 {
            return Err(CollectionError::BadDistribution(
                "nprocs must be at least 1".into(),
            ));
        }
        if let DistKind::BlockCyclic(0) = kind {
            return Err(CollectionError::BadDistribution(
                "BLOCK-CYCLIC block size must be at least 1".into(),
            ));
        }
        Ok(Distribution { len, nprocs, kind })
    }

    /// Template length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the template is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The distribution pattern.
    pub fn kind(&self) -> DistKind {
        self.kind
    }

    /// Block size of the BLOCK pattern (`ceil(len / nprocs)`, min 1).
    fn block_size(&self) -> usize {
        self.len.div_ceil(self.nprocs).max(1)
    }

    /// Owning processor of template cell `t`.
    pub fn owner(&self, t: usize) -> Result<usize, CollectionError> {
        if t >= self.len {
            return Err(CollectionError::TemplateOverflow {
                template_index: t,
                template_len: self.len,
            });
        }
        Ok(match self.kind {
            DistKind::Block => (t / self.block_size()).min(self.nprocs - 1),
            DistKind::Cyclic => t % self.nprocs,
            DistKind::BlockCyclic(k) => (t / k) % self.nprocs,
        })
    }

    /// Local slot of template cell `t` on its owner. Local slots on each
    /// rank are dense, starting at 0, and increase with `t`.
    pub fn local_index(&self, t: usize) -> Result<usize, CollectionError> {
        if t >= self.len {
            return Err(CollectionError::TemplateOverflow {
                template_index: t,
                template_len: self.len,
            });
        }
        Ok(match self.kind {
            DistKind::Block => t - self.owner(t)? * self.block_size(),
            DistKind::Cyclic => t / self.nprocs,
            DistKind::BlockCyclic(k) => (t / (k * self.nprocs)) * k + t % k,
        })
    }

    /// Number of template cells owned by `rank`.
    pub fn local_count(&self, rank: usize) -> usize {
        match self.kind {
            DistKind::Block => {
                let b = self.block_size();
                let start = rank * b;
                if rank == self.nprocs - 1 {
                    // The last processor absorbs everything past its start
                    // (matches `owner`'s min-clamp).
                    self.len.saturating_sub(start)
                } else {
                    self.len.saturating_sub(start).min(b)
                }
            }
            DistKind::Cyclic => {
                let full = self.len / self.nprocs;
                full + usize::from(rank < self.len % self.nprocs)
            }
            DistKind::BlockCyclic(k) => {
                let round = k * self.nprocs;
                let full_rounds = self.len / round;
                let rem = self.len % round;
                let mut count = full_rounds * k;
                // Remaining cells deal blocks of k to ranks 0, 1, ...
                let start = rank * k;
                if rem > start {
                    count += (rem - start).min(k);
                }
                count
            }
        }
    }

    /// Template cells owned by `rank`, in local-slot order.
    pub fn local_cells(&self, rank: usize) -> Vec<usize> {
        // O(len) scan; distributions in this library are set up once per
        // stream, not in inner loops.
        (0..self.len)
            .filter(|&t| self.owner(t).expect("t < len") == rank)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_consistency(d: &Distribution) {
        // owner/local_index/local_count/local_cells must agree.
        let mut counts = vec![0usize; d.nprocs()];
        for t in 0..d.len() {
            let o = d.owner(t).unwrap();
            let l = d.local_index(t).unwrap();
            assert_eq!(l, counts[o], "cell {t}: local slots must be dense in order");
            counts[o] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            assert_eq!(count, d.local_count(r), "rank {r} count");
            let cells = d.local_cells(r);
            assert_eq!(cells.len(), count);
            for (slot, &t) in cells.iter().enumerate() {
                assert_eq!(d.owner(t).unwrap(), r);
                assert_eq!(d.local_index(t).unwrap(), slot);
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), d.len());
    }

    #[test]
    fn block_distribution_is_consistent() {
        for (len, np) in [(12, 4), (13, 4), (3, 4), (0, 2), (16, 1), (7, 3)] {
            check_consistency(&Distribution::new(len, np, DistKind::Block).unwrap());
        }
    }

    #[test]
    fn cyclic_distribution_is_consistent() {
        for (len, np) in [(12, 4), (13, 4), (3, 4), (0, 2), (16, 1), (7, 3)] {
            check_consistency(&Distribution::new(len, np, DistKind::Cyclic).unwrap());
        }
    }

    #[test]
    fn block_cyclic_distribution_is_consistent() {
        for (len, np, k) in [
            (12, 4, 2),
            (13, 4, 3),
            (3, 4, 2),
            (25, 3, 4),
            (16, 1, 5),
            (9, 2, 10),
        ] {
            check_consistency(&Distribution::new(len, np, DistKind::BlockCyclic(k)).unwrap());
        }
    }

    #[test]
    fn block_puts_contiguous_ranges_on_each_rank() {
        let d = Distribution::new(12, 3, DistKind::Block).unwrap();
        assert_eq!(d.local_cells(0), vec![0, 1, 2, 3]);
        assert_eq!(d.local_cells(1), vec![4, 5, 6, 7]);
        assert_eq!(d.local_cells(2), vec![8, 9, 10, 11]);
    }

    #[test]
    fn cyclic_deals_cells_round_robin() {
        let d = Distribution::new(7, 3, DistKind::Cyclic).unwrap();
        assert_eq!(d.local_cells(0), vec![0, 3, 6]);
        assert_eq!(d.local_cells(1), vec![1, 4]);
        assert_eq!(d.local_cells(2), vec![2, 5]);
    }

    #[test]
    fn block_cyclic_deals_blocks() {
        let d = Distribution::new(10, 2, DistKind::BlockCyclic(2)).unwrap();
        assert_eq!(d.local_cells(0), vec![0, 1, 4, 5, 8, 9]);
        assert_eq!(d.local_cells(1), vec![2, 3, 6, 7]);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Distribution::new(4, 0, DistKind::Block).is_err());
        assert!(Distribution::new(4, 2, DistKind::BlockCyclic(0)).is_err());
    }

    #[test]
    fn out_of_range_cells_are_rejected() {
        let d = Distribution::new(4, 2, DistKind::Block).unwrap();
        assert!(d.owner(4).is_err());
        assert!(d.local_index(4).is_err());
    }

    #[test]
    fn kind_codes_roundtrip() {
        for kind in [DistKind::Block, DistKind::Cyclic, DistKind::BlockCyclic(7)] {
            assert_eq!(DistKind::from_code(kind.code(), kind.param()), Some(kind));
        }
        assert_eq!(DistKind::from_code(99, 0), None);
        assert_eq!(DistKind::from_code(2, 0), None);
    }

    #[test]
    fn more_procs_than_cells_leaves_some_ranks_empty() {
        let d = Distribution::new(2, 5, DistKind::Block).unwrap();
        check_consistency(&d);
        assert_eq!(d.local_count(0), 1);
        assert_eq!(d.local_count(1), 1);
        assert_eq!(d.local_count(4), 0);
    }
}
