//! HPF-style distributions of a template over processors.
//!
//! pC++ inherits High Performance Fortran's distribution vocabulary: a
//! *template* of `n` abstract cells is distributed over `P` processors
//! BLOCK-wise, CYCLIC-ly, or in blocks of `k` dealt round-robin
//! (BLOCK-CYCLIC). Collections are then *aligned* to the template (see
//! [`crate::alignment`]). The paper's example declares
//! `Distribution d(12, &P, CYCLIC)`.

use crate::error::CollectionError;

/// A two-dimensional composed distribution: the template is viewed as a
/// row-major `rows × (len / rows)` matrix placed over a `grid_rows ×
/// (nprocs / grid_rows)` processor grid, each axis independently BLOCK
/// or CYCLIC(k) (HPF's `(BLOCK, CYCLIC(k))` style composition).
///
/// The per-axis pattern is encoded as a block size with `0` meaning
/// BLOCK; `k >= 1` meaning CYCLIC(k). Field widths are chosen so the
/// whole description packs into the single `dist_param` word of the
/// fixed-width [`crate::LayoutDescriptor`]: up to `2^32 - 1` rows,
/// `2^16 - 1` grid rows and per-axis block sizes up to 255.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Composed2d {
    /// Template rows (first-axis extent). Must divide the template length.
    pub rows: u32,
    /// Processor-grid rows. Must divide the processor count.
    pub grid_rows: u16,
    /// Row-axis block size: 0 = BLOCK, k >= 1 = CYCLIC(k).
    pub row_k: u8,
    /// Column-axis block size: 0 = BLOCK, k >= 1 = CYCLIC(k).
    pub col_k: u8,
}

impl Composed2d {
    /// Pack into the descriptor's `dist_param` word.
    pub fn pack(self) -> u64 {
        (self.rows as u64) << 32
            | (self.grid_rows as u64) << 16
            | (self.row_k as u64) << 8
            | self.col_k as u64
    }

    /// Inverse of [`Composed2d::pack`].
    pub fn unpack(param: u64) -> Composed2d {
        Composed2d {
            rows: (param >> 32) as u32,
            grid_rows: (param >> 16) as u16,
            row_k: (param >> 8) as u8,
            col_k: param as u8,
        }
    }
}

/// The distribution pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistKind {
    /// Contiguous blocks of `ceil(n / P)` cells per processor.
    Block,
    /// Cell `t` on processor `t mod P`.
    Cyclic,
    /// Blocks of `k` cells dealt round-robin.
    BlockCyclic(usize),
    /// Row-major 2-D composition of per-axis BLOCK / CYCLIC(k) patterns.
    Composed2d(Composed2d),
}

impl DistKind {
    /// Stable numeric code used by the self-describing file format.
    pub fn code(self) -> u32 {
        match self {
            DistKind::Block => 0,
            DistKind::Cyclic => 1,
            DistKind::BlockCyclic(_) => 2,
            DistKind::Composed2d(_) => 3,
        }
    }

    /// Parameter accompanying [`DistKind::code`] (block size, packed 2-D
    /// shape, or 0).
    pub fn param(self) -> u64 {
        match self {
            DistKind::BlockCyclic(k) => k as u64,
            DistKind::Composed2d(c) => c.pack(),
            _ => 0,
        }
    }

    /// Inverse of [`DistKind::code`]/[`DistKind::param`].
    pub fn from_code(code: u32, param: u64) -> Option<DistKind> {
        match code {
            0 => Some(DistKind::Block),
            1 => Some(DistKind::Cyclic),
            2 if param > 0 => Some(DistKind::BlockCyclic(param as usize)),
            3 => {
                let c = Composed2d::unpack(param);
                (c.rows > 0 && c.grid_rows > 0).then_some(DistKind::Composed2d(c))
            }
            _ => None,
        }
    }
}

/// One axis of a composed (n-dimensional) distribution: `cells` template
/// cells placed over `procs` processors, BLOCK (`k == 0`) or CYCLIC(k)
/// (`k >= 1`). The formulas mirror the 1-D [`Distribution`] exactly, so
/// a single-axis composition places cells identically to the 1-D kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Axis {
    /// Axis extent in template cells.
    pub cells: usize,
    /// Processors along this axis.
    pub procs: usize,
    /// Block size: 0 = BLOCK, k >= 1 = CYCLIC(k).
    pub k: usize,
}

impl Axis {
    fn block_size(&self) -> usize {
        self.cells.div_ceil(self.procs).max(1)
    }

    /// Owning processor coordinate of axis cell `c` (`c < cells`).
    pub fn owner(&self, c: usize) -> usize {
        match self.k {
            0 => (c / self.block_size()).min(self.procs - 1),
            k => (c / k) % self.procs,
        }
    }

    /// Local slot of axis cell `c` on its owner; slots are dense and
    /// increase with `c`.
    pub fn local_index(&self, c: usize) -> usize {
        if self.k == 0 {
            c - self.owner(c) * self.block_size()
        } else {
            (c / (self.k * self.procs)) * self.k + c % self.k
        }
    }

    /// Number of axis cells owned by processor coordinate `p`.
    pub fn local_count(&self, p: usize) -> usize {
        if self.k == 0 {
            let b = self.block_size();
            let start = p * b;
            if p == self.procs - 1 {
                self.cells.saturating_sub(start)
            } else {
                self.cells.saturating_sub(start).min(b)
            }
        } else {
            let round = self.k * self.procs;
            let full_rounds = self.cells / round;
            let rem = self.cells % round;
            let mut count = full_rounds * self.k;
            let start = p * self.k;
            if rem > start {
                count += (rem - start).min(self.k);
            }
            count
        }
    }
}

/// Closed-form owner and local offset of the cell at `coord` under the
/// row-major composition of `axes` (the processor grid is row-major
/// too). Local offsets are dense per rank and increase with the
/// row-major linearization of `coord` — the invariant every d/streams
/// distribution must satisfy so that local storage order matches file
/// block order.
pub fn composed_place(axes: &[Axis], coord: &[usize]) -> (usize, usize) {
    debug_assert_eq!(axes.len(), coord.len());
    let mut rank = 0usize;
    let mut local = 0usize;
    for (ax, &c) in axes.iter().zip(coord) {
        let p = ax.owner(c);
        rank = rank * ax.procs + p;
        local = local * ax.local_count(p) + ax.local_index(c);
    }
    (rank, local)
}

/// Number of cells the (row-major) processor-grid rank `rank` owns under
/// the composition of `axes`.
pub fn composed_local_count(axes: &[Axis], mut rank: usize) -> usize {
    let mut count = 1usize;
    for ax in axes.iter().rev() {
        count *= ax.local_count(rank % ax.procs);
        rank /= ax.procs;
    }
    count
}

/// A template of `len` cells distributed over `nprocs` processors.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Distribution {
    len: usize,
    nprocs: usize,
    kind: DistKind,
}

impl Distribution {
    /// Create a distribution; validates parameters.
    pub fn new(len: usize, nprocs: usize, kind: DistKind) -> Result<Self, CollectionError> {
        if nprocs == 0 {
            return Err(CollectionError::BadDistribution(
                "nprocs must be at least 1".into(),
            ));
        }
        if let DistKind::BlockCyclic(0) = kind {
            return Err(CollectionError::BadDistribution(
                "BLOCK-CYCLIC block size must be at least 1".into(),
            ));
        }
        if let DistKind::Composed2d(c) = kind {
            if c.rows == 0 || c.grid_rows == 0 {
                return Err(CollectionError::BadDistribution(
                    "composed 2-D shape extents must be at least 1".into(),
                ));
            }
            if !len.is_multiple_of(c.rows as usize) {
                return Err(CollectionError::BadDistribution(format!(
                    "composed 2-D rows {} must divide template length {len}",
                    c.rows
                )));
            }
            if !nprocs.is_multiple_of(c.grid_rows as usize) {
                return Err(CollectionError::BadDistribution(format!(
                    "composed 2-D grid rows {} must divide processor count {nprocs}",
                    c.grid_rows
                )));
            }
        }
        Ok(Distribution { len, nprocs, kind })
    }

    /// The per-axis view of a composed pattern (`None` for 1-D kinds).
    /// Axes are `[rows, cols]`, row-major over cells and processors.
    pub fn axes(&self) -> Option<[Axis; 2]> {
        match self.kind {
            DistKind::Composed2d(c) => {
                let rows = c.rows as usize;
                let grid_rows = c.grid_rows as usize;
                Some([
                    Axis {
                        cells: rows,
                        procs: grid_rows,
                        k: c.row_k as usize,
                    },
                    Axis {
                        cells: self.len / rows,
                        procs: self.nprocs / grid_rows,
                        k: c.col_k as usize,
                    },
                ])
            }
            _ => None,
        }
    }

    /// Template length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the template is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The distribution pattern.
    pub fn kind(&self) -> DistKind {
        self.kind
    }

    /// Block size of the BLOCK pattern (`ceil(len / nprocs)`, min 1).
    fn block_size(&self) -> usize {
        self.len.div_ceil(self.nprocs).max(1)
    }

    /// Owning processor of template cell `t`.
    pub fn owner(&self, t: usize) -> Result<usize, CollectionError> {
        if t >= self.len {
            return Err(CollectionError::TemplateOverflow {
                template_index: t,
                template_len: self.len,
            });
        }
        Ok(self.place(t)?.0)
    }

    /// Closed-form placement of template cell `t`: its owning rank and
    /// its dense local offset on that rank, in O(1).
    pub fn place(&self, t: usize) -> Result<(usize, usize), CollectionError> {
        if t >= self.len {
            return Err(CollectionError::TemplateOverflow {
                template_index: t,
                template_len: self.len,
            });
        }
        Ok(match self.kind {
            DistKind::Block => {
                let owner = (t / self.block_size()).min(self.nprocs - 1);
                (owner, t - owner * self.block_size())
            }
            DistKind::Cyclic => (t % self.nprocs, t / self.nprocs),
            DistKind::BlockCyclic(k) => {
                ((t / k) % self.nprocs, (t / (k * self.nprocs)) * k + t % k)
            }
            DistKind::Composed2d(_) => {
                let axes = self.axes().expect("composed kind has axes");
                let cols = axes[1].cells;
                composed_place(&axes, &[t / cols, t % cols])
            }
        })
    }

    /// Local slot of template cell `t` on its owner. Local slots on each
    /// rank are dense, starting at 0, and increase with `t`.
    pub fn local_index(&self, t: usize) -> Result<usize, CollectionError> {
        if t >= self.len {
            return Err(CollectionError::TemplateOverflow {
                template_index: t,
                template_len: self.len,
            });
        }
        Ok(self.place(t)?.1)
    }

    /// Number of template cells owned by `rank`.
    pub fn local_count(&self, rank: usize) -> usize {
        match self.kind {
            DistKind::Block => {
                let b = self.block_size();
                let start = rank * b;
                if rank == self.nprocs - 1 {
                    // The last processor absorbs everything past its start
                    // (matches `owner`'s min-clamp).
                    self.len.saturating_sub(start)
                } else {
                    self.len.saturating_sub(start).min(b)
                }
            }
            DistKind::Cyclic => {
                let full = self.len / self.nprocs;
                full + usize::from(rank < self.len % self.nprocs)
            }
            DistKind::BlockCyclic(k) => {
                let round = k * self.nprocs;
                let full_rounds = self.len / round;
                let rem = self.len % round;
                let mut count = full_rounds * k;
                // Remaining cells deal blocks of k to ranks 0, 1, ...
                let start = rank * k;
                if rem > start {
                    count += (rem - start).min(k);
                }
                count
            }
            DistKind::Composed2d(_) => {
                composed_local_count(&self.axes().expect("composed kind has axes"), rank)
            }
        }
    }

    /// Template cells owned by `rank`, in local-slot order.
    pub fn local_cells(&self, rank: usize) -> Vec<usize> {
        // O(len) scan; distributions in this library are set up once per
        // stream, not in inner loops.
        (0..self.len)
            .filter(|&t| self.owner(t).expect("t < len") == rank)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_consistency(d: &Distribution) {
        // owner/local_index/local_count/local_cells must agree.
        let mut counts = vec![0usize; d.nprocs()];
        for t in 0..d.len() {
            let o = d.owner(t).unwrap();
            let l = d.local_index(t).unwrap();
            assert_eq!(l, counts[o], "cell {t}: local slots must be dense in order");
            counts[o] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            assert_eq!(count, d.local_count(r), "rank {r} count");
            let cells = d.local_cells(r);
            assert_eq!(cells.len(), count);
            for (slot, &t) in cells.iter().enumerate() {
                assert_eq!(d.owner(t).unwrap(), r);
                assert_eq!(d.local_index(t).unwrap(), slot);
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), d.len());
    }

    #[test]
    fn block_distribution_is_consistent() {
        for (len, np) in [(12, 4), (13, 4), (3, 4), (0, 2), (16, 1), (7, 3)] {
            check_consistency(&Distribution::new(len, np, DistKind::Block).unwrap());
        }
    }

    #[test]
    fn cyclic_distribution_is_consistent() {
        for (len, np) in [(12, 4), (13, 4), (3, 4), (0, 2), (16, 1), (7, 3)] {
            check_consistency(&Distribution::new(len, np, DistKind::Cyclic).unwrap());
        }
    }

    #[test]
    fn block_cyclic_distribution_is_consistent() {
        for (len, np, k) in [
            (12, 4, 2),
            (13, 4, 3),
            (3, 4, 2),
            (25, 3, 4),
            (16, 1, 5),
            (9, 2, 10),
        ] {
            check_consistency(&Distribution::new(len, np, DistKind::BlockCyclic(k)).unwrap());
        }
    }

    #[test]
    fn block_puts_contiguous_ranges_on_each_rank() {
        let d = Distribution::new(12, 3, DistKind::Block).unwrap();
        assert_eq!(d.local_cells(0), vec![0, 1, 2, 3]);
        assert_eq!(d.local_cells(1), vec![4, 5, 6, 7]);
        assert_eq!(d.local_cells(2), vec![8, 9, 10, 11]);
    }

    #[test]
    fn cyclic_deals_cells_round_robin() {
        let d = Distribution::new(7, 3, DistKind::Cyclic).unwrap();
        assert_eq!(d.local_cells(0), vec![0, 3, 6]);
        assert_eq!(d.local_cells(1), vec![1, 4]);
        assert_eq!(d.local_cells(2), vec![2, 5]);
    }

    #[test]
    fn block_cyclic_deals_blocks() {
        let d = Distribution::new(10, 2, DistKind::BlockCyclic(2)).unwrap();
        assert_eq!(d.local_cells(0), vec![0, 1, 4, 5, 8, 9]);
        assert_eq!(d.local_cells(1), vec![2, 3, 6, 7]);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Distribution::new(4, 0, DistKind::Block).is_err());
        assert!(Distribution::new(4, 2, DistKind::BlockCyclic(0)).is_err());
    }

    #[test]
    fn out_of_range_cells_are_rejected() {
        let d = Distribution::new(4, 2, DistKind::Block).unwrap();
        assert!(d.owner(4).is_err());
        assert!(d.local_index(4).is_err());
    }

    #[test]
    fn kind_codes_roundtrip() {
        for kind in [
            DistKind::Block,
            DistKind::Cyclic,
            DistKind::BlockCyclic(7),
            DistKind::Composed2d(Composed2d {
                rows: 6,
                grid_rows: 2,
                row_k: 0,
                col_k: 3,
            }),
        ] {
            assert_eq!(DistKind::from_code(kind.code(), kind.param()), Some(kind));
        }
        assert_eq!(DistKind::from_code(99, 0), None);
        assert_eq!(DistKind::from_code(2, 0), None);
        // A composed shape with a zero extent never decodes.
        assert_eq!(DistKind::from_code(3, 0), None);
    }

    fn composed(rows: u32, grid_rows: u16, row_k: u8, col_k: u8) -> DistKind {
        DistKind::Composed2d(Composed2d {
            rows,
            grid_rows,
            row_k,
            col_k,
        })
    }

    #[test]
    fn composed_2d_distribution_is_consistent() {
        for (len, np, kind) in [
            (24, 4, composed(4, 2, 0, 0)),  // (BLOCK, BLOCK) on 2x2
            (24, 4, composed(6, 2, 1, 0)),  // (CYCLIC, BLOCK)
            (36, 6, composed(6, 3, 2, 1)),  // (CYCLIC(2), CYCLIC)
            (30, 6, composed(5, 2, 0, 3)),  // (BLOCK, CYCLIC(3))
            (16, 1, composed(4, 1, 1, 1)),  // single rank
            (0, 4, composed(7, 2, 0, 0)),   // empty template
            (12, 12, composed(3, 3, 1, 2)), // more procs than a row
            (40, 4, composed(10, 4, 3, 0)), // 4x1 grid (column degenerate)
        ] {
            check_consistency(&Distribution::new(len, np, kind).unwrap());
        }
    }

    #[test]
    fn composed_2d_matches_manual_block_block_placement() {
        // 4x6 cells on a 2x2 grid, both axes BLOCK: quadrant layout.
        let d = Distribution::new(24, 4, composed(4, 2, 0, 0)).unwrap();
        assert_eq!(d.local_cells(0), vec![0, 1, 2, 6, 7, 8]);
        assert_eq!(d.local_cells(1), vec![3, 4, 5, 9, 10, 11]);
        assert_eq!(d.local_cells(2), vec![12, 13, 14, 18, 19, 20]);
        assert_eq!(d.local_cells(3), vec![15, 16, 17, 21, 22, 23]);
    }

    #[test]
    fn composed_2d_rejects_non_dividing_shapes() {
        assert!(Distribution::new(10, 4, composed(3, 2, 0, 0)).is_err());
        assert!(Distribution::new(12, 3, composed(3, 2, 0, 0)).is_err());
        assert!(Distribution::new(12, 2, composed(0, 1, 0, 0)).is_err());
    }

    #[test]
    fn single_axis_composition_matches_1d_kinds() {
        // A degenerate 1xN composition along the column axis must place
        // cells exactly like the corresponding 1-D distribution.
        for (k, kind_1d) in [
            (0u8, DistKind::Block),
            (1, DistKind::Cyclic),
            (3, DistKind::BlockCyclic(3)),
        ] {
            let c = Distribution::new(13, 3, composed(1, 1, 0, k)).unwrap();
            let d = Distribution::new(13, 3, kind_1d).unwrap();
            for t in 0..13 {
                assert_eq!(c.place(t).unwrap(), d.place(t).unwrap(), "cell {t}");
            }
        }
    }

    #[test]
    fn place_agrees_with_owner_and_local_index() {
        for kind in [
            DistKind::Block,
            DistKind::Cyclic,
            DistKind::BlockCyclic(2),
            composed(3, 2, 1, 0),
        ] {
            let d = Distribution::new(12, 4, kind).unwrap();
            for t in 0..12 {
                let (r, l) = d.place(t).unwrap();
                assert_eq!(r, d.owner(t).unwrap());
                assert_eq!(l, d.local_index(t).unwrap());
            }
        }
        assert!(Distribution::new(4, 2, DistKind::Block)
            .unwrap()
            .place(4)
            .is_err());
    }

    #[test]
    fn three_axis_composition_is_dense_and_ordered() {
        // The generic axis machinery is n-D even though the wire format
        // projects 2-D: exercise a 3-D composition directly.
        let axes = [
            Axis {
                cells: 4,
                procs: 2,
                k: 0,
            },
            Axis {
                cells: 6,
                procs: 3,
                k: 2,
            },
            Axis {
                cells: 5,
                procs: 2,
                k: 1,
            },
        ];
        let nprocs = 2 * 3 * 2;
        let mut counts = vec![0usize; nprocs];
        for x in 0..4 {
            for y in 0..6 {
                for z in 0..5 {
                    let (rank, local) = composed_place(&axes, &[x, y, z]);
                    assert!(rank < nprocs);
                    assert_eq!(local, counts[rank], "slots dense in row-major order");
                    counts[rank] += 1;
                }
            }
        }
        for (rank, &count) in counts.iter().enumerate() {
            assert_eq!(count, composed_local_count(&axes, rank), "rank {rank}");
        }
        assert_eq!(counts.iter().sum::<usize>(), 4 * 6 * 5);
    }

    #[test]
    fn more_procs_than_cells_leaves_some_ranks_empty() {
        let d = Distribution::new(2, 5, DistKind::Block).unwrap();
        check_consistency(&d);
        assert_eq!(d.local_count(0), 1);
        assert_eq!(d.local_count(1), 1);
        assert_eq!(d.local_count(4), 0);
    }
}
