//! Property tests on distribution / alignment / layout arithmetic: the
//! owner map must be a partition, local slots dense and monotone, and
//! descriptors must roundtrip, for arbitrary parameters.

use dstreams_collections::{
    Alignment, Composed2d, DistKind, Distribution, Layout, LayoutDescriptor,
};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = DistKind> {
    prop_oneof![
        Just(DistKind::Block),
        Just(DistKind::Cyclic),
        (1usize..6).prop_map(DistKind::BlockCyclic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn owner_map_is_a_partition(
        len in 0usize..200,
        nprocs in 1usize..9,
        kind in kind_strategy(),
    ) {
        let d = Distribution::new(len, nprocs, kind).unwrap();
        let mut counts = vec![0usize; nprocs];
        for t in 0..len {
            let o = d.owner(t).unwrap();
            prop_assert!(o < nprocs);
            prop_assert_eq!(d.local_index(t).unwrap(), counts[o]);
            counts[o] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, d.local_count(r));
            prop_assert_eq!(d.local_cells(r).len(), c);
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), len);
    }

    #[test]
    fn load_balance_is_within_one_block(
        len in 1usize..300,
        nprocs in 1usize..9,
        kind in kind_strategy(),
    ) {
        let d = Distribution::new(len, nprocs, kind).unwrap();
        let unit = match kind {
            DistKind::Block => len.div_ceil(nprocs),
            DistKind::Cyclic => 1,
            DistKind::BlockCyclic(k) => k,
            DistKind::Composed2d(_) => unreachable!("kind_strategy is 1-D"),
        };
        let counts: Vec<usize> = (0..nprocs).map(|r| d.local_count(r)).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= unit, "counts {counts:?} unit {unit}");
    }

    #[test]
    fn aligned_layouts_partition_their_elements(
        n in 0usize..60,
        nprocs in 1usize..6,
        kind in kind_strategy(),
        stride in 1usize..4,
        offset in 0usize..5,
    ) {
        let template = stride * n.max(1) + offset + 1;
        let dist = Distribution::new(template, nprocs, kind).unwrap();
        let align = Alignment::affine(stride, offset).unwrap();
        let layout = Layout::new(n, dist, align).unwrap();
        let mut seen = vec![false; n];
        for r in 0..nprocs {
            for e in layout.local_elements(r) {
                prop_assert!(!seen[e]);
                seen[e] = true;
                prop_assert_eq!(layout.owner(e).unwrap(), r);
            }
            prop_assert_eq!(layout.local_count(r), layout.local_elements(r).len());
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn descriptors_roundtrip(
        n in 0usize..60,
        nprocs in 1usize..6,
        kind in kind_strategy(),
        stride in 1usize..4,
        offset in 0usize..5,
    ) {
        let template = stride * n.max(1) + offset + 1;
        let dist = Distribution::new(template, nprocs, kind).unwrap();
        let align = Alignment::affine(stride, offset).unwrap();
        let layout = Layout::new(n, dist, align).unwrap();
        let bytes = layout.descriptor().encode();
        let d2 = LayoutDescriptor::decode(&bytes).unwrap();
        prop_assert_eq!(Layout::from_descriptor(&d2).unwrap(), layout);
    }

    #[test]
    fn composed_2d_owner_map_is_a_partition(
        rows in 1usize..6,
        cols in 0usize..8,
        grid_rows in 1usize..4,
        grid_cols in 1usize..4,
        row_k in 0u8..4,
        col_k in 0u8..4,
    ) {
        let len = rows * cols;
        let nprocs = grid_rows * grid_cols;
        let kind = DistKind::Composed2d(Composed2d {
            rows: rows as u32,
            grid_rows: grid_rows as u16,
            row_k,
            col_k,
        });
        let d = Distribution::new(len, nprocs, kind).unwrap();
        let mut counts = vec![0usize; nprocs];
        for t in 0..len {
            let (o, l) = d.place(t).unwrap();
            prop_assert!(o < nprocs);
            prop_assert_eq!(l, counts[o], "cell {}", t);
            counts[o] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, d.local_count(r));
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), len);

        // And the packed descriptor round-trips through the wire format.
        let layout = Layout::dense(len, nprocs, kind).unwrap();
        let bytes = layout.descriptor().encode();
        let d2 = LayoutDescriptor::decode(&bytes).unwrap();
        prop_assert_eq!(Layout::from_descriptor(&d2).unwrap(), layout);
    }

    #[test]
    fn renprocs_preserves_the_element_set(
        n in 0usize..60,
        p1 in 1usize..6,
        p2 in 1usize..6,
        kind in kind_strategy(),
    ) {
        let a = Layout::dense(n, p1, kind).unwrap();
        let b = a.with_nprocs(p2).unwrap();
        let mut ea: Vec<usize> = (0..p1).flat_map(|r| a.local_elements(r)).collect();
        let mut eb: Vec<usize> = (0..p2).flat_map(|r| b.local_elements(r)).collect();
        ea.sort_unstable();
        eb.sort_unstable();
        prop_assert_eq!(ea, eb);
    }
}
