//! # dstreams-pipeline — asynchronous split-collective d/stream I/O
//!
//! Deterministic compute/I-O overlap for the pC++/streams reproduction.
//! The wrappers in this crate drive the split-collective primitives of
//! `dstreams-core` ([`dstreams_core::OStream::write_begin`] /
//! [`dstreams_core::IStream::prefetch`]) so a program written against the
//! plain synchronous API gains overlap by changing nothing but the type:
//!
//! * [`OStream`] is a **write-behind flusher**: `write()` submits the
//!   record's collective flush and returns immediately, keeping up to
//!   [`PipelineOptions::depth`] flushes in flight per rank; when the
//!   pool is full, `write()` first retires the *oldest* flush (blocking
//!   this rank's virtual clock only for cost its compute since then did
//!   not already cover). `flush()`/`close()` drain the pool.
//! * [`IStream`] is a **read-ahead reader**: after every `read()` it
//!   immediately prefetches the next record, overlapping that record's
//!   collective read with consumption (extraction, compute) of the
//!   current one.
//!
//! Everything stays deterministic: submissions are ordinary SPMD
//! collectives, deferred costs queue on each rank's serial async queue
//! (`dstreams-machine`), and the files produced are **byte-identical**
//! to synchronous runs — pipelining moves virtual time, never bytes.
//!
//! ```
//! use dstreams_collections::{Collection, DistKind, Layout};
//! use dstreams_machine::{Machine, MachineConfig};
//! use dstreams_pfs::Pfs;
//! use dstreams_pipeline::{IStream, OStream, PipelineOptions};
//!
//! let pfs = Pfs::in_memory(2);
//! let p = pfs.clone();
//! Machine::run(MachineConfig::functional(2), move |ctx| {
//!     let layout = Layout::dense(8, 2, DistKind::Block).unwrap();
//!     let g = Collection::new(ctx, layout.clone(), |i| i as u32).unwrap();
//!
//!     let mut s = OStream::create(ctx, &p, &layout, "ckpt").unwrap();
//!     for _ in 0..4 {
//!         s.insert_collection(&g).unwrap();
//!         s.write().unwrap(); // returns while the flush is in flight
//!     }
//!     s.close().unwrap(); // drains the pool
//!
//!     let mut g2 = Collection::new(ctx, layout.clone(), |_| 0u32).unwrap();
//!     let mut r = IStream::open(ctx, &p, &layout, "ckpt").unwrap();
//!     for _ in 0..4 {
//!         r.read().unwrap(); // consumes the prefetched record
//!         r.extract_collection(&mut g2).unwrap();
//!     }
//!     r.close().unwrap();
//! })
//! .unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use dstreams_collections::{Collection, Layout};
use dstreams_core::{Extractor, Inserter, StreamData};
use dstreams_core::{PendingWrite, StreamError, StreamOptions};
use dstreams_machine::NodeCtx;
use dstreams_pfs::Pfs;

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Maximum split-collective flushes in flight per rank (the
    /// write-behind buffer-pool depth). `write()` blocks — retires the
    /// oldest flush — only when the pool is full. Must be at least 1.
    pub depth: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        // Double buffering: one record flushing while the next fills —
        // the paper-era default for overlapped checkpoint output. Deeper
        // pools only help when compute bursts are shorter than flushes.
        PipelineOptions { depth: 2 }
    }
}

/// A bounded window of in-flight split-collective flushes: the depth-N
/// generalization of the write-behind double buffer.
///
/// The window owns up to `depth` [`PendingWrite`]s. Before each new
/// submission the caller asks [`WriteWindow::make_room`], which retires
/// the *oldest* flush through the supplied closure only when the window
/// is full — a *forced retire*, the moment a producer actually stalls on
/// its own I/O. The window counts those stalls so pipelined writers
/// ([`OStream`] here, `AppendStream` in `dstreams-unbounded`) can report
/// backpressure: `forced_retires / submissions` is the fraction of
/// writes that found the window saturated.
#[derive(Debug)]
pub struct WriteWindow {
    pool: VecDeque<PendingWrite>,
    depth: usize,
    submissions: u64,
    forced_retires: u64,
}

impl WriteWindow {
    /// A window admitting up to `depth` concurrent flushes. Depth 0 is
    /// rejected — a zero-slot window could never accept a write.
    pub fn new(depth: usize) -> Result<WriteWindow, StreamError> {
        if depth == 0 {
            return Err(StreamError::violation(
                "open",
                "write-window depth must be at least 1",
            ));
        }
        Ok(WriteWindow {
            pool: VecDeque::with_capacity(depth),
            depth,
            submissions: 0,
            forced_retires: 0,
        })
    }

    /// The window's capacity.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Flushes currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pool.len()
    }

    /// Submissions admitted so far (one per [`WriteWindow::push`]).
    pub fn submissions(&self) -> u64 {
        self.submissions
    }

    /// How many submissions found the window full and had to retire the
    /// oldest flush first — each one a producer stall.
    pub fn forced_retires(&self) -> u64 {
        self.forced_retires
    }

    /// Ensure one slot is free, retiring the oldest flush through
    /// `retire` if the window is at depth. Returns whether a retire was
    /// forced.
    pub fn make_room(
        &mut self,
        retire: impl FnOnce(PendingWrite) -> Result<(), StreamError>,
    ) -> Result<bool, StreamError> {
        if self.pool.len() < self.depth {
            return Ok(false);
        }
        let oldest = self.pool.pop_front().expect("non-empty at depth");
        self.forced_retires += 1;
        retire(oldest)?;
        Ok(true)
    }

    /// Admit a submitted flush into the window. Call
    /// [`WriteWindow::make_room`] first; pushing past depth is a logic
    /// error.
    pub fn push(&mut self, pending: PendingWrite) {
        debug_assert!(self.pool.len() < self.depth, "push past window depth");
        self.submissions += 1;
        self.pool.push_back(pending);
    }

    /// Retire every in-flight flush, oldest first. Drain retires are not
    /// counted as forced — the producer chose to wait.
    pub fn drain(
        &mut self,
        mut retire: impl FnMut(PendingWrite) -> Result<(), StreamError>,
    ) -> Result<(), StreamError> {
        while let Some(p) = self.pool.pop_front() {
            retire(p)?;
        }
        Ok(())
    }
}

/// A write-behind output d/stream: the pipelined drop-in for
/// [`dstreams_core::OStream`].
pub struct OStream<'a> {
    inner: dstreams_core::OStream<'a>,
    window: WriteWindow,
}

impl<'a> OStream<'a> {
    /// Open a write-behind stream with default stream and pipeline
    /// options. Collective.
    pub fn create(
        ctx: &'a NodeCtx,
        pfs: &Pfs,
        layout: &Layout,
        name: &str,
    ) -> Result<Self, StreamError> {
        Self::create_with(
            ctx,
            pfs,
            layout,
            name,
            StreamOptions::default(),
            PipelineOptions::default(),
        )
    }

    /// [`OStream::create`] with explicit options. `pipeline.depth` of 0
    /// is rejected — a zero-slot pool could never accept a write.
    pub fn create_with(
        ctx: &'a NodeCtx,
        pfs: &Pfs,
        layout: &Layout,
        name: &str,
        opts: StreamOptions,
        pipeline: PipelineOptions,
    ) -> Result<Self, StreamError> {
        Ok(OStream {
            inner: dstreams_core::OStream::create_with(ctx, pfs, layout, name, opts)?,
            window: WriteWindow::new(pipeline.depth)?,
        })
    }

    /// The stream's layout.
    pub fn layout(&self) -> &Layout {
        self.inner.layout()
    }

    /// Flushes currently in flight.
    pub fn in_flight(&self) -> usize {
        self.window.in_flight()
    }

    /// How many writes found the pool full and stalled on the oldest
    /// flush (see [`WriteWindow::forced_retires`]).
    pub fn forced_retires(&self) -> u64 {
        self.window.forced_retires()
    }

    /// Records written (submitted) so far.
    pub fn records_written(&self) -> usize {
        self.inner.records_written()
    }

    /// Insert an entire collection: the Rust spelling of `s << g`.
    pub fn insert_collection<T: StreamData>(
        &mut self,
        c: &Collection<T>,
    ) -> Result<(), StreamError> {
        self.inner.insert_collection(c)
    }

    /// Insert a projection of each element (see
    /// [`dstreams_core::OStream::insert_with`]).
    pub fn insert_with<T>(
        &mut self,
        c: &Collection<T>,
        f: impl Fn(&T, &mut Inserter<'_>),
    ) -> Result<(), StreamError> {
        self.inner.insert_with(c, f)
    }

    /// Write the current interleave group — asynchronously. The record's
    /// bytes are on the file when this returns, but the flush's service
    /// cost elapses behind subsequent compute. Blocks (retires the
    /// oldest flush) only when the pool is at depth. Collective.
    pub fn write(&mut self) -> Result<(), StreamError> {
        let inner = &mut self.inner;
        self.window.make_room(|p| inner.write_end(p))?;
        let pending = inner.write_begin()?;
        self.window.push(pending);
        Ok(())
    }

    /// Retire every in-flight flush, oldest first. After this the file's
    /// virtual-time state is identical to a synchronous stream's.
    pub fn flush(&mut self) -> Result<(), StreamError> {
        let inner = &mut self.inner;
        self.window.drain(|p| inner.write_end(p))
    }

    /// Drain the pool and close the stream.
    pub fn close(mut self) -> Result<(), StreamError> {
        self.flush()?;
        self.inner.close()
    }
}

/// A read-ahead input d/stream: the pipelined drop-in for
/// [`dstreams_core::IStream`].
///
/// Every `read` immediately starts the next record's collective read, so
/// extraction and compute on the current record hide the next one's I/O
/// cost. The first `read` of a stream is necessarily synchronous (there
/// was nothing to prefetch behind); call [`IStream::start`] right after
/// opening to begin the first read-ahead before any compute.
pub struct IStream<'a> {
    inner: dstreams_core::IStream<'a>,
    /// Which consume mode the auto-prefetch uses (set by the first
    /// `read`/`unsorted_read`, or by `start`).
    sorted: Option<bool>,
}

impl<'a> IStream<'a> {
    /// Open a read-ahead stream. Collective.
    pub fn open(
        ctx: &'a NodeCtx,
        pfs: &Pfs,
        layout: &Layout,
        name: &str,
    ) -> Result<Self, StreamError> {
        Ok(IStream {
            inner: dstreams_core::IStream::open(ctx, pfs, layout, name)?,
            sorted: None,
        })
    }

    /// The reader layout.
    pub fn layout(&self) -> &Layout {
        self.inner.layout()
    }

    /// Whether the file has another record after the current position.
    pub fn at_end(&self) -> bool {
        !self.inner.prefetch_in_flight() && self.inner.at_end()
    }

    /// Begin the first read-ahead (for `sorted` routing or not) without
    /// consuming anything — call between `open` and the first chunk of
    /// compute so even the first `read` finds its record in flight.
    pub fn start(&mut self, sorted: bool) -> Result<bool, StreamError> {
        self.sorted = Some(sorted);
        if sorted {
            self.inner.prefetch()
        } else {
            self.inner.prefetch_unsorted()
        }
    }

    /// The d/stream `read` primitive with read-ahead: consume the
    /// prefetched record if one is in flight (stalling only for cost not
    /// hidden behind compute since the prefetch), then immediately start
    /// prefetching the next. Collective.
    pub fn read(&mut self) -> Result<(), StreamError> {
        self.read_impl(true)
    }

    /// The d/stream `unsortedRead` primitive with read-ahead.
    pub fn unsorted_read(&mut self) -> Result<(), StreamError> {
        self.read_impl(false)
    }

    fn read_impl(&mut self, sorted: bool) -> Result<(), StreamError> {
        if self.sorted == Some(!sorted) && self.inner.prefetch_in_flight() {
            return Err(StreamError::violation(
                if sorted { "read" } else { "unsorted_read" },
                "read-ahead already committed to the other read mode",
            ));
        }
        self.sorted = Some(sorted);
        if sorted {
            self.inner.read()?;
            if !self.inner.at_end() {
                self.inner.prefetch()?;
            }
        } else {
            self.inner.unsorted_read()?;
            if !self.inner.at_end() {
                self.inner.prefetch_unsorted()?;
            }
        }
        Ok(())
    }

    /// Extract an entire collection: the Rust spelling of `s >> g`.
    pub fn extract_collection<T: StreamData>(
        &mut self,
        c: &mut Collection<T>,
    ) -> Result<(), StreamError> {
        self.inner.extract_collection(c)
    }

    /// Extract a projection of each element (see
    /// [`dstreams_core::IStream::extract_with`]).
    pub fn extract_with<T>(
        &mut self,
        c: &mut Collection<T>,
        f: impl Fn(&mut T, &mut Extractor<'_>) -> Result<(), StreamError>,
    ) -> Result<(), StreamError> {
        self.inner.extract_with(c, f)
    }

    /// Close the stream, draining any read-ahead in flight.
    pub fn close(self) -> Result<(), StreamError> {
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_collections::DistKind;
    use dstreams_machine::{Machine, MachineConfig};
    use dstreams_pfs::{Backend, DiskModel, OpenMode};

    fn read_file_bytes(pfs: &Pfs, name: &str) -> Vec<u8> {
        let size = pfs.file_size(name).unwrap() as usize;
        let p = pfs.clone();
        let name = name.to_string();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p.open(false, &name, OpenMode::Read).unwrap();
            let mut buf = vec![0u8; size];
            fh.read_at(ctx, 0, &mut buf).unwrap();
            buf
        })
        .unwrap()[0]
            .clone()
    }

    #[test]
    fn pipelined_file_matches_synchronous_file() {
        let write = |pipelined: bool| {
            let pfs = Pfs::in_memory(3);
            let p = pfs.clone();
            Machine::run(MachineConfig::functional(3), move |ctx| {
                let layout = Layout::dense(9, 3, DistKind::Cyclic).unwrap();
                let c = Collection::new(ctx, layout.clone(), |g| vec![g as u8; g + 1]).unwrap();
                if pipelined {
                    let mut s = OStream::create(ctx, &p, &layout, "f").unwrap();
                    for _ in 0..5 {
                        s.insert_collection(&c).unwrap();
                        s.write().unwrap();
                    }
                    s.close().unwrap();
                } else {
                    let mut s = dstreams_core::OStream::create(ctx, &p, &layout, "f").unwrap();
                    for _ in 0..5 {
                        s.insert_collection(&c).unwrap();
                        s.write().unwrap();
                    }
                    s.close().unwrap();
                }
            })
            .unwrap();
            read_file_bytes(&pfs, "f")
        };
        assert_eq!(write(false), write(true));
    }

    #[test]
    fn pipelining_composes_with_collective_buffering() {
        use dstreams_machine::CollectiveConfig;
        // Write-behind flushes routed through aggregator ranks must still
        // produce the synchronous direct-path file, byte for byte, and a
        // read-ahead reader under the same aggregated configuration must
        // reproduce every element.
        let write = |collective: Option<CollectiveConfig>, pipelined: bool| {
            let pfs = Pfs::in_memory(4);
            let p = pfs.clone();
            let mut cfg = MachineConfig::functional(4);
            if let Some(cc) = collective {
                cfg = cfg.with_collective(cc);
            }
            Machine::run(cfg, move |ctx| {
                let layout = Layout::dense(12, 4, DistKind::Cyclic).unwrap();
                let c = Collection::new(ctx, layout.clone(), |g| vec![g as u8; g % 5]).unwrap();
                if pipelined {
                    let mut s = OStream::create(ctx, &p, &layout, "f").unwrap();
                    for _ in 0..5 {
                        s.insert_collection(&c).unwrap();
                        s.write().unwrap();
                    }
                    s.close().unwrap();

                    let mut g = Collection::new(ctx, layout.clone(), |_| Vec::<u8>::new()).unwrap();
                    let mut r = IStream::open(ctx, &p, &layout, "f").unwrap();
                    r.start(true).unwrap();
                    for _ in 0..5 {
                        r.read().unwrap();
                        r.extract_collection(&mut g).unwrap();
                        for (gid, v) in g.iter() {
                            assert_eq!(v, &vec![gid as u8; gid % 5]);
                        }
                    }
                    r.close().unwrap();
                } else {
                    let mut s = dstreams_core::OStream::create(ctx, &p, &layout, "f").unwrap();
                    for _ in 0..5 {
                        s.insert_collection(&c).unwrap();
                        s.write().unwrap();
                    }
                    s.close().unwrap();
                }
            })
            .unwrap();
            read_file_bytes(&pfs, "f")
        };
        let cc = CollectiveConfig {
            aggregators: 2,
            stripe_align: true,
        };
        let base = write(None, false);
        assert_eq!(base, write(Some(cc), true), "aggregated write-behind");
        assert_eq!(base, write(Some(cc), false), "aggregated synchronous");
    }

    #[test]
    fn write_behind_hides_flush_cost_behind_compute() {
        use dstreams_machine::VTime;
        let run = |pipelined: bool| {
            let mut model = DiskModel::instant();
            model.coll_latency = VTime::from_millis(10);
            let pfs = Pfs::new(2, model, Backend::Memory);
            let p = pfs.clone();
            let times = Machine::run(MachineConfig::functional(2), move |ctx| {
                let layout = Layout::dense(8, 2, DistKind::Block).unwrap();
                let c = Collection::new(ctx, layout.clone(), |g| g as u64).unwrap();
                let t0 = ctx.now();
                if pipelined {
                    let mut s = OStream::create(ctx, &p, &layout, "f").unwrap();
                    for _ in 0..8 {
                        s.insert_collection(&c).unwrap();
                        s.write().unwrap();
                        ctx.advance(VTime::from_millis(12)); // compute
                    }
                    s.close().unwrap();
                } else {
                    let mut s = dstreams_core::OStream::create(ctx, &p, &layout, "f").unwrap();
                    for _ in 0..8 {
                        s.insert_collection(&c).unwrap();
                        s.write().unwrap();
                        ctx.advance(VTime::from_millis(12)); // compute
                    }
                    s.close().unwrap();
                }
                ctx.now().saturating_since(t0)
            })
            .unwrap();
            times[0]
        };
        let sync = run(false);
        let pipe = run(true);
        // Compute (12 ms) covers each flush's collective cost (>= 10 ms
        // latency + size-dependent terms): the pipelined run must save
        // most of the flush time per record.
        assert!(
            pipe + VTime::from_millis(8 * 8) <= sync,
            "pipelined {pipe} should be well under synchronous {sync}"
        );
    }

    #[test]
    fn read_ahead_roundtrips_and_hides_read_cost() {
        use dstreams_machine::VTime;
        let mut model = DiskModel::instant();
        model.coll_latency = VTime::from_millis(10);
        let pfs = Pfs::new(2, model, Backend::Memory);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let layout = Layout::dense(8, 2, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u64).unwrap();
            let mut s = dstreams_core::OStream::create(ctx, &p, &layout, "f").unwrap();
            for _ in 0..6 {
                s.insert_collection(&c).unwrap();
                s.write().unwrap();
            }
            s.close().unwrap();

            let sync_t = {
                let t0 = ctx.now();
                let mut g = Collection::new(ctx, layout.clone(), |_| 0u64).unwrap();
                let mut r = dstreams_core::IStream::open(ctx, &p, &layout, "f").unwrap();
                for _ in 0..6 {
                    r.read().unwrap();
                    r.extract_collection(&mut g).unwrap();
                    ctx.advance(VTime::from_millis(12)); // consume/compute
                }
                r.close().unwrap();
                ctx.now().saturating_since(t0)
            };
            let pipe_t = {
                let t0 = ctx.now();
                let mut g = Collection::new(ctx, layout.clone(), |_| 0u64).unwrap();
                let mut r = IStream::open(ctx, &p, &layout, "f").unwrap();
                r.start(true).unwrap();
                for i in 0..6 {
                    r.read().unwrap();
                    r.extract_collection(&mut g).unwrap();
                    ctx.advance(VTime::from_millis(12)); // consume/compute
                    for (gid, v) in g.iter() {
                        assert_eq!(*v, gid as u64, "round {i}");
                    }
                }
                assert!(r.at_end());
                r.close().unwrap();
                ctx.now().saturating_since(t0)
            };
            assert!(
                pipe_t + VTime::from_millis(5 * 8) <= sync_t,
                "read-ahead {pipe_t} should be well under synchronous {sync_t}"
            );
        })
        .unwrap();
    }

    #[test]
    fn pool_depth_bounds_in_flight_writes() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let layout = Layout::dense(4, 2, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u8).unwrap();
            let mut s = OStream::create_with(
                ctx,
                &p,
                &layout,
                "f",
                StreamOptions::default(),
                PipelineOptions { depth: 2 },
            )
            .unwrap();
            for round in 0..5 {
                s.insert_collection(&c).unwrap();
                s.write().unwrap();
                assert!(s.in_flight() <= 2, "round {round}: {}", s.in_flight());
            }
            assert_eq!(s.in_flight(), 2);
            // Writes 3..5 each found the window full: three forced
            // retires; the drain in flush() is voluntary and not counted.
            assert_eq!(s.forced_retires(), 3);
            s.flush().unwrap();
            assert_eq!(s.in_flight(), 0);
            assert_eq!(s.forced_retires(), 3);
            s.close().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn zero_depth_is_rejected() {
        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let layout = Layout::dense(2, 1, DistKind::Block).unwrap();
            let r = OStream::create_with(
                ctx,
                &p,
                &layout,
                "f",
                StreamOptions::default(),
                PipelineOptions { depth: 0 },
            );
            assert!(matches!(
                r,
                Err(StreamError::StateViolation { op: "open", .. })
            ));
        })
        .unwrap();
    }
}
