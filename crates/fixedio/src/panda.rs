//! A Panda-style array I/O interface.
//!
//! The paper's related work (§5): "Panda supports more general HPF-style
//! array distributions and interleaving, as does pC++/streams" — but for
//! arrays of *fixed-size* elements. This module reproduces that level of
//! capability as the second comparator:
//!
//! * any HPF distribution (BLOCK / CYCLIC / BLOCK-CYCLIC) and affine
//!   alignment, recorded in a schema header (Panda's "logical schema");
//! * multiple fields per element, interleaved per element in the file
//!   (Panda's physical schemas for multidimensional arrays);
//! * **fixed element sizes only**: offsets are *computed* from the schema,
//!   there is no per-element size table — which is precisely why this
//!   class of library cannot hold particle lists of varying length.
//!
//! Reads work under any reader distribution: because sizes are fixed,
//! every rank can compute its elements' file positions directly and fetch
//! them with positioned reads (coalescing contiguous runs).

use dstreams_collections::{Collection, Layout, LayoutDescriptor};
use dstreams_machine::NodeCtx;
use dstreams_pfs::{OpenMode, Pfs};

use crate::FixedIoError;

/// Magic for Panda-style files.
const MAGIC: [u8; 8] = *b"PANDARR\0";

/// One field of the logical schema: a fixed number of bytes per element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaField {
    /// Field name (schema identity; checked on read).
    pub name: String,
    /// Bytes per element for this field.
    pub elem_size: usize,
}

/// The logical schema: field list, applied per element, interleaved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Fields in file order.
    pub fields: Vec<SchemaField>,
}

impl Schema {
    /// Bytes per element across all fields.
    pub fn elem_bytes(&self) -> usize {
        self.fields.iter().map(|f| f.elem_size).sum()
    }

    /// Byte offset of field `k` within an element.
    pub fn field_offset(&self, k: usize) -> usize {
        self.fields[..k].iter().map(|f| f.elem_size).sum()
    }

    fn encode(&self) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for f in &self.fields {
            v.extend_from_slice(&(f.name.len() as u32).to_le_bytes());
            v.extend_from_slice(f.name.as_bytes());
            v.extend_from_slice(&(f.elem_size as u64).to_le_bytes());
        }
        v
    }

    fn decode(b: &[u8]) -> Option<(Schema, usize)> {
        let mut pos = 0usize;
        let nf = u32::from_le_bytes(b.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let mut fields = Vec::with_capacity(nf);
        for _ in 0..nf {
            let nl = u32::from_le_bytes(b.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            let name = String::from_utf8(b.get(pos..pos + nl)?.to_vec()).ok()?;
            pos += nl;
            let elem_size = u64::from_le_bytes(b.get(pos..pos + 8)?.try_into().ok()?) as usize;
            pos += 8;
            fields.push(SchemaField { name, elem_size });
        }
        Some((Schema { fields }, pos))
    }
}

/// Write a collection under `schema`: for each element, each field's bytes
/// in schema order (interleaved), elements in node order; the file header
/// records the writer's layout and the schema.
///
/// `encode_field(k, element)` must produce exactly
/// `schema.fields[k].elem_size` bytes.
pub fn write_array<T>(
    ctx: &NodeCtx,
    pfs: &Pfs,
    file: &str,
    c: &Collection<T>,
    schema: &Schema,
    encode_field: impl Fn(usize, &T) -> Vec<u8>,
) -> Result<(), FixedIoError> {
    let elem_bytes = schema.elem_bytes();
    let mut block = Vec::with_capacity(c.local_len() * elem_bytes + 128);
    if ctx.is_root() {
        block.extend_from_slice(&MAGIC);
        block.extend_from_slice(&c.layout().descriptor().encode());
        block.extend_from_slice(&schema.encode());
    }
    for (gid, e) in c.iter() {
        for (k, f) in schema.fields.iter().enumerate() {
            let bytes = encode_field(k, e);
            if bytes.len() != f.elem_size {
                return Err(FixedIoError::SizeViolation {
                    element: gid,
                    declared: f.elem_size,
                    actual: bytes.len(),
                });
            }
            block.extend_from_slice(&bytes);
        }
    }
    ctx.charge_memcpy(block.len());
    let fh = pfs.open(ctx.is_root(), file, OpenMode::Create)?;
    fh.write_ordered(ctx, &block)?;
    Ok(())
}

/// Header info recovered from a Panda-style file.
struct FileInfo {
    writer_layout: Layout,
    schema: Schema,
    data_base: u64,
}

fn read_header(ctx: &NodeCtx, pfs: &Pfs, file: &str) -> Result<FileInfo, FixedIoError> {
    let fh = pfs.open(false, file, OpenMode::Read)?;
    // Rank 0 reads a generous header prefix and broadcasts it.
    let head = if ctx.is_root() {
        let want = (fh.len() as usize).min(4096);
        let mut buf = vec![0u8; want];
        match fh.read_at(ctx, 0, &mut buf) {
            Ok(()) => buf,
            Err(_) => Vec::new(),
        }
    } else {
        Vec::new()
    };
    let head = ctx.broadcast(0, head)?;
    if head.len() < 8 + LayoutDescriptor::WIRE_LEN || head[..8] != MAGIC {
        return Err(FixedIoError::NotAnArrayFile(file.to_string()));
    }
    let desc = LayoutDescriptor::decode(&head[8..8 + LayoutDescriptor::WIRE_LEN])
        .ok_or_else(|| FixedIoError::NotAnArrayFile(file.to_string()))?;
    let writer_layout = Layout::from_descriptor(&desc)?;
    let (schema, schema_len) = Schema::decode(&head[8 + LayoutDescriptor::WIRE_LEN..])
        .ok_or_else(|| FixedIoError::NotAnArrayFile(file.to_string()))?;
    Ok(FileInfo {
        writer_layout,
        schema,
        data_base: (8 + LayoutDescriptor::WIRE_LEN + schema_len) as u64,
    })
}

/// Read one named field of every local element into the collection, under
/// *any* reader layout (offsets are computed from the writer layout in the
/// header — fixed sizes make a size table unnecessary).
pub fn read_field<T>(
    ctx: &NodeCtx,
    pfs: &Pfs,
    file: &str,
    c: &mut Collection<T>,
    field_name: &str,
    decode_field: impl Fn(&mut T, &[u8]),
) -> Result<(), FixedIoError> {
    let info = read_header(ctx, pfs, file)?;
    if info.writer_layout.len() != c.len() {
        return Err(FixedIoError::CountMismatch {
            file: info.writer_layout.len(),
            collection: c.len(),
        });
    }
    let k = info
        .schema
        .fields
        .iter()
        .position(|f| f.name == field_name)
        .ok_or_else(|| FixedIoError::UnknownField(field_name.to_string()))?;
    let elem_bytes = info.schema.elem_bytes();
    let field_off = info.schema.field_offset(k);
    let field_size = info.schema.fields[k].elem_size;

    // File position of each element: node-order rank blocks, elements in
    // the writer's local order within each block.
    let mut elem_pos = vec![0u64; c.len()];
    let mut cursor = info.data_base;
    for w in 0..info.writer_layout.nprocs() {
        for gid in info.writer_layout.local_elements(w) {
            elem_pos[gid] = cursor;
            cursor += elem_bytes as u64;
        }
    }

    let fh = pfs.open(false, file, OpenMode::Read)?;
    // Fetch each local element's field; coalesce adjacent elements into
    // runs to keep the op count honest for block-on-block reads.
    let ids = c.global_ids().to_vec();
    let mut runs: Vec<(u64, Vec<usize>)> = Vec::new(); // (start offset, slots)
    for (slot, &gid) in ids.iter().enumerate() {
        let off = elem_pos[gid] + field_off as u64;
        match runs.last_mut() {
            // Coalescing applies when the *whole elements* are adjacent
            // and the field occupies the full element (single-field
            // schemas); otherwise each field read stands alone.
            Some((start, slots))
                if info.schema.fields.len() == 1
                    && *start + (slots.len() * elem_bytes) as u64 == off =>
            {
                slots.push(slot);
            }
            _ => runs.push((off, vec![slot])),
        }
    }
    for (start, slots) in &runs {
        let len = if info.schema.fields.len() == 1 {
            slots.len() * elem_bytes
        } else {
            field_size
        };
        let mut buf = vec![0u8; len];
        fh.read_at(ctx, *start, &mut buf)?;
        if info.schema.fields.len() == 1 {
            for (i, &slot) in slots.iter().enumerate() {
                decode_field(
                    &mut c.local_mut()[slot],
                    &buf[i * elem_bytes..(i + 1) * elem_bytes],
                );
            }
        } else {
            decode_field(&mut c.local_mut()[slots[0]], &buf);
        }
    }
    ctx.barrier()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_collections::DistKind;
    use dstreams_machine::{Machine, MachineConfig};

    #[derive(Debug, Default, Clone, PartialEq)]
    struct Cell {
        density: f64,
        pressure: f64,
    }

    fn schema() -> Schema {
        Schema {
            fields: vec![
                SchemaField {
                    name: "density".into(),
                    elem_size: 8,
                },
                SchemaField {
                    name: "pressure".into(),
                    elem_size: 8,
                },
            ],
        }
    }

    fn enc(k: usize, e: &Cell) -> Vec<u8> {
        match k {
            0 => e.density.to_le_bytes().to_vec(),
            _ => e.pressure.to_le_bytes().to_vec(),
        }
    }

    #[test]
    fn interleaved_fields_roundtrip_across_distributions() {
        let pfs = Pfs::in_memory(4);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(4), move |ctx| {
            let layout = Layout::dense(11, 4, DistKind::Cyclic).unwrap();
            let c = Collection::new(ctx, layout, |i| Cell {
                density: i as f64 + 0.25,
                pressure: 100.0 + i as f64,
            })
            .unwrap();
            write_array(ctx, &p, "panda", &c, &schema(), enc).unwrap();
        })
        .unwrap();

        let p = pfs.clone();
        Machine::run(MachineConfig::functional(3), move |ctx| {
            let layout = Layout::dense(11, 3, DistKind::Block).unwrap();
            let mut c = Collection::new(ctx, layout, |_| Cell::default()).unwrap();
            read_field(ctx, &p, "panda", &mut c, "pressure", |e, b| {
                e.pressure = f64::from_le_bytes(b.try_into().expect("8 bytes"));
            })
            .unwrap();
            read_field(ctx, &p, "panda", &mut c, "density", |e, b| {
                e.density = f64::from_le_bytes(b.try_into().expect("8 bytes"));
            })
            .unwrap();
            for (gid, e) in c.iter() {
                assert_eq!(e.density, gid as f64 + 0.25);
                assert_eq!(e.pressure, 100.0 + gid as f64);
            }
        })
        .unwrap();
    }

    #[test]
    fn fields_are_interleaved_per_element_in_the_file() {
        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let layout = Layout::dense(2, 1, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout, |i| Cell {
                density: i as f64,
                pressure: 10.0 + i as f64,
            })
            .unwrap();
            write_array(ctx, &p, "il", &c, &schema(), enc).unwrap();
            // Data region: e0.density, e0.pressure, e1.density, e1.pressure.
            let fh = p.open(false, "il", OpenMode::Read).unwrap();
            let mut tail = vec![0u8; 32];
            fh.read_at(ctx, fh.len() - 32, &mut tail).unwrap();
            let vals: Vec<f64> = tail
                .chunks_exact(8)
                .map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
                .collect();
            assert_eq!(vals, vec![0.0, 10.0, 1.0, 11.0]);
        })
        .unwrap();
    }

    #[test]
    fn unknown_fields_and_wrong_sizes_are_rejected() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let layout = Layout::dense(4, 2, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |i| Cell {
                density: i as f64,
                pressure: 0.0,
            })
            .unwrap();
            write_array(ctx, &p, "s", &c, &schema(), enc).unwrap();
            let mut back = Collection::new(ctx, layout.clone(), |_| Cell::default()).unwrap();
            assert!(matches!(
                read_field(ctx, &p, "s", &mut back, "velocity", |_, _| {}),
                Err(FixedIoError::UnknownField(_))
            ));
            // Encoder producing the wrong width is caught at write time.
            let err = write_array(ctx, &p, "bad", &c, &schema(), |_, _| vec![1, 2, 3]).unwrap_err();
            assert!(matches!(err, FixedIoError::SizeViolation { .. }));
        })
        .unwrap();
    }
}
