//! # dstreams-fixedio — the paper's comparator class of libraries
//!
//! The related-work section of *pC++/streams* (§5) situates the library
//! against contemporaries that "support I/O on distributed arrays of
//! fixed-sized elements": PetSc/Chameleon (block-distributed arrays) and
//! Panda (general HPF distributions plus interleaving). This crate
//! implements both capability levels as working baselines:
//!
//! * [`chameleon`] — BLOCK-only arrays, one caller-declared element size,
//!   no metadata beyond a fixed header;
//! * [`panda`] — any HPF distribution, multi-field interleaved schemas,
//!   offsets *computed* from the fixed sizes.
//!
//! Both are genuinely useful where their assumptions hold — and both are
//! structurally unable to store the variable-sized elements (particle
//! lists, adaptive rows, trees) that d/streams' per-element size
//! bookkeeping exists for. `tests/baseline_comparison.rs` at the workspace
//! root demonstrates the boundary in both directions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chameleon;
pub mod panda;

use std::fmt;

use dstreams_collections::CollectionError;
use dstreams_machine::MachineError;
use dstreams_pfs::PfsError;

/// Errors raised by the fixed-size baselines.
#[derive(Debug)]
pub enum FixedIoError {
    /// The Chameleon-style interface accepts BLOCK placement only.
    BlockOnly,
    /// An element (or encoder) violated the declared fixed size — the
    /// failure mode that makes these formats unusable for variable-sized
    /// data.
    SizeViolation {
        /// Offending element's global index (0 when file-level).
        element: usize,
        /// Declared bytes.
        declared: usize,
        /// Actual bytes.
        actual: usize,
    },
    /// Element counts disagree between file and collection.
    CountMismatch {
        /// Count in the file.
        file: usize,
        /// Count in the collection.
        collection: usize,
    },
    /// The file is not in this baseline's format.
    NotAnArrayFile(String),
    /// A named schema field does not exist.
    UnknownField(String),
    /// Underlying PFS failure.
    Pfs(PfsError),
    /// Underlying collection failure.
    Collection(CollectionError),
    /// Underlying machine failure.
    Machine(MachineError),
}

impl fmt::Display for FixedIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedIoError::BlockOnly => {
                write!(f, "this baseline supports BLOCK-distributed arrays only")
            }
            FixedIoError::SizeViolation {
                element,
                declared,
                actual,
            } => write!(
                f,
                "element {element}: {actual} bytes violates the fixed size {declared} \
                 (this format has no per-element size table)"
            ),
            FixedIoError::CountMismatch { file, collection } => {
                write!(f, "file holds {file} elements, collection {collection}")
            }
            FixedIoError::NotAnArrayFile(name) => {
                write!(f, "{name:?} is not a fixed-array file")
            }
            FixedIoError::UnknownField(name) => write!(f, "no schema field named {name:?}"),
            FixedIoError::Pfs(e) => write!(f, "pfs error: {e}"),
            FixedIoError::Collection(e) => write!(f, "collection error: {e}"),
            FixedIoError::Machine(e) => write!(f, "machine error: {e}"),
        }
    }
}

impl std::error::Error for FixedIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FixedIoError::Pfs(e) => Some(e),
            FixedIoError::Collection(e) => Some(e),
            FixedIoError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PfsError> for FixedIoError {
    fn from(e: PfsError) -> Self {
        FixedIoError::Pfs(e)
    }
}

impl From<CollectionError> for FixedIoError {
    fn from(e: CollectionError) -> Self {
        FixedIoError::Collection(e)
    }
}

impl From<MachineError> for FixedIoError {
    fn from(e: MachineError) -> Self {
        FixedIoError::Machine(e)
    }
}
