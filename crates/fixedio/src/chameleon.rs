//! A PetSc/Chameleon-style array I/O interface.
//!
//! The paper's related work (§5): "PetSc/Chameleon supports I/O on
//! block-distributed arrays" of *fixed-size* elements. This module
//! reproduces that interface — `PltFileWrite`/`PltFileRead` in spirit — as
//! a comparator for d/streams:
//!
//! * BLOCK distribution only;
//! * every element the same, caller-declared size;
//! * no metadata in the file beyond a tiny fixed header (element size +
//!   count) — the reader must already know the data's shape;
//! * reading redistributes over a (possibly different) processor count,
//!   but only BLOCK → BLOCK.
//!
//! What it *cannot* do — variable-sized elements, CYCLIC layouts,
//! interleaving — is exactly the gap pC++/streams fills (see
//! `tests/baseline_comparison.rs` at the workspace root).

use dstreams_collections::{Collection, DistKind, Layout};
use dstreams_machine::NodeCtx;
use dstreams_pfs::{OpenMode, Pfs};

use crate::FixedIoError;

/// Magic for Chameleon-style files.
const MAGIC: [u8; 8] = *b"CHAMARR\0";
/// Header: magic + element size + element count.
const HEADER_LEN: usize = 8 + 8 + 8;

/// Write a BLOCK-distributed collection of fixed-size elements.
///
/// `encode` must produce exactly `elem_size` bytes for every element;
/// anything else is an error (this baseline has no size table to record
/// variation — the paper's point).
pub fn write_block_array<T>(
    ctx: &NodeCtx,
    pfs: &Pfs,
    file: &str,
    c: &Collection<T>,
    elem_size: usize,
    encode: impl Fn(&T) -> Vec<u8>,
) -> Result<(), FixedIoError> {
    if c.layout().distribution().kind() != DistKind::Block
        || c.layout().alignment() != dstreams_collections::Alignment::identity()
    {
        return Err(FixedIoError::BlockOnly);
    }
    let mut block = Vec::with_capacity(HEADER_LEN + c.local_len() * elem_size);
    if ctx.is_root() {
        block.extend_from_slice(&MAGIC);
        block.extend_from_slice(&(elem_size as u64).to_le_bytes());
        block.extend_from_slice(&(c.len() as u64).to_le_bytes());
    }
    for (gid, e) in c.iter() {
        let bytes = encode(e);
        if bytes.len() != elem_size {
            return Err(FixedIoError::SizeViolation {
                element: gid,
                declared: elem_size,
                actual: bytes.len(),
            });
        }
        block.extend_from_slice(&bytes);
    }
    ctx.charge_memcpy(block.len());
    let fh = pfs.open(ctx.is_root(), file, OpenMode::Create)?;
    fh.write_ordered(ctx, &block)?;
    Ok(())
}

/// Read back into a BLOCK-distributed collection. The caller must supply
/// the element size it *believes* the file has; a mismatch against the
/// header (all this format stores) is an error.
pub fn read_block_array<T>(
    ctx: &NodeCtx,
    pfs: &Pfs,
    file: &str,
    c: &mut Collection<T>,
    elem_size: usize,
    decode: impl Fn(&mut T, &[u8]),
) -> Result<(), FixedIoError> {
    if c.layout().distribution().kind() != DistKind::Block {
        return Err(FixedIoError::BlockOnly);
    }
    let fh = pfs.open(false, file, OpenMode::Read)?;
    // Rank 0 validates the tiny header and broadcasts the verdict.
    let head = if ctx.is_root() {
        let mut buf = vec![0u8; HEADER_LEN];
        match fh.read_at(ctx, 0, &mut buf) {
            Ok(()) => buf,
            Err(_) => Vec::new(),
        }
    } else {
        Vec::new()
    };
    let head = ctx.broadcast(0, head)?;
    if head.len() != HEADER_LEN || head[..8] != MAGIC {
        return Err(FixedIoError::NotAnArrayFile(file.to_string()));
    }
    let file_elem = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes")) as usize;
    let file_count = u64::from_le_bytes(head[16..24].try_into().expect("8 bytes")) as usize;
    if file_elem != elem_size {
        return Err(FixedIoError::SizeViolation {
            element: 0,
            declared: elem_size,
            actual: file_elem,
        });
    }
    if file_count != c.len() {
        return Err(FixedIoError::CountMismatch {
            file: file_count,
            collection: c.len(),
        });
    }
    // BLOCK → BLOCK: each rank's elements are contiguous in the file.
    let ids = c.global_ids().to_vec();
    let my_len = ids.len() * elem_size;
    let my_off = HEADER_LEN as u64 + ids.first().map(|&g| g as u64).unwrap_or(0) * elem_size as u64;
    let raw = fh.read_ordered(ctx, my_off, my_len)?;
    ctx.charge_memcpy(raw.len());
    for (slot, chunk) in raw.chunks_exact(elem_size).enumerate() {
        decode(&mut c.local_mut()[slot], chunk);
    }
    Ok(())
}

/// A [`Layout`] helper: the only placement this baseline accepts.
pub fn block_layout(n: usize, nprocs: usize) -> Result<Layout, FixedIoError> {
    Ok(Layout::dense(n, nprocs, DistKind::Block)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_machine::{Machine, MachineConfig};

    fn enc(v: &f64) -> Vec<u8> {
        v.to_le_bytes().to_vec()
    }
    fn dec(v: &mut f64, b: &[u8]) {
        *v = f64::from_le_bytes(b.try_into().expect("8 bytes"));
    }

    #[test]
    fn block_array_roundtrips_across_processor_counts() {
        let pfs = Pfs::in_memory(4);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(4), move |ctx| {
            let layout = block_layout(14, 4).unwrap();
            let c = Collection::new(ctx, layout, |i| i as f64 * 0.5).unwrap();
            write_block_array(ctx, &p, "arr", &c, 8, enc).unwrap();
        })
        .unwrap();
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(3), move |ctx| {
            let layout = block_layout(14, 3).unwrap();
            let mut c = Collection::new(ctx, layout, |_| 0.0f64).unwrap();
            read_block_array(ctx, &p, "arr", &mut c, 8, dec).unwrap();
            for (gid, v) in c.iter() {
                assert_eq!(*v, gid as f64 * 0.5);
            }
        })
        .unwrap();
    }

    #[test]
    fn non_block_layouts_are_rejected() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let layout = Layout::dense(6, 2, DistKind::Cyclic).unwrap();
            let c = Collection::new(ctx, layout, |i| i as f64).unwrap();
            assert!(matches!(
                write_block_array(ctx, &p, "x", &c, 8, enc),
                Err(FixedIoError::BlockOnly)
            ));
        })
        .unwrap();
    }

    #[test]
    fn variable_sizes_are_impossible() {
        // The paper's differentiation: this baseline cannot store
        // variable-sized elements at all.
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let layout = block_layout(4, 2).unwrap();
            let c = Collection::new(ctx, layout, |i| vec![0u8; i + 1]).unwrap();
            let err = write_block_array(ctx, &p, "v", &c, 2, |v| v.clone()).unwrap_err();
            assert!(matches!(err, FixedIoError::SizeViolation { .. }));
        })
        .unwrap();
    }

    #[test]
    fn wrong_declared_size_and_count_are_caught() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let layout = block_layout(6, 2).unwrap();
            let c = Collection::new(ctx, layout.clone(), |i| i as f64).unwrap();
            write_block_array(ctx, &p, "a", &c, 8, enc).unwrap();

            let mut back = Collection::new(ctx, layout.clone(), |_| 0.0f64).unwrap();
            assert!(matches!(
                read_block_array(ctx, &p, "a", &mut back, 4, dec),
                Err(FixedIoError::SizeViolation { .. })
            ));
            let layout8 = block_layout(8, 2).unwrap();
            let mut wrong = Collection::new(ctx, layout8, |_| 0.0f64).unwrap();
            assert!(matches!(
                read_block_array(ctx, &p, "a", &mut wrong, 8, dec),
                Err(FixedIoError::CountMismatch {
                    file: 6,
                    collection: 8
                })
            ));
        })
        .unwrap();
    }

    #[test]
    fn garbage_files_are_rejected() {
        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p.open(true, "junk", OpenMode::Create).unwrap();
            fh.write_at(ctx, 0, b"not an array").unwrap();
            let layout = block_layout(2, 1).unwrap();
            let mut c = Collection::new(ctx, layout, |_| 0.0f64).unwrap();
            assert!(matches!(
                read_block_array(ctx, &p, "junk", &mut c, 8, dec),
                Err(FixedIoError::NotAnArrayFile(_))
            ));
        })
        .unwrap();
    }
}
