//! Property tests for the fixed-size baselines: roundtrip identity over
//! arbitrary shapes, and the structural fixed-size constraint.

use dstreams_collections::{Collection, DistKind, Layout};
use dstreams_fixedio::{chameleon, panda};
use dstreams_machine::{Machine, MachineConfig};
use dstreams_pfs::Pfs;
use proptest::prelude::*;

fn dist_strategy() -> impl Strategy<Value = DistKind> {
    prop_oneof![
        Just(DistKind::Block),
        Just(DistKind::Cyclic),
        (1usize..4).prop_map(DistKind::BlockCyclic),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn chameleon_roundtrips_block_arrays(
        n in 1usize..40,
        wprocs in 1usize..5,
        rprocs in 1usize..5,
        salt in any::<u32>(),
    ) {
        let pfs = Pfs::in_memory(wprocs.max(rprocs));
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(wprocs), move |ctx| {
            let layout = Layout::dense(n, wprocs, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout, |i| (i as u32) ^ salt).unwrap();
            chameleon::write_block_array(ctx, &p, "f", &c, 4, |v| v.to_le_bytes().to_vec())
                .unwrap();
        })
        .unwrap();
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(rprocs), move |ctx| {
            let layout = Layout::dense(n, rprocs, DistKind::Block).unwrap();
            let mut c = Collection::new(ctx, layout, |_| 0u32).unwrap();
            chameleon::read_block_array(ctx, &p, "f", &mut c, 4, |v, b| {
                *v = u32::from_le_bytes(b.try_into().unwrap());
            })
            .unwrap();
            for (gid, v) in c.iter() {
                assert_eq!(*v, (gid as u32) ^ salt);
            }
        })
        .unwrap();
    }

    #[test]
    fn panda_roundtrips_any_hpf_distribution(
        n in 1usize..40,
        wprocs in 1usize..5,
        rprocs in 1usize..5,
        wkind in dist_strategy(),
        rkind in dist_strategy(),
        salt in any::<u32>(),
    ) {
        let pfs = Pfs::in_memory(wprocs.max(rprocs));
        let schema = panda::Schema {
            fields: vec![panda::SchemaField { name: "v".into(), elem_size: 4 }],
        };
        let sc = schema.clone();
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(wprocs), move |ctx| {
            let layout = Layout::dense(n, wprocs, wkind).unwrap();
            let c = Collection::new(ctx, layout, |i| (i as u32).wrapping_mul(salt | 1)).unwrap();
            panda::write_array(ctx, &p, "f", &c, &sc, |_, v| v.to_le_bytes().to_vec()).unwrap();
        })
        .unwrap();
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(rprocs), move |ctx| {
            let layout = Layout::dense(n, rprocs, rkind).unwrap();
            let mut c = Collection::new(ctx, layout, |_| 0u32).unwrap();
            panda::read_field(ctx, &p, "f", &mut c, "v", |v, b| {
                *v = u32::from_le_bytes(b.try_into().unwrap());
            })
            .unwrap();
            for (gid, v) in c.iter() {
                assert_eq!(*v, (gid as u32).wrapping_mul(salt | 1));
            }
        })
        .unwrap();
    }

    #[test]
    fn any_size_deviation_is_rejected(
        n in 2usize..20,
        bad_index_pick in any::<usize>(),
        delta in 1usize..8,
        grow in any::<bool>(),
    ) {
        let bad = bad_index_pick % n;
        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let layout = Layout::dense(n, 1, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout, |i| i).unwrap();
            let enc = |v: &usize| {
                let base = 8usize;
                let len = if *v == bad {
                    if grow { base + delta } else { base - delta.min(base) }
                } else {
                    base
                };
                vec![0u8; len]
            };
            let err = chameleon::write_block_array(ctx, &p, "x", &c, 8, enc).unwrap_err();
            assert!(matches!(err, dstreams_fixedio::FixedIoError::SizeViolation { .. }));
        })
        .unwrap();
    }
}
