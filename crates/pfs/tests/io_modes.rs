//! Tests of the Paragon NX-style shared-file modes (M_LOG / M_RECORD).

use std::collections::HashSet;

use dstreams_machine::{Machine, MachineConfig};
use dstreams_pfs::{OpenMode, Pfs, PfsError};

#[test]
fn m_log_appends_every_record_exactly_once() {
    let pfs = Pfs::in_memory(4);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(4), move |ctx| {
        let fh = p.open(ctx.is_root(), "log", OpenMode::Create).unwrap();
        // Each rank appends 5 distinct 8-byte records, concurrently.
        for k in 0..5u32 {
            let rec = ((ctx.rank() as u64) << 32 | k as u64).to_le_bytes();
            let off = fh.append_shared(ctx, &rec).unwrap();
            assert_eq!(off % 8, 0, "log records must pack without gaps");
        }
        ctx.barrier().unwrap();
    })
    .unwrap();

    // All 20 records present, each exactly once (order unspecified).
    assert_eq!(pfs.file_size("log").unwrap(), 20 * 8);
    let p = pfs.clone();
    let seen = Machine::run(MachineConfig::functional(1), move |ctx| {
        let fh = p.open(false, "log", OpenMode::Read).unwrap();
        let mut buf = vec![0u8; 160];
        fh.read_at(ctx, 0, &mut buf).unwrap();
        buf.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect::<HashSet<u64>>()
    })
    .unwrap()
    .remove(0);
    let want: HashSet<u64> = (0..4u64)
        .flat_map(|r| (0..5u64).map(move |k| r << 32 | k))
        .collect();
    assert_eq!(seen, want);
}

#[test]
fn m_record_layout_is_round_robin_and_deterministic() {
    let pfs = Pfs::in_memory(3);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(3), move |ctx| {
        let fh = p.open(ctx.is_root(), "rec", OpenMode::Create).unwrap();
        for k in 0..4u8 {
            let slot = fh
                .write_record(ctx, 16, &[ctx.rank() as u8 * 10 + k])
                .unwrap();
            assert_eq!(slot, k as u64 * 3 + ctx.rank() as u64);
        }
        ctx.barrier().unwrap();
        // Any rank can read any slot: check rank 1's 3rd record.
        let rec = fh.read_record(ctx, 16, 2 * 3 + 1).unwrap();
        assert_eq!(rec[0], 12);
        assert!(rec[1..].iter().all(|&b| b == 0), "zero padding");
    })
    .unwrap();
    assert_eq!(pfs.file_size("rec").unwrap(), 12 * 16);
}

#[test]
fn m_record_rejects_oversized_records() {
    let pfs = Pfs::in_memory(2);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let fh = p.open(ctx.is_root(), "r", OpenMode::Create).unwrap();
        let err = fh.write_record(ctx, 4, &[0u8; 5]).unwrap_err();
        assert!(matches!(err, PfsError::CollectiveMismatch(_)));
    })
    .unwrap();
}

#[test]
fn m_record_files_reconstruct_rank_streams() {
    // The classic M_RECORD use: per-rank record streams in one file, read
    // back by a post-processor that walks one rank's slots.
    let pfs = Pfs::in_memory(2);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(2), move |ctx| {
        let fh = p.open(ctx.is_root(), "s", OpenMode::Create).unwrap();
        for k in 0..3u64 {
            fh.write_record(ctx, 8, &(ctx.rank() as u64 * 100 + k).to_le_bytes())
                .unwrap();
        }
        ctx.barrier().unwrap();
        // Walk rank 1's stream from any rank.
        let vals: Vec<u64> = (0..3u64)
            .map(|k| {
                let rec = fh.read_record(ctx, 8, k * 2 + 1).unwrap();
                u64::from_le_bytes(rec.as_slice().try_into().unwrap())
            })
            .collect();
        assert_eq!(vals, vec![100, 101, 102]);
    })
    .unwrap();
}

#[test]
fn disk_backed_pfs_persists_across_instances() {
    use dstreams_pfs::{Backend, DiskModel};
    let dir = std::env::temp_dir().join(format!("dstreams-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First "process": write a file.
    {
        let pfs = Pfs::new(2, DiskModel::instant(), Backend::Disk(dir.clone()));
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let fh = p
                .open(ctx.is_root(), "state.bin", OpenMode::Create)
                .unwrap();
            fh.write_ordered(ctx, &[ctx.rank() as u8 + 1; 6]).unwrap();
        })
        .unwrap();
    }

    // Second "process": attach without truncation and read back.
    let pfs = Pfs::attach_disk(2, DiskModel::instant(), dir.clone()).unwrap();
    assert_eq!(pfs.file_size("state.bin").unwrap(), 12);
    let p = pfs.clone();
    Machine::run(MachineConfig::functional(1), move |ctx| {
        let fh = p.open(false, "state.bin", OpenMode::Read).unwrap();
        let mut buf = vec![0u8; 12];
        fh.read_at(ctx, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2]);
    })
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
