//! Property tests of the PFS against a flat reference model: any sequence
//! of positioned writes applied through the PFS must leave the same bytes
//! a plain Vec<u8> model would hold, and `write_ordered` must equal the
//! rank-order concatenation.

use dstreams_machine::{Machine, MachineConfig};
use dstreams_pfs::{Backend, DiskModel, OpenMode, Pfs};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn positioned_writes_match_a_flat_model(
        ops in proptest::collection::vec((0u64..500, proptest::collection::vec(any::<u8>(), 0..60)), 1..20),
    ) {
        // Reference model.
        let mut model: Vec<u8> = Vec::new();
        for (off, data) in &ops {
            let end = *off as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[*off as usize..end].copy_from_slice(data);
        }

        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        let ops2 = ops.clone();
        let got = Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p.open(true, "model", OpenMode::Create).unwrap();
            for (off, data) in &ops2 {
                fh.write_at(ctx, *off, data).unwrap();
            }
            let mut buf = vec![0u8; fh.len() as usize];
            if !buf.is_empty() {
                fh.read_at(ctx, 0, &mut buf).unwrap();
            }
            buf
        }).unwrap();
        prop_assert_eq!(&got[0], &model);
    }

    #[test]
    fn write_ordered_equals_rank_order_concatenation(
        nprocs in 1usize..6,
        lens in proptest::collection::vec(0usize..40, 6),
        rounds in 1usize..4,
    ) {
        let pfs = Pfs::in_memory(nprocs);
        let p = pfs.clone();
        let lens2 = lens.clone();
        Machine::run(MachineConfig::functional(nprocs), move |ctx| {
            let fh = p.open(ctx.is_root(), "ord", OpenMode::Create).unwrap();
            for round in 0..rounds {
                let len = lens2[(ctx.rank() + round) % lens2.len()];
                let block = vec![(ctx.rank() * 16 + round) as u8; len];
                fh.write_ordered(ctx, &block).unwrap();
            }
        }).unwrap();

        // Reference: concatenate blocks in (round, rank) order.
        let mut model = Vec::new();
        for round in 0..rounds {
            for rank in 0..nprocs {
                let len = lens[(rank + round) % lens.len()];
                model.extend(std::iter::repeat_n((rank * 16 + round) as u8, len));
            }
        }
        let p = pfs.clone();
        let got = Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p.open(false, "ord", OpenMode::Read).unwrap();
            let mut buf = vec![0u8; fh.len() as usize];
            if !buf.is_empty() {
                fh.read_at(ctx, 0, &mut buf).unwrap();
            }
            buf
        }).unwrap();
        prop_assert_eq!(&got[0], &model);
    }

    #[test]
    fn virtual_cost_is_monotone_in_bytes(
        small in 1usize..1000,
        extra in 1usize..100_000,
    ) {
        let run = |bytes: usize| {
            let pfs = Pfs::new(2, DiskModel::paragon_pfs(), Backend::Memory);
            Machine::run(MachineConfig::paragon(2), move |ctx| {
                let fh = pfs.open(ctx.is_root(), "m", OpenMode::Create).unwrap();
                fh.write_ordered(ctx, &vec![0u8; bytes]).unwrap();
                ctx.now()
            }).unwrap()[0]
        };
        prop_assert!(run(small) <= run(small + extra));
    }
}
