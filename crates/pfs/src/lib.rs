//! # dstreams-pfs — a simulated parallel file system
//!
//! The storage substrate for the pC++/streams reproduction. It models the
//! parallel file systems of the paper's platforms (Intel Paragon PFS,
//! TMC CM-5 sfs, SGI Challenge XFS) on top of `dstreams-machine`:
//!
//! * a shared **namespace of files** per machine run ([`Pfs`]);
//! * POSIX-like **independent** reads and writes per rank — the
//!   "unbuffered I/O" baseline of the paper's benchmark;
//! * **collective node-order** operations ([`FileHandle::write_ordered`],
//!   [`FileHandle::read_ordered`]) — the Paragon-style primitives that
//!   "transfer a contiguous block of data from each compute node to the
//!   file system simultaneously and write those blocks to the file in node
//!   order" (paper §4.1);
//! * a calibrated **disk cost model** ([`DiskModel`]) with the buffer-cache
//!   knees responsible for the paper's headline anomalies;
//! * two backends: in-memory (virtual-time benchmarks) and real-disk
//!   (wall-clock Criterion benchmarks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod checksum;
pub mod error;
pub mod file;
pub mod model;
pub mod nonblocking;
pub mod pfs;
pub mod retry;
pub mod storage;

pub use checksum::ChunkSum;
pub use error::PfsError;
pub use file::{FileHandle, FileObj, StatsSnapshot};
pub use model::{DiskModel, Regime};
pub use nonblocking::IoHandle;
pub use pfs::{OpenMode, Pfs};
pub use retry::RetryPolicy;
pub use storage::Backend;
