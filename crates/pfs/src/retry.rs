//! Transient-failure classification and exponential backoff.
//!
//! Real parallel file systems fail transiently — a timed-out RPC, an
//! interrupted system call — and clients retry with backoff. The PFS
//! client path does the same: an operation whose error classifies as
//! *transient* (by its preserved [`std::io::ErrorKind`]) is retried up to
//! [`RetryPolicy::max_retries`] times, charging an exponentially growing
//! pause to the rank's *virtual* clock between attempts. Everything else
//! (missing files, out-of-bounds ranges, machine errors, injected
//! crashes) is permanent and surfaces immediately.

use dstreams_machine::VTime;

use crate::error::PfsError;

/// Which [`std::io::ErrorKind`]s a retry can plausibly cure.
pub fn is_transient_kind(kind: std::io::ErrorKind) -> bool {
    use std::io::ErrorKind;
    matches!(
        kind,
        ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock
    )
}

/// Retry policy for independent and collective PFS operations.
///
/// Attempt `k` (zero-based) that fails transiently is followed by a
/// virtual-time pause of `base · multiplier^k` before attempt `k + 1`;
/// after `max_retries` retries the transient error is surfaced to the
/// caller as-is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of retries after the initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: VTime,
    /// Growth factor applied per subsequent retry.
    pub multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: VTime::from_micros(500),
            multiplier: 2,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every failure is terminal).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base: VTime::ZERO,
            multiplier: 1,
        }
    }

    /// The virtual-time pause after failed attempt `attempt` (zero-based),
    /// saturating instead of overflowing for absurd attempt counts.
    pub fn backoff(&self, attempt: u32) -> VTime {
        let factor = (self.multiplier as u64)
            .checked_pow(attempt)
            .unwrap_or(u64::MAX);
        VTime::from_nanos(self.base.as_nanos().saturating_mul(factor))
    }

    /// Whether `err` is worth retrying under this policy.
    pub fn is_transient(&self, err: &PfsError) -> bool {
        self.max_retries > 0 && err.io_kind().is_some_and(is_transient_kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::ErrorKind;

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let p = RetryPolicy {
            max_retries: 4,
            base: VTime::from_micros(100),
            multiplier: 2,
        };
        assert_eq!(p.backoff(0), VTime::from_micros(100));
        assert_eq!(p.backoff(1), VTime::from_micros(200));
        assert_eq!(p.backoff(3), VTime::from_micros(800));
        // No overflow panic for huge attempt counts.
        assert!(p.backoff(200) > p.backoff(3));
    }

    #[test]
    fn classification_keys_on_error_kind() {
        let p = RetryPolicy::default();
        assert!(p.is_transient(&PfsError::io(ErrorKind::Interrupted, "x")));
        assert!(p.is_transient(&PfsError::io(ErrorKind::TimedOut, "x")));
        assert!(p.is_transient(&PfsError::io(ErrorKind::WouldBlock, "x")));
        assert!(!p.is_transient(&PfsError::io(ErrorKind::NotFound, "x")));
        assert!(!p.is_transient(&PfsError::io(ErrorKind::PermissionDenied, "x")));
        assert!(!p.is_transient(&PfsError::NotFound("f".into())));
        // A disabled policy treats everything as permanent.
        assert!(!RetryPolicy::none().is_transient(&PfsError::io(ErrorKind::TimedOut, "x")));
    }
}
