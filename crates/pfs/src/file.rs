//! File objects and per-rank file handles.
//!
//! A [`FileHandle`] behaves like a POSIX descriptor: it has a private
//! position and supports independent reads/writes (each charged through the
//! cost model as a separate OS call — this is the "unbuffered I/O" path of
//! the paper's benchmark). It also provides the two *collective* operations
//! the Paragon/CM-5 parallel file systems offered and on which
//! pC++/streams is built:
//!
//! * [`FileHandle::write_ordered`] — every rank contributes one contiguous
//!   block; the blocks land in the file in **node order** in a single
//!   parallel operation;
//! * [`FileHandle::read_ordered`] — every rank reads one contiguous block
//!   in a single parallel operation.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dstreams_machine::wire::{frame_blocks, unframe_blocks};
use dstreams_machine::{FaultDecision, MachineError, NodeCtx, VTime};
use dstreams_trace::{CollectiveRegime, EventKind, FaultKind, IndependentRegime, PfsOp};
use parking_lot::Mutex;

use crate::checksum::ChunkSum;
use crate::error::PfsError;
use crate::model::Regime;
use crate::pfs::PfsShared;
use crate::storage::Storage;

/// A file stored in the parallel file system. Shared by all ranks.
#[derive(Debug)]
pub struct FileObj {
    pub(crate) name: String,
    pub(crate) storage: Mutex<Storage>,
    /// Shared append cursor for M_LOG-style access.
    pub(crate) log_cursor: AtomicU64,
}

impl FileObj {
    /// File name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current logical size in bytes.
    pub fn len(&self) -> u64 {
        self.storage.lock().len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-rank handle to an open PFS file.
///
/// Not `Send`: a handle belongs to the rank that opened it (its position is
/// rank-private state), exactly like a file descriptor in the benchmark's
/// unbuffered baseline.
pub struct FileHandle {
    pub(crate) pfs: Arc<PfsShared>,
    pub(crate) file: Arc<FileObj>,
    pub(crate) pos: Cell<u64>,
    /// Per-handle record counter for M_RECORD-style access.
    pub(crate) record_seq: Cell<u64>,
    /// Sticky flag set by an aggregated blocking collective write when a
    /// peer's transfer was cut by a power-cut; the stream layer polls it
    /// (via [`FileHandle::take_peer_crashed`]) to skip the commit seal.
    pub(crate) agg_peer_crash: Cell<bool>,
    /// Marker making the handle `!Send`/`!Sync`.
    pub(crate) _not_send: std::marker::PhantomData<*const ()>,
}

impl FileHandle {
    /// The underlying file object.
    pub fn file(&self) -> &Arc<FileObj> {
        &self.file
    }

    /// Current private position.
    pub fn pos(&self) -> u64 {
        self.pos.get()
    }

    /// Move the private position.
    pub fn seek(&self, pos: u64) {
        self.pos.set(pos);
    }

    /// Current file size.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.file.is_empty()
    }

    /// Consume the peer-crash flag left behind by an aggregated blocking
    /// collective write. True when some rank's transfer in the last such
    /// write was cut by a power-cut: the survivors completed the
    /// collective (the aggregation layer's closing crash-flag all-reduce
    /// replaces the bare barrier), but the record covering it must not be
    /// sealed — recovery truncates to the sealed prefix. Always false on
    /// the direct (non-aggregated) path, where a collective-write
    /// power-cut strands the peers with `PeerGone` instead.
    pub fn take_peer_crashed(&self) -> bool {
        self.agg_peer_crash.replace(false)
    }

    // ---- independent operations (the "unbuffered" path) -------------------

    fn charge_independent(&self, ctx: &NodeCtx, op: PfsOp, offset: u64, bytes: usize) {
        let traffic = &self.pfs.rank_traffic[ctx.rank()];
        let before = traffic.load(Ordering::Relaxed);
        // Working-set estimate: this file's bytes, mirrored on every rank
        // (symmetric SPMD workloads), flowing through the shared cache.
        let regime = self
            .pfs
            .model
            .independent_regime(self.file.len(), ctx.nprocs());
        let cost = self.pfs.model.independent_cost(bytes, regime, ctx.nprocs());
        ctx.advance(cost);
        ctx.emit_with(|| EventKind::PfsIndependent {
            op,
            file: self.file.name.clone(),
            offset,
            bytes: bytes as u64,
            regime: match regime {
                Regime::Cached => IndependentRegime::Cached,
                Regime::Disk => IndependentRegime::Disk,
            },
            cost_ns: cost.as_nanos(),
        });
        traffic.store(before + bytes as u64, Ordering::Relaxed);
        self.pfs
            .stats
            .independent_ops
            .fetch_add(1, Ordering::Relaxed);
        self.pfs
            .stats
            .independent_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        if regime == Regime::Disk {
            self.pfs
                .stats
                .disk_regime_ops
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    // ---- fault injection and retry -----------------------------------------

    pub(crate) fn emit_fault(&self, ctx: &NodeCtx, kind: FaultKind, op: u64, bytes_kept: u64) {
        ctx.emit_with(|| EventKind::FaultInjected {
            kind,
            op_index: op,
            file: self.file.name.clone(),
            bytes_kept,
        });
    }

    /// Charge one virtual-time backoff pause and record the retry.
    /// Returns `false` when the policy's retry budget is exhausted.
    fn backoff_and_retry(&self, ctx: &NodeCtx, op: u64, attempt: &mut u32) -> bool {
        let policy = self.pfs.retry;
        if *attempt >= policy.max_retries {
            return false;
        }
        let pause = policy.backoff(*attempt);
        ctx.advance(pause);
        *attempt += 1;
        let next = *attempt;
        ctx.emit_with(|| EventKind::PfsRetry {
            op_index: op,
            attempt: next,
            backoff_ns: pause.as_nanos(),
        });
        true
    }

    pub(crate) fn injected_transient(op: u64) -> PfsError {
        PfsError::io(
            std::io::ErrorKind::Interrupted,
            format!("injected transient pfs fault (op {op})"),
        )
    }

    pub(crate) fn check_alive(&self, ctx: &NodeCtx) -> Result<(), PfsError> {
        if ctx.fault_is_dead() {
            return Err(MachineError::RankCrashed { rank: ctx.rank() }.into());
        }
        Ok(())
    }

    /// Power-cut a write: persist the seeded prefix, record the fault,
    /// mark the rank dead and surface the crash to the caller. Peers
    /// observe `PeerGone` when this rank's thread unwinds.
    fn crash_write(
        &self,
        ctx: &NodeCtx,
        op: u64,
        offset: u64,
        data: &[u8],
        keep: Option<usize>,
    ) -> PfsError {
        let k = keep.unwrap_or(0).min(data.len());
        if k > 0 {
            let _ = self
                .file
                .storage
                .lock()
                .write_at(offset, &data[..k], &self.file.name);
        }
        self.emit_fault(ctx, FaultKind::Crash, op, k as u64);
        ctx.fault_mark_dead();
        MachineError::RankCrashed { rank: ctx.rank() }.into()
    }

    /// Consult the fault plan at the head of a collective operation,
    /// retiring injected transient failures through the retry policy
    /// *before* any communication (so surviving ranks stay in lockstep).
    /// The returned fate (`Proceed`/`Torn`/`Crash`) is applied at the
    /// physical-transfer step.
    pub(crate) fn collective_fate(
        &self,
        ctx: &NodeCtx,
        op: u64,
        write_len: Option<usize>,
    ) -> Result<FaultDecision, PfsError> {
        let mut attempt = 0u32;
        loop {
            self.check_alive(ctx)?;
            match ctx.fault_decision(op, attempt, write_len) {
                FaultDecision::Transient => {
                    self.emit_fault(ctx, FaultKind::Transient, op, 0);
                    if self.backoff_and_retry(ctx, op, &mut attempt) {
                        continue;
                    }
                    return Err(Self::injected_transient(op));
                }
                fate => return Ok(fate),
            }
        }
    }

    /// Independent write at the private position; advances the position.
    pub fn write(&self, ctx: &NodeCtx, data: &[u8]) -> Result<(), PfsError> {
        self.write_at(ctx, self.pos.get(), data)?;
        self.pos.set(self.pos.get() + data.len() as u64);
        Ok(())
    }

    /// Independent read at the private position; advances the position.
    pub fn read(&self, ctx: &NodeCtx, buf: &mut [u8]) -> Result<(), PfsError> {
        self.read_at(ctx, self.pos.get(), buf)?;
        self.pos.set(self.pos.get() + buf.len() as u64);
        Ok(())
    }

    /// Independent positioned write (does not move the private position).
    ///
    /// One logical PFS operation: transient failures (injected or from the
    /// real-disk backend) are retried with exponential virtual-time
    /// backoff under the PFS [`crate::RetryPolicy`].
    pub fn write_at(&self, ctx: &NodeCtx, offset: u64, data: &[u8]) -> Result<(), PfsError> {
        let op = ctx.next_pfs_op();
        let mut attempt = 0u32;
        loop {
            self.check_alive(ctx)?;
            match ctx.fault_decision(op, attempt, Some(data.len())) {
                FaultDecision::Proceed => {
                    let res = self
                        .file
                        .storage
                        .lock()
                        .write_at(offset, data, &self.file.name);
                    match res {
                        Ok(()) => {
                            self.charge_independent(ctx, PfsOp::Write, offset, data.len());
                            return Ok(());
                        }
                        Err(e)
                            if self.pfs.retry.is_transient(&e)
                                && self.backoff_and_retry(ctx, op, &mut attempt) =>
                        {
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                }
                FaultDecision::Transient => {
                    self.emit_fault(ctx, FaultKind::Transient, op, 0);
                    if self.backoff_and_retry(ctx, op, &mut attempt) {
                        continue;
                    }
                    return Err(Self::injected_transient(op));
                }
                FaultDecision::Torn { keep } => {
                    // The call reports success but only a prefix hit
                    // storage — a write-back cache lost at power time.
                    // Full cost is charged: the node believed it wrote.
                    let keep = keep.min(data.len());
                    self.emit_fault(ctx, FaultKind::Torn, op, keep as u64);
                    self.file
                        .storage
                        .lock()
                        .write_at(offset, &data[..keep], &self.file.name)?;
                    self.charge_independent(ctx, PfsOp::Write, offset, data.len());
                    return Ok(());
                }
                FaultDecision::Crash { keep } => {
                    return Err(self.crash_write(ctx, op, offset, data, keep));
                }
            }
        }
    }

    /// Independent positioned read (does not move the private position).
    ///
    /// Like [`FileHandle::write_at`], one logical retry-wrapped PFS
    /// operation.
    pub fn read_at(&self, ctx: &NodeCtx, offset: u64, buf: &mut [u8]) -> Result<(), PfsError> {
        let op = ctx.next_pfs_op();
        let mut attempt = 0u32;
        loop {
            self.check_alive(ctx)?;
            match ctx.fault_decision(op, attempt, None) {
                FaultDecision::Transient => {
                    self.emit_fault(ctx, FaultKind::Transient, op, 0);
                    if self.backoff_and_retry(ctx, op, &mut attempt) {
                        continue;
                    }
                    return Err(Self::injected_transient(op));
                }
                FaultDecision::Crash { .. } => {
                    self.emit_fault(ctx, FaultKind::Crash, op, 0);
                    ctx.fault_mark_dead();
                    return Err(MachineError::RankCrashed { rank: ctx.rank() }.into());
                }
                // Torn applies to writes only; a read proceeds.
                FaultDecision::Proceed | FaultDecision::Torn { .. } => {
                    let res = self
                        .file
                        .storage
                        .lock()
                        .read_at(offset, buf, &self.file.name);
                    match res {
                        Ok(()) => {
                            self.charge_independent(ctx, PfsOp::Read, offset, buf.len());
                            return Ok(());
                        }
                        Err(e)
                            if self.pfs.retry.is_transient(&e)
                                && self.backoff_and_retry(ctx, op, &mut attempt) =>
                        {
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }

    // ---- shared-file independent modes (Paragon NX M_LOG / M_RECORD) ------

    /// M_LOG-style shared append: an independent write at the file's
    /// shared log cursor, first-come-first-served across ranks. Like the
    /// real mode, the *order* of records from different ranks is whatever
    /// the I/O system observed — inherently nondeterministic; use it for
    /// logs where arrival order is acceptable. Returns the record's
    /// offset. Do not mix with collective appends on the same file.
    pub fn append_shared(&self, ctx: &NodeCtx, data: &[u8]) -> Result<u64, PfsError> {
        let off = self
            .file
            .log_cursor
            .fetch_add(data.len() as u64, Ordering::SeqCst);
        self.write_at(ctx, off, data)?;
        Ok(off)
    }

    /// M_RECORD-style access: every rank writes fixed-length records that
    /// land in round-robin node order — this rank's `k`-th record occupies
    /// slot `k * nprocs + rank`. Deterministic layout without any
    /// coordination (each rank tracks only its own sequence number).
    /// `data` must fit in `record_size`; shorter records are zero-padded.
    pub fn write_record(
        &self,
        ctx: &NodeCtx,
        record_size: usize,
        data: &[u8],
    ) -> Result<u64, PfsError> {
        if data.len() > record_size {
            return Err(PfsError::CollectiveMismatch(format!(
                "record of {} bytes exceeds the fixed record size {}",
                data.len(),
                record_size
            )));
        }
        let seq = self.record_seq.get();
        self.record_seq.set(seq + 1);
        let slot = seq * ctx.nprocs() as u64 + ctx.rank() as u64;
        let off = slot * record_size as u64;
        let mut padded = data.to_vec();
        padded.resize(record_size, 0);
        self.write_at(ctx, off, &padded)?;
        Ok(slot)
    }

    /// Read back one M_RECORD slot (any rank may read any slot).
    pub fn read_record(
        &self,
        ctx: &NodeCtx,
        record_size: usize,
        slot: u64,
    ) -> Result<Vec<u8>, PfsError> {
        let mut buf = vec![0u8; record_size];
        self.read_at(ctx, slot * record_size as u64, &mut buf)?;
        Ok(buf)
    }

    // ---- collective operations (the parallel-file-system path) ------------

    /// Collective node-order append. Every rank must call this with its own
    /// block (possibly empty); on return the file contains all blocks,
    /// appended after the previous end of file **in rank order**, and every
    /// rank knows the offset where *its* block landed.
    ///
    /// Cost: a single parallel operation covering all blocks — startup
    /// latency plus total-bytes over the (possibly knee'd) aggregate PFS
    /// bandwidth. All ranks leave with synchronized virtual clocks.
    pub fn write_ordered(&self, ctx: &NodeCtx, block: &[u8]) -> Result<u64, PfsError> {
        self.write_ordered_summed(ctx, block).map(|(off, _)| off)
    }

    /// [`FileHandle::write_ordered`] that additionally returns the
    /// combinable digest of **every** rank's block — every rank leaves
    /// knowing the per-rank checksums of the bytes the collective
    /// appended, in node order. The digests ride the size gather and plan
    /// broadcast the operation performs anyway, so the communication
    /// shape is identical to `write_ordered`. This is what the d/stream
    /// layer seals records with.
    pub fn write_ordered_summed(
        &self,
        ctx: &NodeCtx,
        block: &[u8],
    ) -> Result<(u64, Vec<ChunkSum>), PfsError> {
        if let Some(cc) = ctx.config().collective {
            return self.agg_write_ordered_summed(ctx, cc, block);
        }
        // One logical PFS operation: its internal coordination (barriers,
        // size gather, plan broadcast) is plumbing, not API collectives.
        let _scope = ctx.collective_scope();
        let op = ctx.next_pfs_op();
        let fate = self.collective_fate(ctx, op, Some(block.len()))?;
        // Make prior independent writes globally visible and align clocks.
        ctx.barrier()?;
        // Exchange block sizes and digests; rank 0 supplies the append base.
        let my_sum = ChunkSum::of(block);
        let mut contrib = Vec::with_capacity(24);
        contrib.extend_from_slice(&(block.len() as u64).to_le_bytes());
        contrib.extend_from_slice(&my_sum.hash().to_le_bytes());
        contrib.extend_from_slice(&my_sum.rpow().to_le_bytes());
        let gathered = ctx.gather(0, contrib)?;
        let plan = if ctx.is_root() {
            let frames = gathered.expect("root gathers");
            let base = self.file.len();
            let mut blocks = Vec::with_capacity(frames.len() + 1);
            blocks.push(base.to_le_bytes().to_vec());
            for frame in &frames {
                if frame.len() != 24 {
                    return Err(PfsError::CollectiveMismatch(
                        "write_ordered: malformed size/digest frame".into(),
                    ));
                }
                blocks.push(frame.clone());
            }
            frame_blocks(&blocks)
        } else {
            Vec::new()
        };
        let plan = ctx.broadcast(0, plan)?;
        let parts = unframe_blocks(&plan)
            .ok_or_else(|| PfsError::CollectiveMismatch("write_ordered: malformed plan".into()))?;
        if parts.len() != ctx.nprocs() + 1 {
            return Err(PfsError::CollectiveMismatch(
                "write_ordered: plan size mismatch".into(),
            ));
        }
        let base = decode_u64(&parts[0], "write_ordered plan base")?;
        let mut sizes = Vec::with_capacity(ctx.nprocs());
        let mut digests = Vec::with_capacity(ctx.nprocs());
        for frame in &parts[1..] {
            if frame.len() != 24 {
                return Err(PfsError::CollectiveMismatch(
                    "write_ordered: malformed plan frame".into(),
                ));
            }
            sizes.push(decode_u64(&frame[..8], "write_ordered plan size")?);
            digests.push(ChunkSum::from_parts(
                decode_u64(&frame[8..16], "write_ordered plan digest hash")?,
                decode_u64(&frame[16..24], "write_ordered plan digest rpow")?,
            ));
        }
        if sizes[ctx.rank()] != block.len() as u64 {
            return Err(PfsError::CollectiveMismatch(
                "write_ordered: my block size desynchronized".into(),
            ));
        }
        let my_off = base + sizes[..ctx.rank()].iter().sum::<u64>();
        let total: u64 = sizes.iter().sum();
        let max_block = sizes.iter().copied().max().unwrap_or(0);

        // Physical transfer — the step a write fault tears or cuts short.
        match fate {
            FaultDecision::Proceed | FaultDecision::Transient => {
                if !block.is_empty() {
                    self.file
                        .storage
                        .lock()
                        .write_at(my_off, block, &self.file.name)?;
                }
            }
            FaultDecision::Torn { keep } => {
                let keep = keep.min(block.len());
                self.emit_fault(ctx, FaultKind::Torn, op, keep as u64);
                self.file
                    .storage
                    .lock()
                    .write_at(my_off, &block[..keep], &self.file.name)?;
            }
            FaultDecision::Crash { keep } => {
                // Power cut mid-collective: peers got the plan and wrote
                // their blocks; this rank persists a prefix and dies
                // before the closing barrier. Peers waiting there observe
                // PeerGone when this rank's thread unwinds — a clean
                // failure, not a hang.
                return Err(self.crash_write(ctx, op, my_off, block, keep));
            }
        }
        // Virtual cost of the single parallel operation.
        let cost = self
            .pfs
            .model
            .collective_cost(total, max_block, ctx.nprocs());
        ctx.advance(cost);
        ctx.emit_with(|| EventKind::PfsCollective {
            op: PfsOp::Write,
            file: self.file.name.clone(),
            offset: my_off,
            bytes: block.len() as u64,
            total_bytes: total,
            share_bytes: total / ctx.nprocs() as u64,
            stripes: self.pfs.model.stripes_touched(my_off, block.len() as u64),
            regime: if self.pfs.model.collective_knee(max_block) {
                CollectiveRegime::CacheKnee
            } else {
                CollectiveRegime::Streaming
            },
            cost_ns: cost.as_nanos(),
        });
        self.account_collective(ctx, total);
        // All blocks visible before anyone proceeds.
        ctx.barrier()?;
        Ok((my_off, digests))
    }

    /// Collective parallel read: every rank reads `len` bytes at `offset`
    /// (both per-rank) in one parallel operation. Ranks may pass `len == 0`
    /// to participate without transferring data.
    pub fn read_ordered(
        &self,
        ctx: &NodeCtx,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, PfsError> {
        self.read_ordered_summed(ctx, offset, len).map(|(b, _)| b)
    }

    /// [`FileHandle::read_ordered`] that additionally returns the
    /// combinable digest of the bytes **each** rank read, in node order.
    /// The digests ride the size exchange the operation performs anyway.
    /// When the per-rank spans tile a region contiguously, folding the
    /// digests left-to-right reproduces the digest of the whole region —
    /// how the d/stream layer verifies a record seal while reading.
    pub fn read_ordered_summed(
        &self,
        ctx: &NodeCtx,
        offset: u64,
        len: usize,
    ) -> Result<(Vec<u8>, Vec<ChunkSum>), PfsError> {
        if let Some(cc) = ctx.config().collective {
            return self.agg_read_ordered_summed(ctx, cc, offset, len);
        }
        let _scope = ctx.collective_scope();
        let op = ctx.next_pfs_op();
        if let FaultDecision::Crash { .. } = self.collective_fate(ctx, op, None)? {
            // Power cut on entry: this rank never joins the collective;
            // peers block in the opening barrier and observe PeerGone
            // when the thread unwinds.
            self.emit_fault(ctx, FaultKind::Crash, op, 0);
            ctx.fault_mark_dead();
            return Err(MachineError::RankCrashed { rank: ctx.rank() }.into());
        }
        ctx.barrier()?;
        // Read first so the size exchange can carry the data digests; on a
        // failed read still participate (empty contribution), then surface
        // the error — abandoning the collective would strand the peers.
        let mut buf = vec![0u8; len];
        let read_res = if len > 0 {
            self.file
                .storage
                .lock()
                .read_at(offset, &mut buf, &self.file.name)
        } else {
            Ok(())
        };
        let my_sum = if read_res.is_ok() {
            ChunkSum::of(&buf)
        } else {
            ChunkSum::EMPTY
        };
        // Everyone learns the collective's total and max block for costing,
        // and every rank's data digest for seal verification.
        let mut contrib = Vec::with_capacity(24);
        contrib.extend_from_slice(&(len as u64).to_le_bytes());
        contrib.extend_from_slice(&my_sum.hash().to_le_bytes());
        contrib.extend_from_slice(&my_sum.rpow().to_le_bytes());
        let frames = ctx.all_gather(contrib)?;
        let mut sizes = Vec::with_capacity(ctx.nprocs());
        let mut digests = Vec::with_capacity(ctx.nprocs());
        for frame in &frames {
            if frame.len() != 24 {
                return Err(PfsError::CollectiveMismatch(
                    "read_ordered: malformed size/digest frame".into(),
                ));
            }
            sizes.push(decode_u64(&frame[..8], "read_ordered size frame")?);
            digests.push(ChunkSum::from_parts(
                decode_u64(&frame[8..16], "read_ordered digest hash")?,
                decode_u64(&frame[16..24], "read_ordered digest rpow")?,
            ));
        }
        read_res?;
        let total: u64 = sizes.iter().sum();
        let max_block = sizes.iter().copied().max().unwrap_or(0);

        let cost = self
            .pfs
            .model
            .collective_cost(total, max_block, ctx.nprocs());
        ctx.advance(cost);
        ctx.emit_with(|| EventKind::PfsCollective {
            op: PfsOp::Read,
            file: self.file.name.clone(),
            offset,
            bytes: len as u64,
            total_bytes: total,
            share_bytes: total / ctx.nprocs() as u64,
            stripes: self.pfs.model.stripes_touched(offset, len as u64),
            regime: if self.pfs.model.collective_knee(max_block) {
                CollectiveRegime::CacheKnee
            } else {
                CollectiveRegime::Streaming
            },
            cost_ns: cost.as_nanos(),
        });
        self.account_collective(ctx, total);
        Ok((buf, digests))
    }

    pub(crate) fn account_collective(&self, ctx: &NodeCtx, total: u64) {
        // Traffic is shared by the whole machine; attribute an even share
        // per rank so the cache-occupancy estimate stays rank-local.
        let share = total / ctx.nprocs() as u64;
        self.pfs.rank_traffic[ctx.rank()].fetch_add(share, Ordering::Relaxed);
        self.pfs
            .stats
            .collective_ops
            .fetch_add(1, Ordering::Relaxed);
        self.pfs
            .stats
            .collective_bytes
            .fetch_add(total / ctx.nprocs().max(1) as u64, Ordering::Relaxed);
    }
}

/// Decode a little-endian u64 exchanged during a collective plan.
pub(crate) fn decode_u64(b: &[u8], what: &str) -> Result<u64, PfsError> {
    Ok(u64::from_le_bytes(b.try_into().map_err(|_| {
        PfsError::CollectiveMismatch(format!("malformed {what}"))
    })?))
}

/// Aggregate operation counters for a PFS instance.
#[derive(Debug, Default)]
pub struct Stats {
    /// Number of independent (per-rank) operations issued.
    pub independent_ops: AtomicU64,
    /// Bytes moved by independent operations.
    pub independent_bytes: AtomicU64,
    /// Independent ops that fell into the disk (post-knee) regime.
    pub disk_regime_ops: AtomicU64,
    /// Number of collective operations (each counted once per rank / nprocs).
    pub collective_ops: AtomicU64,
    /// Bytes moved by collective operations (total across ranks).
    pub collective_bytes: AtomicU64,
}

/// A point-in-time copy of [`Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Independent operations issued.
    pub independent_ops: u64,
    /// Bytes moved by independent operations.
    pub independent_bytes: u64,
    /// Independent ops in the disk regime.
    pub disk_regime_ops: u64,
    /// Collective operations issued (rank-calls).
    pub collective_ops: u64,
    /// Bytes moved by collective operations.
    pub collective_bytes: u64,
}

impl Stats {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            independent_ops: self.independent_ops.load(Ordering::Relaxed),
            independent_bytes: self.independent_bytes.load(Ordering::Relaxed),
            disk_regime_ops: self.disk_regime_ops.load(Ordering::Relaxed),
            collective_ops: self.collective_ops.load(Ordering::Relaxed),
            collective_bytes: self.collective_bytes.load(Ordering::Relaxed),
        }
    }
}

/// The virtual-time cost charged so far is observable through `NodeCtx`;
/// this helper reports a duration in seconds for table output.
pub fn secs(t: VTime) -> f64 {
    t.as_secs_f64()
}
