//! The PFS registry: a namespace of files shared by every rank of a
//! machine run.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use dstreams_machine::SharedBuffer;
use parking_lot::Mutex;

use crate::error::PfsError;
use crate::file::{FileHandle, FileObj, Stats, StatsSnapshot};
use crate::model::DiskModel;
use crate::retry::RetryPolicy;
use crate::storage::{Backend, Storage};

/// How [`Pfs::open`] treats existing / missing files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Attach to the file, creating it empty if missing. Never truncates —
    /// SPMD ranks race to open, so creation must be idempotent. Use
    /// [`Pfs::remove`] to start over.
    Create,
    /// Attach to an existing file; error if missing.
    Read,
}

pub(crate) struct PfsShared {
    pub(crate) model: DiskModel,
    pub(crate) backend: Backend,
    /// Transient-failure retry policy for the client path.
    pub(crate) retry: RetryPolicy,
    pub(crate) files: Mutex<HashMap<String, Arc<FileObj>>>,
    pub(crate) stats: Stats,
    /// Per-rank cumulative traffic, used by the cache-regime estimate.
    pub(crate) rank_traffic: Vec<AtomicU64>,
    /// Named shared staging buffers (shared-memory machines only): the
    /// "single buffer" a pC++/streams SMP stream packs into.
    pub(crate) scratch: Mutex<HashMap<String, SharedBuffer>>,
}

/// A simulated parallel file system.
///
/// Create one `Pfs` per experiment, clone it into the machine closure, and
/// open files from each rank:
///
/// ```
/// use dstreams_machine::{Machine, MachineConfig};
/// use dstreams_pfs::{Backend, DiskModel, OpenMode, Pfs};
///
/// let pfs = Pfs::new(4, DiskModel::instant(), Backend::Memory);
/// let p = pfs.clone();
/// Machine::run(MachineConfig::functional(4), move |ctx| {
///     let fh = p.open(ctx.rank() == 0, "data", OpenMode::Create).unwrap();
///     let block = vec![ctx.rank() as u8; 4];
///     let off = fh.write_ordered(ctx, &block).unwrap();
///     assert_eq!(off, ctx.rank() as u64 * 4);
/// })
/// .unwrap();
/// assert_eq!(pfs.file_size("data").unwrap(), 16);
/// ```
#[derive(Clone)]
pub struct Pfs {
    shared: Arc<PfsShared>,
}

impl Pfs {
    /// Create a PFS for a machine of `nprocs` ranks with the given cost
    /// model and backend.
    pub fn new(nprocs: usize, model: DiskModel, backend: Backend) -> Self {
        Pfs {
            shared: Arc::new(PfsShared {
                model,
                backend,
                retry: RetryPolicy::default(),
                files: Mutex::new(HashMap::new()),
                stats: Stats::default(),
                rank_traffic: (0..nprocs.max(1)).map(|_| AtomicU64::new(0)).collect(),
                scratch: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// A memory-backed, cost-free PFS for functional tests.
    pub fn in_memory(nprocs: usize) -> Self {
        Pfs::new(nprocs, DiskModel::instant(), Backend::Memory)
    }

    /// Replace the transient-failure retry policy (builder style).
    ///
    /// Call right after construction, before the instance is cloned into
    /// a machine closure — once clones exist the policy is frozen.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        if let Some(shared) = Arc::get_mut(&mut self.shared) {
            shared.retry = policy;
        }
        self
    }

    /// The transient-failure retry policy in force.
    pub fn retry(&self) -> RetryPolicy {
        self.shared.retry
    }

    /// Attach to an existing disk-backed PFS directory from an earlier
    /// process: every regular file in `dir` is registered (without
    /// truncation) under its on-disk name. Call *before* the machine run.
    pub fn attach_disk(
        nprocs: usize,
        model: DiskModel,
        dir: std::path::PathBuf,
    ) -> Result<Self, PfsError> {
        let pfs = Pfs::new(nprocs, model, Backend::Disk(dir.clone()));
        if dir.is_dir() {
            let mut files = pfs.shared.files.lock();
            for entry in std::fs::read_dir(&dir)? {
                let entry = entry?;
                if !entry.file_type()?.is_file() {
                    continue;
                }
                let name = entry.file_name().to_string_lossy().into_owned();
                let storage = Storage::attach_disk(&dir, &name)?;
                files.insert(
                    name.clone(),
                    Arc::new(FileObj {
                        name,
                        storage: Mutex::new(storage),
                        log_cursor: std::sync::atomic::AtomicU64::new(0),
                    }),
                );
            }
        }
        Ok(pfs)
    }

    /// Open (or idempotently create) a file.
    ///
    /// `is_creator` disambiguates the backend allocation: on a Disk backend
    /// exactly one rank should pass `true` (conventionally rank 0) so the
    /// real file is truncated once, not once per rank. On the Memory
    /// backend the flag is irrelevant. With `OpenMode::Read` the flag is
    /// ignored entirely.
    pub fn open(
        &self,
        is_creator: bool,
        name: &str,
        mode: OpenMode,
    ) -> Result<FileHandle, PfsError> {
        let mut files = self.shared.files.lock();
        let file = match files.get(name) {
            Some(f) => Arc::clone(f),
            None => match mode {
                OpenMode::Read => return Err(PfsError::NotFound(name.to_string())),
                OpenMode::Create => {
                    let storage = match &self.shared.backend {
                        Backend::Memory => Storage::new_mem(),
                        Backend::Disk(dir) => {
                            // First opener allocates; concurrent openers of
                            // the same name are serialized by the registry
                            // lock, so only one allocation happens even if
                            // several ranks pass is_creator = true.
                            let _ = is_creator;
                            Storage::new_disk(dir, name)?
                        }
                    };
                    let obj = Arc::new(FileObj {
                        name: name.to_string(),
                        storage: Mutex::new(storage),
                        log_cursor: std::sync::atomic::AtomicU64::new(0),
                    });
                    files.insert(name.to_string(), Arc::clone(&obj));
                    obj
                }
            },
        };
        Ok(FileHandle {
            pfs: Arc::clone(&self.shared),
            file,
            pos: Cell::new(0),
            record_seq: Cell::new(0),
            agg_peer_crash: Cell::new(false),
            _not_send: std::marker::PhantomData,
        })
    }

    /// Remove a file from the namespace (destroys disk backing).
    pub fn remove(&self, name: &str) -> Result<(), PfsError> {
        let obj = self
            .shared
            .files
            .lock()
            .remove(name)
            .ok_or_else(|| PfsError::NotFound(name.to_string()))?;
        match Arc::try_unwrap(obj) {
            Ok(obj) => obj.storage.into_inner().destroy(),
            // Still open somewhere: drop from the namespace, keep bytes
            // alive for existing handles (POSIX unlink semantics).
            Err(_) => Ok(()),
        }
    }

    /// Truncate a file to `len` bytes, dropping everything past that
    /// point. Lengths at or beyond the current size are a no-op — this
    /// never grows a file.
    ///
    /// This is the crash-recovery primitive: after `recovery_scan` finds
    /// a torn tail record, truncating back to `sealed_bytes` restores the
    /// committed prefix (what `dsdump --recover` does to real files).
    /// Like [`Pfs::remove`] it is a namespace-level metadata operation —
    /// no model cost is charged. SPMD caveat: have one rank decide and
    /// truncate, then broadcast the outcome (the
    /// `dstreams_core::checkpoint` recovery driver does exactly that).
    pub fn truncate_file(&self, name: &str, len: u64) -> Result<(), PfsError> {
        let obj = self
            .shared
            .files
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| PfsError::NotFound(name.to_string()))?;
        let result = obj.storage.lock().truncate_to(len);
        result
    }

    /// Whether a file exists.
    ///
    /// SPMD caveat: this samples shared state without synchronization. If
    /// different ranks may race against another rank's `open(Create)`,
    /// have rank 0 decide and broadcast the verdict (see
    /// `dstreams_core::checkpoint` for the pattern) — otherwise ranks can
    /// take different branches and desynchronize their collectives.
    pub fn exists(&self, name: &str) -> bool {
        self.shared.files.lock().contains_key(name)
    }

    /// Size of a named file.
    pub fn file_size(&self, name: &str) -> Result<u64, PfsError> {
        self.shared
            .files
            .lock()
            .get(name)
            .map(|f| f.len())
            .ok_or_else(|| PfsError::NotFound(name.to_string()))
    }

    /// Sorted list of file names.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.files.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Operation counters (for ablation reporting).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The cost model in force.
    pub fn model(&self) -> &DiskModel {
        &self.shared.model
    }

    /// The named shared staging buffer, created on first request. All
    /// ranks asking for the same name receive clones of one buffer —
    /// the substrate for the shared-memory single-buffer stream variant.
    pub fn scratch(&self, name: &str) -> SharedBuffer {
        self.shared
            .scratch
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_machine::{Machine, MachineConfig, VTime};

    #[test]
    fn open_read_of_missing_file_fails() {
        let pfs = Pfs::in_memory(1);
        assert!(matches!(
            pfs.open(true, "nope", OpenMode::Read),
            Err(PfsError::NotFound(_))
        ));
    }

    #[test]
    fn create_is_idempotent_across_ranks() {
        let pfs = Pfs::in_memory(4);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(4), move |ctx| {
            let fh = p.open(ctx.is_root(), "shared", OpenMode::Create).unwrap();
            ctx.barrier().unwrap();
            // All ranks see the same object.
            if ctx.is_root() {
                fh.write_at(ctx, 0, b"root wrote").unwrap();
            }
            ctx.barrier().unwrap();
            let mut buf = vec![0u8; 10];
            fh.read_at(ctx, 0, &mut buf).unwrap();
            assert_eq!(&buf, b"root wrote");
        })
        .unwrap();
        assert_eq!(pfs.list(), vec!["shared".to_string()]);
    }

    #[test]
    fn independent_write_read_with_private_positions() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let fh = p.open(ctx.is_root(), "f", OpenMode::Create).unwrap();
            // Each rank streams through its own region.
            fh.seek(ctx.rank() as u64 * 8);
            fh.write(ctx, &[ctx.rank() as u8; 4]).unwrap();
            fh.write(ctx, &[0xAA; 4]).unwrap();
            assert_eq!(fh.pos(), ctx.rank() as u64 * 8 + 8);
            ctx.barrier().unwrap();
            fh.seek(ctx.rank() as u64 * 8);
            let mut buf = [0u8; 4];
            fh.read(ctx, &mut buf).unwrap();
            assert_eq!(buf, [ctx.rank() as u8; 4]);
        })
        .unwrap();
        assert_eq!(pfs.file_size("f").unwrap(), 16);
        assert_eq!(pfs.stats().independent_ops, 2 * 3);
    }

    #[test]
    fn write_ordered_lands_blocks_in_rank_order() {
        let pfs = Pfs::in_memory(4);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(4), move |ctx| {
            let fh = p.open(ctx.is_root(), "ordered", OpenMode::Create).unwrap();
            // Variable block sizes: rank r writes r+1 bytes of value r.
            let block = vec![ctx.rank() as u8; ctx.rank() + 1];
            let off = fh.write_ordered(ctx, &block).unwrap();
            let expect: u64 = (0..ctx.rank()).map(|r| r as u64 + 1).sum();
            assert_eq!(off, expect);
            // Second collective appends after the first.
            let off2 = fh.write_ordered(ctx, &[0xFF]).unwrap();
            assert_eq!(off2, 10 + ctx.rank() as u64);
        })
        .unwrap();
        let p2 = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p2.open(false, "ordered", OpenMode::Read).unwrap();
            let mut buf = vec![0u8; 14];
            fh.read_at(ctx, 0, &mut buf).unwrap();
            assert_eq!(
                buf,
                vec![0, 1, 1, 2, 2, 2, 3, 3, 3, 3, 0xFF, 0xFF, 0xFF, 0xFF]
            );
        })
        .unwrap();
    }

    #[test]
    fn read_ordered_returns_each_ranks_slice() {
        let pfs = Pfs::in_memory(3);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(3), move |ctx| {
            let fh = p.open(ctx.is_root(), "r", OpenMode::Create).unwrap();
            fh.write_ordered(ctx, &[ctx.rank() as u8 + 1; 5]).unwrap();
            let got = fh.read_ordered(ctx, ctx.rank() as u64 * 5, 5).unwrap();
            assert_eq!(got, vec![ctx.rank() as u8 + 1; 5]);
            // Zero-length participation is legal.
            let empty = fh.read_ordered(ctx, 0, 0).unwrap();
            assert!(empty.is_empty());
        })
        .unwrap();
    }

    #[test]
    fn collective_cost_reaches_all_ranks() {
        let mut model = DiskModel::instant();
        model.coll_latency = VTime::from_millis(100);
        let pfs = Pfs::new(2, model, Backend::Memory);
        let p = pfs.clone();
        let times = Machine::run(MachineConfig::functional(2), move |ctx| {
            let fh = p.open(ctx.is_root(), "c", OpenMode::Create).unwrap();
            fh.write_ordered(ctx, b"xx").unwrap();
            ctx.now()
        })
        .unwrap();
        for t in times {
            assert!(t >= VTime::from_millis(100));
        }
    }

    #[test]
    fn unbuffered_ops_cost_more_than_one_bulk_op() {
        // The benchmark's core claim, at the PFS level: many small
        // independent ops are slower than one ordered write of the same
        // bytes under the Paragon model.
        let model = DiskModel::paragon_pfs();
        // Paper-scale sizes: ~700 segments of 5.6 KB per rank (the 2.8 MB
        // row of Table 1). At small sizes the collective startup latency
        // can exceed the unbuffered cost; the paper's tables start at
        // 1.4 MB where buffering already wins.
        let nops = 700usize;
        let chunk = 5600usize;

        let pfs_a = Pfs::new(2, model.clone(), Backend::Memory);
        let pa = pfs_a.clone();
        let t_unbuf = Machine::run(MachineConfig::paragon(2), move |ctx| {
            let fh = pa.open(ctx.is_root(), "u", OpenMode::Create).unwrap();
            fh.seek((ctx.rank() * nops * chunk) as u64);
            for _ in 0..nops {
                fh.write(ctx, &vec![7u8; chunk]).unwrap();
            }
            ctx.now()
        })
        .unwrap();

        let pfs_b = Pfs::new(2, model, Backend::Memory);
        let pb = pfs_b.clone();
        let t_bulk = Machine::run(MachineConfig::paragon(2), move |ctx| {
            let fh = pb.open(ctx.is_root(), "b", OpenMode::Create).unwrap();
            fh.write_ordered(ctx, &vec![7u8; nops * chunk]).unwrap();
            ctx.now()
        })
        .unwrap();

        assert_eq!(pfs_a.file_size("u").unwrap(), pfs_b.file_size("b").unwrap());
        assert!(
            t_unbuf[0] > t_bulk[0],
            "unbuffered {} should exceed bulk {}",
            t_unbuf[0],
            t_bulk[0]
        );
    }

    #[test]
    fn remove_then_reopen_starts_empty() {
        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p.open(true, "tmp", OpenMode::Create).unwrap();
            fh.write(ctx, b"data").unwrap();
        })
        .unwrap();
        assert_eq!(pfs.file_size("tmp").unwrap(), 4);
        pfs.remove("tmp").unwrap();
        assert!(!pfs.exists("tmp"));
        assert!(matches!(pfs.remove("tmp"), Err(PfsError::NotFound(_))));
    }

    #[test]
    fn disk_backend_roundtrips_through_real_files() {
        let dir = std::env::temp_dir().join(format!("dstreams-pfs-int-{}", std::process::id()));
        let pfs = Pfs::new(2, DiskModel::instant(), Backend::Disk(dir.clone()));
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let fh = p.open(ctx.is_root(), "real.bin", OpenMode::Create).unwrap();
            fh.write_ordered(ctx, &[ctx.rank() as u8; 8]).unwrap();
            let got = fh.read_ordered(ctx, ctx.rank() as u64 * 8, 8).unwrap();
            assert_eq!(got, vec![ctx.rank() as u8; 8]);
        })
        .unwrap();
        pfs.remove("real.bin").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
