//! Error type for the parallel file system.

use std::fmt;

use dstreams_machine::MachineError;

/// Errors raised by PFS operations.
#[derive(Debug)]
pub enum PfsError {
    /// Named file does not exist.
    NotFound(String),
    /// Attempt to create a file that already exists with `OpenMode::CreateNew`.
    AlreadyExists(String),
    /// A read ran past the end of the file.
    OutOfBounds {
        /// File name.
        file: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Actual file size.
        size: u64,
    },
    /// Opening a file for reading that has not been written.
    EmptyRead(String),
    /// Underlying I/O failure (real-disk backend, or an injected fault).
    /// The [`std::io::ErrorKind`] is preserved so the retry policy can
    /// classify the failure as transient or permanent.
    Io {
        /// Structured failure kind from the operating system (or the
        /// fault injector).
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        msg: String,
    },
    /// A machine-level failure (peer death, collective misuse) surfaced
    /// through a collective PFS operation.
    Machine(MachineError),
    /// Collective PFS call with inconsistent arguments across ranks.
    CollectiveMismatch(String),
}

impl fmt::Display for PfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfsError::NotFound(name) => write!(f, "pfs file not found: {name:?}"),
            PfsError::AlreadyExists(name) => write!(f, "pfs file already exists: {name:?}"),
            PfsError::OutOfBounds {
                file,
                offset,
                len,
                size,
            } => write!(
                f,
                "read [{offset}, {offset}+{len}) out of bounds for {file:?} of size {size}"
            ),
            PfsError::EmptyRead(name) => write!(f, "file {name:?} opened for read but is empty"),
            PfsError::Io { kind, msg } => write!(f, "I/O error ({kind:?}): {msg}"),
            PfsError::Machine(e) => write!(f, "machine error during pfs collective: {e}"),
            PfsError::CollectiveMismatch(msg) => {
                write!(f, "inconsistent collective pfs call: {msg}")
            }
        }
    }
}

impl std::error::Error for PfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PfsError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for PfsError {
    fn from(e: MachineError) -> Self {
        PfsError::Machine(e)
    }
}

impl From<std::io::Error> for PfsError {
    fn from(e: std::io::Error) -> Self {
        PfsError::Io {
            kind: e.kind(),
            msg: e.to_string(),
        }
    }
}

impl PfsError {
    /// Construct an I/O error from a kind and a message (the form the
    /// fault injector uses).
    pub fn io(kind: std::io::ErrorKind, msg: impl Into<String>) -> Self {
        PfsError::Io {
            kind,
            msg: msg.into(),
        }
    }

    /// The preserved [`std::io::ErrorKind`], when this is an I/O error.
    pub fn io_kind(&self) -> Option<std::io::ErrorKind> {
        match self {
            PfsError::Io { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_file() {
        let e = PfsError::OutOfBounds {
            file: "ckpt".into(),
            offset: 100,
            len: 8,
            size: 64,
        };
        let s = e.to_string();
        assert!(s.contains("ckpt") && s.contains("100") && s.contains("64"));
    }

    #[test]
    fn machine_error_converts_and_chains() {
        let e: PfsError = MachineError::EmptyMachine.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn io_errors_keep_their_kind_through_conversion_and_display() {
        use std::io::ErrorKind;
        let os = std::io::Error::new(ErrorKind::TimedOut, "slow disk");
        let e: PfsError = os.into();
        assert_eq!(e.io_kind(), Some(ErrorKind::TimedOut));
        let s = e.to_string();
        assert!(s.contains("TimedOut") && s.contains("slow disk"), "{s}");
        assert_eq!(
            PfsError::io(ErrorKind::Interrupted, "x").io_kind(),
            Some(ErrorKind::Interrupted)
        );
        assert_eq!(PfsError::NotFound("f".into()).io_kind(), None);
    }
}
