//! Two-phase collective buffering (aggregator I/O).
//!
//! When a [`dstreams_machine::CollectiveConfig`] is present on the
//! machine, the ordered collectives in [`crate::FileHandle`] route
//! through this module instead of issuing one physical transfer per
//! rank. A deterministic subset of ranks — the *aggregators* — each
//! owns a contiguous *file domain* of the region the collective
//! touches. Non-aggregators ship their blocks (or receive their spans)
//! over the ordinary message layer in a *shuttle* phase, and each
//! aggregator then issues a single coalesced, optionally
//! stripe-aligned, `write_at`/`read_at` against storage. Unaligned
//! region heads are handled by *data sieving*: the aggregator reads the
//! stripe head back and rewrites the whole span as one aligned
//! operation.
//!
//! The result is byte-identical to the direct path — same file image,
//! same per-rank offsets, same returned digests — but the physical
//! operation count drops from `nprocs` to the number of aggregators,
//! which is where the latency term of the collective cost model lives.
//! Shuttle traffic is visible in traces as `AggShuttle` events (paired
//! send/receive halves; `dsverify` checks their conservation).
//!
//! Fault composition mirrors the direct path:
//!
//! * **Transient** faults are retired at the head of the operation.
//! * **Torn** writes ship the persisted prefix zero-padded to full
//!   length — byte-identical to the direct path, whose unwritten suffix
//!   of freshly appended space reads back as zeros.
//! * **Crash** (power-cut): the blocking *read* dies on entry exactly
//!   like the direct path. Writes (and begin-variant reads) keep the
//!   crashed rank participating through the coordination so peers and
//!   aggregators are not stranded mid-shuttle; the closing crash-flag
//!   all-reduce then tells every survivor the record must not be sealed
//!   (surfaced through [`FileHandle::take_peer_crashed`] or
//!   [`crate::IoHandle::peer_crashed`]), crashed aggregators are
//!   excluded from domain ownership, and the rank is marked dead at the
//!   end. A surviving aggregator re-covers the dead rank's file domain
//!   on the next collective, because domains are recomputed from the
//!   live set every operation.

use std::borrow::Cow;

use dstreams_machine::wire::{frame_blocks, unframe_blocks};
use dstreams_machine::{
    CollectiveConfig, FaultDecision, MachineError, NodeCtx, VTime, AGG_SHUTTLE_RETRY_BASE,
    AGG_SHUTTLE_TAG,
};
use dstreams_trace::{CollectiveRegime, EventKind, FaultKind, PfsOp};

use crate::checksum::ChunkSum;
use crate::error::PfsError;
use crate::file::{decode_u64, FileHandle};
use crate::nonblocking::IoHandle;

/// What an aggregated ordered read hands back: this rank's bytes, their
/// per-chunk digests, and the deferred-cost handle in begin mode.
type ReadOutcome = (Vec<u8>, Vec<ChunkSum>, Option<IoHandle>);

/// The configured aggregator ranks minus the ranks whose transfer this
/// operation power-cuts. Every rank computes the same set from the
/// exchanged crash flags, so domain ownership never diverges.
fn live_aggregators(cc: CollectiveConfig, nprocs: usize, crashed: &[bool]) -> Vec<usize> {
    cc.aggregator_ranks(nprocs)
        .into_iter()
        .filter(|&r| !crashed[r])
        .collect()
}

/// Failover election: the configured aggregator set with every crashed
/// rank dropped (exactly like [`live_aggregators`]) and every *suspect*
/// rank deterministically replaced by the next usable rank scanning
/// forward (mod nprocs). With no suspects this equals
/// [`live_aggregators`], so engaging failover never changes the
/// fault-free domain assignment.
fn elect_aggregators(
    cc: CollectiveConfig,
    nprocs: usize,
    crashed: &[bool],
    excluded: &[bool],
) -> Vec<usize> {
    let mut taken = vec![false; nprocs];
    let mut out = Vec::new();
    for r in cc.aggregator_ranks(nprocs) {
        if crashed[r] {
            continue;
        }
        if !excluded[r] && !taken[r] {
            taken[r] = true;
            out.push(r);
            continue;
        }
        for d in 1..nprocs {
            let c = (r + d) % nprocs;
            if !crashed[c] && !excluded[c] && !taken[c] {
                taken[c] = true;
                out.push(c);
                break;
            }
        }
    }
    out
}

/// Pack a per-rank suspicion bitmask into little-endian bytes for the
/// failover suspicion exchange.
fn pack_mask(bits: &[bool]) -> Vec<u8> {
    let mut m = vec![0u8; bits.len().div_ceil(8)];
    for (r, &b) in bits.iter().enumerate() {
        if b {
            m[r / 8] |= 1 << (r % 8);
        }
    }
    m
}

/// Read bit `r` of a packed suspicion mask.
fn mask_bit(m: &[u8], r: usize) -> bool {
    m.get(r / 8).is_some_and(|byte| byte & (1 << (r % 8)) != 0)
}

/// Monotone domain boundaries: `ndomains + 1` offsets partitioning
/// `[lo, hi)` into near-equal contiguous file domains, with interior
/// boundaries snapped *down* to stripe multiples when `align` is set.
/// Snapping can collapse a boundary onto its predecessor (an empty
/// domain) but never reorders them.
fn domain_bounds(lo: u64, hi: u64, ndomains: usize, stripe: u64, align: bool) -> Vec<u64> {
    let total = hi - lo;
    let mut bounds = Vec::with_capacity(ndomains + 1);
    bounds.push(lo);
    for k in 1..ndomains as u64 {
        let mut cut = lo + (k as u128 * total as u128 / ndomains as u128) as u64;
        if align && stripe > 1 {
            cut = cut / stripe * stripe;
        }
        let prev = *bounds.last().expect("bounds start non-empty");
        bounds.push(cut.clamp(prev, hi));
    }
    if ndomains > 0 {
        bounds.push(hi);
    }
    bounds
}

/// Non-empty intersection of two half-open intervals.
fn isect(a0: u64, a1: u64, b0: u64, b1: u64) -> Option<(u64, u64)> {
    let s = a0.max(b0);
    let e = a1.min(b1);
    (s < e).then_some((s, e))
}

/// Physical span `(start, len)` an aggregator writes for the logical
/// domain `[d0, d1)`. With alignment on, an unaligned domain start is
/// extended down to its stripe boundary (the sieve head that gets read
/// back and rewritten). Only the *first* domain of an append can start
/// unaligned — interior boundaries are stripe-snapped — and its start
/// is the old end of file, so the sieve head always exists on disk.
fn physical_write_span(d0: u64, d1: u64, stripe: u64, align: bool) -> (u64, u64) {
    if d1 <= d0 {
        return (d0, 0);
    }
    let p0 = if align { d0 / stripe * stripe } else { d0 };
    (p0, d1 - p0)
}

/// Physical span `(start, len)` an aggregator reads for the logical
/// domain `[d0, d1)`: stripe-extended outward when alignment is on,
/// then clipped to the current file length (bytes past EOF read as
/// zeros in the logical domain).
fn physical_read_span(d0: u64, d1: u64, stripe: u64, align: bool, file_len: u64) -> (u64, u64) {
    if d1 <= d0 {
        return (d0.min(file_len), 0);
    }
    let (mut p0, mut p1) = (d0, d1);
    if align {
        p0 = d0 / stripe * stripe;
        p1 = d1.div_ceil(stripe) * stripe;
    }
    p1 = p1.min(file_len);
    p0 = p0.min(p1);
    (p0, p1 - p0)
}

impl FileHandle {
    /// Aggregated [`FileHandle::write_ordered_summed`].
    pub(crate) fn agg_write_ordered_summed(
        &self,
        ctx: &NodeCtx,
        cc: CollectiveConfig,
        block: &[u8],
    ) -> Result<(u64, Vec<ChunkSum>), PfsError> {
        let (off, digests, _handle) = self.agg_write_ordered(ctx, cc, block, false)?;
        Ok((off, digests))
    }

    /// Aggregated [`FileHandle::write_ordered_begin_summed`].
    pub(crate) fn agg_write_ordered_begin_summed(
        &self,
        ctx: &NodeCtx,
        cc: CollectiveConfig,
        block: &[u8],
    ) -> Result<(u64, Vec<ChunkSum>, IoHandle), PfsError> {
        let (off, digests, handle) = self.agg_write_ordered(ctx, cc, block, true)?;
        Ok((off, digests, handle.expect("begin mode returns a handle")))
    }

    /// Aggregated [`FileHandle::read_ordered_summed`].
    pub(crate) fn agg_read_ordered_summed(
        &self,
        ctx: &NodeCtx,
        cc: CollectiveConfig,
        offset: u64,
        len: usize,
    ) -> Result<(Vec<u8>, Vec<ChunkSum>), PfsError> {
        let (buf, digests, _handle) = self.agg_read_ordered(ctx, cc, offset, len, false)?;
        Ok((buf, digests))
    }

    /// Aggregated [`FileHandle::read_ordered_begin_summed`].
    pub(crate) fn agg_read_ordered_begin_summed(
        &self,
        ctx: &NodeCtx,
        cc: CollectiveConfig,
        offset: u64,
        len: usize,
    ) -> Result<(Vec<u8>, Vec<ChunkSum>, IoHandle), PfsError> {
        let (buf, digests, handle) = self.agg_read_ordered(ctx, cc, offset, len, true)?;
        Ok((buf, digests, handle.expect("begin mode returns a handle")))
    }

    fn agg_write_ordered(
        &self,
        ctx: &NodeCtx,
        cc: CollectiveConfig,
        block: &[u8],
        begin: bool,
    ) -> Result<(u64, Vec<ChunkSum>, Option<IoHandle>), PfsError> {
        let _scope = ctx.collective_scope();
        let op = ctx.next_pfs_op();
        let fate = self.collective_fate(ctx, op, Some(block.len()))?;
        ctx.barrier()?;

        // Fault disclosure and the effective bytes this rank ships. A
        // torn or power-cut transfer ships its persisted prefix
        // zero-padded to full length — byte-identical to the direct
        // path, whose unwritten suffix of freshly appended space reads
        // back as zeros. The crashed rank keeps participating so the
        // aggregators it intersects are not stranded mid-shuttle.
        let my_crash = matches!(fate, FaultDecision::Crash { .. });
        let eff: Cow<'_, [u8]> = match fate {
            FaultDecision::Proceed | FaultDecision::Transient => Cow::Borrowed(block),
            FaultDecision::Torn { keep } => {
                let keep = keep.min(block.len());
                self.emit_fault(ctx, FaultKind::Torn, op, keep as u64);
                let mut v = block[..keep].to_vec();
                v.resize(block.len(), 0);
                Cow::Owned(v)
            }
            FaultDecision::Crash { keep } => {
                let k = keep.unwrap_or(0).min(block.len());
                self.emit_fault(ctx, FaultKind::Crash, op, k as u64);
                let mut v = block[..k].to_vec();
                v.resize(block.len(), 0);
                Cow::Owned(v)
            }
        };

        // Size/digest/crash-flag exchange; rank 0 supplies the append
        // base. The digest is of the full intended block even for a
        // torn transfer (torn writes are silent; seal verification
        // catches them later) — identical to the direct path.
        let my_sum = ChunkSum::of(block);
        let mut contrib = Vec::with_capacity(25);
        contrib.extend_from_slice(&(block.len() as u64).to_le_bytes());
        contrib.extend_from_slice(&my_sum.hash().to_le_bytes());
        contrib.extend_from_slice(&my_sum.rpow().to_le_bytes());
        contrib.push(my_crash as u8);
        let gathered = ctx.gather(0, contrib)?;
        let plan = if ctx.is_root() {
            let frames = gathered.expect("root gathers");
            let base = self.file.len();
            let mut blocks = Vec::with_capacity(frames.len() + 1);
            blocks.push(base.to_le_bytes().to_vec());
            for frame in &frames {
                if frame.len() != 25 {
                    return Err(PfsError::CollectiveMismatch(
                        "aggregated write: malformed size/digest frame".into(),
                    ));
                }
                blocks.push(frame.clone());
            }
            frame_blocks(&blocks)
        } else {
            Vec::new()
        };
        let plan = ctx.broadcast(0, plan)?;
        let parts = unframe_blocks(&plan).ok_or_else(|| {
            PfsError::CollectiveMismatch("aggregated write: malformed plan".into())
        })?;
        let nprocs = ctx.nprocs();
        if parts.len() != nprocs + 1 {
            return Err(PfsError::CollectiveMismatch(
                "aggregated write: plan size mismatch".into(),
            ));
        }
        let base = decode_u64(&parts[0], "aggregated write plan base")?;
        let mut sizes = Vec::with_capacity(nprocs);
        let mut digests = Vec::with_capacity(nprocs);
        let mut crashed = Vec::with_capacity(nprocs);
        for frame in &parts[1..] {
            if frame.len() != 25 {
                return Err(PfsError::CollectiveMismatch(
                    "aggregated write: malformed plan frame".into(),
                ));
            }
            sizes.push(decode_u64(&frame[..8], "aggregated write plan size")?);
            digests.push(ChunkSum::from_parts(
                decode_u64(&frame[8..16], "aggregated write plan digest hash")?,
                decode_u64(&frame[16..24], "aggregated write plan digest rpow")?,
            ));
            crashed.push(frame[24] != 0);
        }
        if sizes[ctx.rank()] != block.len() as u64 {
            return Err(PfsError::CollectiveMismatch(
                "aggregated write: my block size desynchronized".into(),
            ));
        }
        let mut offsets = Vec::with_capacity(nprocs);
        let mut acc = base;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        let total = acc - base;
        let me = ctx.rank();
        let my_off = offsets[me];

        // File-domain assignment over the appended region, from the
        // live aggregator set — recomputed every operation, so a
        // surviving aggregator re-covers a dead peer's domain.
        //
        // Under a message fault plan the shuttle phase additionally runs
        // inside a failover loop: a send that hits a dead edge records
        // the unreachable owner as a *suspect* instead of failing the
        // operation, every rank exchanges its suspicions over the
        // collective plane (which edge cuts never sever), the domains
        // are re-elected with suspects replaced by promotion, and all
        // slices are re-shipped on a fresh per-round tag. The loop
        // settles when a round surfaces no new suspect; sealed records
        // are therefore byte-identical to the fault-free run. A record
        // that genuinely cannot be completed — a killed rank's data is
        // unreachable from everyone — ends with `data_lost` set, which
        // folds into the closing flag exchange so the record is never
        // sealed.
        let failover = ctx.msg_faults_active();
        let stripe = self.pfs.model.stripe_bytes.max(1);
        let mut excluded = vec![false; nprocs];
        let mut round: u32 = 0;
        let (live, bounds, my_dom, data_lost) = loop {
            let live = if failover {
                elect_aggregators(cc, nprocs, &crashed, &excluded)
            } else {
                live_aggregators(cc, nprocs, &crashed)
            };
            let bounds = domain_bounds(base, base + total, live.len(), stripe, cc.stripe_align);
            if failover && live.is_empty() {
                break (live, bounds, None, true);
            }
            let tag = if round == 0 {
                AGG_SHUTTLE_TAG
            } else {
                AGG_SHUTTLE_RETRY_BASE + round
            };
            let mut suspects = vec![false; nprocs];

            // Shuttle phase, sends first: every rank slices its block
            // across the domains in ascending order. Sends never block,
            // so draining all sends before any receive is deadlock-free.
            for (k, &owner) in live.iter().enumerate() {
                if owner == me {
                    continue;
                }
                if let Some((s, e)) = isect(
                    my_off,
                    my_off + block.len() as u64,
                    bounds[k],
                    bounds[k + 1],
                ) {
                    match ctx.send(
                        owner,
                        tag,
                        &eff[(s - my_off) as usize..(e - my_off) as usize],
                    ) {
                        Ok(()) => ctx.emit_with(|| EventKind::AggShuttle {
                            outgoing: true,
                            peer: owner,
                            bytes: e - s,
                            file: self.file.name().to_string(),
                            op: PfsOp::Write,
                            offset: Some(s),
                        }),
                        Err(MachineError::PeerGone { rank }) if failover => {
                            suspects[rank] = true;
                        }
                        Err(err) => return Err(err.into()),
                    }
                }
            }

            // Aggregator side: receive the intersecting slices
            // (ascending source rank — each (source, owner) pair
            // carries exactly one slice per round) and assemble the
            // domain.
            let my_domain = live.iter().position(|&r| r == me);
            let mut dom = None;
            if let Some(k) = my_domain {
                let (d0, d1) = (bounds[k], bounds[k + 1]);
                let mut d = vec![0u8; (d1 - d0) as usize];
                for (r, (&r_off, &r_size)) in offsets.iter().zip(&sizes).enumerate() {
                    if let Some((s, e)) = isect(r_off, r_off + r_size, d0, d1) {
                        let dst = &mut d[(s - d0) as usize..(e - d0) as usize];
                        if r == me {
                            dst.copy_from_slice(&eff[(s - my_off) as usize..(e - my_off) as usize]);
                        } else {
                            match ctx.recv(r, tag) {
                                Ok(piece) => {
                                    if piece.len() as u64 != e - s {
                                        return Err(PfsError::CollectiveMismatch(
                                            "aggregated write: shuttle slice size mismatch".into(),
                                        ));
                                    }
                                    ctx.emit_with(|| EventKind::AggShuttle {
                                        outgoing: false,
                                        peer: r,
                                        bytes: e - s,
                                        file: self.file.name().to_string(),
                                        op: PfsOp::Write,
                                        offset: Some(s),
                                    });
                                    dst.copy_from_slice(&piece);
                                }
                                Err(MachineError::PeerGone { .. }) if failover => {
                                    // The sender that gave up on this
                                    // edge is reporting *us* suspect in
                                    // the exchange below; leave the hole
                                    // — either the domain moves to a
                                    // reachable owner next round, or the
                                    // record goes unsealed.
                                }
                                Err(err) => return Err(err.into()),
                            }
                        }
                    }
                }
                dom = Some(d);
            }
            if !failover {
                break (
                    live,
                    bounds,
                    my_domain.map(|k| (k, dom.expect("owner domain"))),
                    false,
                );
            }

            // Suspicion exchange over the collective plane, which edge
            // cuts and kills never sever — every rank leaves with the
            // same verdict, so the next election cannot diverge.
            let verdicts = ctx.all_gather(pack_mask(&suspects))?;
            let mut news = false;
            for v in &verdicts {
                for (r, ex) in excluded.iter_mut().enumerate() {
                    if mask_bit(v, r) && !*ex {
                        *ex = true;
                        news = true;
                    }
                }
            }
            if !news {
                break (
                    live,
                    bounds,
                    my_domain.map(|k| (k, dom.expect("owner domain"))),
                    false,
                );
            }
            round += 1;
            if round as usize > nprocs {
                // Belt and braces: every extra round excluded at least
                // one more rank, so this bound is unreachable — but a
                // bounded loop is a theorem the reader needn't prove.
                break (live, bounds, None, true);
            }
        };

        // Physical phase: one coalesced write per settled domain owner,
        // sieving the unaligned head of the appended region.
        let my_domain = my_dom.as_ref().map(|&(k, _)| k);
        if let Some((k, mut dom)) = my_dom {
            let (d0, d1) = (bounds[k], bounds[k + 1]);
            if d1 > d0 {
                let (p0, _plen) = physical_write_span(d0, d1, stripe, cc.stripe_align);
                if p0 < d0 {
                    // Data sieving: the appended region starts
                    // mid-stripe; read the stripe head back and rewrite
                    // the whole span as one aligned operation.
                    let mut head = vec![0u8; (d0 - p0) as usize];
                    self.file
                        .storage
                        .lock()
                        .read_at(p0, &mut head, self.file.name())?;
                    head.extend_from_slice(&dom);
                    dom = head;
                }
                self.file
                    .storage
                    .lock()
                    .write_at(p0, &dom, self.file.name())?;
            }
        }

        // Cost and trace accounting: one parallel operation across the
        // live aggregators' physical spans. Every rank computes the
        // same spans from the plan, so clocks stay in lockstep.
        let mut spans = Vec::with_capacity(live.len());
        let (mut phys_total, mut phys_max) = (0u64, 0u64);
        for k in 0..live.len() {
            let (p0, plen) = physical_write_span(bounds[k], bounds[k + 1], stripe, cc.stripe_align);
            phys_total += plen;
            phys_max = phys_max.max(plen);
            spans.push((p0, plen));
        }
        let nlive = live.len();
        let cost = if nlive == 0 {
            VTime::ZERO
        } else {
            self.pfs.model.collective_cost(phys_total, phys_max, nlive)
        };
        if let Some(k) = my_domain {
            let (p0, plen) = spans[k];
            ctx.emit_with(|| EventKind::PfsCollective {
                op: PfsOp::Write,
                file: self.file.name().to_string(),
                offset: p0,
                bytes: plen,
                total_bytes: total,
                share_bytes: total / nprocs as u64,
                stripes: self.pfs.model.stripes_touched(p0, plen),
                regime: if self.pfs.model.collective_knee(phys_max) {
                    CollectiveRegime::CacheKnee
                } else {
                    CollectiveRegime::Streaming
                },
                cost_ns: cost.as_nanos(),
            });
            self.account_collective(ctx, total);
        }
        let async_op = if begin {
            Some(ctx.async_submit(if my_crash { VTime::ZERO } else { cost }))
        } else {
            if !my_crash {
                ctx.advance(cost);
            }
            None
        };

        // Closing flag all-reduce: replaces the direct path's bare
        // barrier and tells every survivor whether the record this
        // collective wrote may be sealed. Bit 0: some rank power-cut
        // its transfer. Bit 1: the shuttle lost data — a slice stayed
        // unreachable even after failover. (All ranks compute the same
        // `data_lost` from the exchanged suspicions, so the bit is
        // redundant but cheap insurance against divergence.)
        let flags = ctx.all_reduce(my_crash as u64 | ((data_lost as u64) << 1), |a, b| a | b)?;
        if begin {
            let deferred = if my_crash {
                ctx.fault_mark_dead();
                Some(MachineError::RankCrashed { rank: me }.into())
            } else {
                None
            };
            let handle = IoHandle::new(
                async_op.expect("begin mode submitted"),
                deferred,
                flags != 0,
            );
            Ok((my_off, digests, Some(handle)))
        } else {
            if flags != 0 && !my_crash {
                self.agg_peer_crash.set(true);
            }
            if my_crash {
                ctx.fault_mark_dead();
                return Err(MachineError::RankCrashed { rank: me }.into());
            }
            Ok((my_off, digests, None))
        }
    }

    fn agg_read_ordered(
        &self,
        ctx: &NodeCtx,
        cc: CollectiveConfig,
        offset: u64,
        len: usize,
        begin: bool,
    ) -> Result<ReadOutcome, PfsError> {
        let _scope = ctx.collective_scope();
        let op = ctx.next_pfs_op();
        let fate = self.collective_fate(ctx, op, None)?;
        let my_crash = matches!(fate, FaultDecision::Crash { .. });
        if my_crash {
            self.emit_fault(ctx, FaultKind::Crash, op, 0);
            if !begin {
                // Power cut on entry: identical to the direct blocking
                // read — peers block in the opening barrier and observe
                // PeerGone when the thread unwinds.
                ctx.fault_mark_dead();
                return Err(MachineError::RankCrashed { rank: ctx.rank() }.into());
            }
        }
        ctx.barrier()?;

        // Span/crash-flag exchange.
        let nprocs = ctx.nprocs();
        let me = ctx.rank();
        let mut contrib = Vec::with_capacity(17);
        contrib.extend_from_slice(&offset.to_le_bytes());
        contrib.extend_from_slice(&(len as u64).to_le_bytes());
        contrib.push(my_crash as u8);
        let frames = ctx.all_gather(contrib)?;
        let mut offs = Vec::with_capacity(nprocs);
        let mut lens = Vec::with_capacity(nprocs);
        let mut crashed = Vec::with_capacity(nprocs);
        for frame in &frames {
            if frame.len() != 17 {
                return Err(PfsError::CollectiveMismatch(
                    "aggregated read: malformed span frame".into(),
                ));
            }
            offs.push(decode_u64(&frame[..8], "aggregated read span offset")?);
            lens.push(decode_u64(&frame[8..16], "aggregated read span len")?);
            crashed.push(frame[16] != 0);
        }
        let file_len = self.file.len();
        // A span past EOF fails like the direct read: the rank keeps
        // participating (empty digest) and surfaces the error after the
        // exchanges, so peers are never stranded.
        let my_fail = len > 0 && offset + len as u64 > file_len;

        // Domains partition the union of the requested spans.
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for r in 0..nprocs {
            if lens[r] > 0 {
                lo = lo.min(offs[r]);
                hi = hi.max(offs[r] + lens[r]);
            }
        }
        if hi <= lo {
            lo = 0;
            hi = 0;
        }
        let total: u64 = lens.iter().sum();
        let live = live_aggregators(cc, nprocs, &crashed);
        let stripe = self.pfs.model.stripe_bytes.max(1);
        let bounds = domain_bounds(lo, hi, live.len(), stripe, cc.stripe_align);
        let my_domain = live.iter().position(|&r| r == me);
        let mut spans = Vec::with_capacity(live.len());
        for k in 0..live.len() {
            spans.push(physical_read_span(
                bounds[k],
                bounds[k + 1],
                stripe,
                cc.stripe_align,
                file_len,
            ));
        }

        // Aggregator side: one coalesced (stripe-extended, EOF-clipped)
        // physical read per domain, then ship each requester the slice
        // of its span this domain owns (ascending requester rank).
        // Bytes past EOF stay zero in the logical domain.
        let mut dom = Vec::new();
        if let Some(k) = my_domain {
            let (d0, d1) = (bounds[k], bounds[k + 1]);
            dom = vec![0u8; (d1 - d0) as usize];
            let (p0, plen) = spans[k];
            if plen > 0 {
                let mut phys = vec![0u8; plen as usize];
                self.file
                    .storage
                    .lock()
                    .read_at(p0, &mut phys, self.file.name())?;
                if let Some((s, e)) = isect(p0, p0 + plen, d0, d1) {
                    dom[(s - d0) as usize..(e - d0) as usize]
                        .copy_from_slice(&phys[(s - p0) as usize..(e - p0) as usize]);
                }
            }
            for r in 0..nprocs {
                if r == me {
                    continue;
                }
                if let Some((s, e)) = isect(offs[r], offs[r] + lens[r], d0, d1) {
                    ctx.send(
                        r,
                        AGG_SHUTTLE_TAG,
                        &dom[(s - d0) as usize..(e - d0) as usize],
                    )?;
                    ctx.emit_with(|| EventKind::AggShuttle {
                        outgoing: true,
                        peer: r,
                        bytes: e - s,
                        file: self.file.name().to_string(),
                        op: PfsOp::Read,
                        offset: Some(s),
                    });
                }
            }
        }

        // Requester side: assemble the span from the domain owners in
        // ascending domain order. Each (owner, requester) pair carries
        // exactly one slice, so per-channel FIFO delivery suffices.
        let mut buf = vec![0u8; len];
        for (k, &owner) in live.iter().enumerate() {
            if let Some((s, e)) = isect(offset, offset + len as u64, bounds[k], bounds[k + 1]) {
                let dst = &mut buf[(s - offset) as usize..(e - offset) as usize];
                if owner == me {
                    let d0 = bounds[k];
                    dst.copy_from_slice(&dom[(s - d0) as usize..(e - d0) as usize]);
                } else {
                    let piece = ctx.recv(owner, AGG_SHUTTLE_TAG)?;
                    if piece.len() as u64 != e - s {
                        return Err(PfsError::CollectiveMismatch(
                            "aggregated read: shuttle slice size mismatch".into(),
                        ));
                    }
                    ctx.emit_with(|| EventKind::AggShuttle {
                        outgoing: false,
                        peer: owner,
                        bytes: e - s,
                        file: self.file.name().to_string(),
                        op: PfsOp::Read,
                        offset: Some(s),
                    });
                    dst.copy_from_slice(&piece);
                }
            }
        }

        // Digest exchange: every rank's digest of the bytes it received
        // — the same values the direct path's size exchange carries, so
        // seal verification folds identically.
        let my_sum = if my_fail {
            ChunkSum::EMPTY
        } else {
            ChunkSum::of(&buf)
        };
        let mut dig = Vec::with_capacity(16);
        dig.extend_from_slice(&my_sum.hash().to_le_bytes());
        dig.extend_from_slice(&my_sum.rpow().to_le_bytes());
        let dig_frames = ctx.all_gather(dig)?;
        let mut digests = Vec::with_capacity(nprocs);
        for frame in &dig_frames {
            if frame.len() != 16 {
                return Err(PfsError::CollectiveMismatch(
                    "aggregated read: malformed digest frame".into(),
                ));
            }
            digests.push(ChunkSum::from_parts(
                decode_u64(&frame[..8], "aggregated read digest hash")?,
                decode_u64(&frame[8..16], "aggregated read digest rpow")?,
            ));
        }
        if my_fail {
            return Err(PfsError::OutOfBounds {
                file: self.file.name().to_string(),
                offset,
                len,
                size: file_len,
            });
        }

        let nlive = live.len();
        let (mut phys_total, mut phys_max) = (0u64, 0u64);
        for &(_, plen) in &spans {
            phys_total += plen;
            phys_max = phys_max.max(plen);
        }
        let cost = if nlive == 0 {
            VTime::ZERO
        } else {
            self.pfs.model.collective_cost(phys_total, phys_max, nlive)
        };
        if let Some(k) = my_domain {
            let (p0, plen) = spans[k];
            ctx.emit_with(|| EventKind::PfsCollective {
                op: PfsOp::Read,
                file: self.file.name().to_string(),
                offset: p0,
                bytes: plen,
                total_bytes: total,
                share_bytes: total / nprocs as u64,
                stripes: self.pfs.model.stripes_touched(p0, plen),
                regime: if self.pfs.model.collective_knee(phys_max) {
                    CollectiveRegime::CacheKnee
                } else {
                    CollectiveRegime::Streaming
                },
                cost_ns: cost.as_nanos(),
            });
            self.account_collective(ctx, total);
        }
        if begin {
            let async_op = ctx.async_submit(if my_crash { VTime::ZERO } else { cost });
            let deferred = if my_crash {
                ctx.fault_mark_dead();
                Some(MachineError::RankCrashed { rank: me }.into())
            } else {
                None
            };
            Ok((buf, digests, Some(IoHandle::new(async_op, deferred, false))))
        } else {
            ctx.advance(cost);
            Ok((buf, digests, None))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfs::{OpenMode, Pfs};
    use crate::DiskModel;
    use dstreams_machine::{Machine, MachineConfig};

    #[test]
    fn domain_bounds_partition_and_stay_monotone() {
        let b = domain_bounds(100, 1100, 4, 1, false);
        assert_eq!(b, vec![100, 350, 600, 850, 1100]);
        // Aligned: interior cuts snap down to stripe multiples.
        let b = domain_bounds(100, 1100, 4, 256, true);
        assert_eq!(b.first(), Some(&100));
        assert_eq!(b.last(), Some(&1100));
        for w in b.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for &cut in &b[1..b.len() - 1] {
            assert!(cut % 256 == 0 || cut == 1100);
        }
        // Degenerate: tiny region, many domains — empty tails allowed.
        let b = domain_bounds(0, 3, 8, 64, true);
        assert_eq!(b.len(), 9);
        assert_eq!(*b.last().unwrap(), 3);
    }

    #[test]
    fn physical_spans_extend_and_clip() {
        // Write: unaligned start extends down (sieve head).
        assert_eq!(physical_write_span(100, 300, 64, true), (64, 236));
        assert_eq!(physical_write_span(128, 300, 64, true), (128, 172));
        assert_eq!(physical_write_span(100, 300, 64, false), (100, 200));
        assert_eq!(physical_write_span(100, 100, 64, true), (100, 0));
        // Read: extends both ways, clipped to EOF.
        assert_eq!(physical_read_span(100, 300, 64, true, 1000), (64, 256));
        assert_eq!(physical_read_span(100, 300, 64, true, 200), (64, 136));
        assert_eq!(physical_read_span(500, 600, 64, true, 200), (200, 0));
        assert_eq!(physical_read_span(100, 100, 64, true, 1000), (100, 0));
    }

    #[test]
    fn live_aggregators_skip_crashed_ranks() {
        let cc = CollectiveConfig {
            aggregators: 4,
            stripe_align: true,
        };
        let mut crashed = vec![false; 16];
        assert_eq!(live_aggregators(cc, 16, &crashed), vec![0, 4, 8, 12]);
        crashed[4] = true;
        assert_eq!(live_aggregators(cc, 16, &crashed), vec![0, 8, 12]);
    }

    /// The aggregated path must produce the same file image and the
    /// same per-rank offsets/digests as the direct path.
    #[test]
    fn aggregated_write_matches_direct_byte_for_byte() {
        let run = |collective: Option<CollectiveConfig>| {
            let pfs = Pfs::new(6, DiskModel::paragon_pfs(), crate::Backend::Memory);
            let p = pfs.clone();
            let mut cfg = MachineConfig::functional(6);
            cfg.collective = collective;
            let per_rank = Machine::run(cfg, move |ctx| {
                let fh = p.open(ctx.is_root(), "f", OpenMode::Create).unwrap();
                let mut outs = Vec::new();
                for round in 0..3u8 {
                    // Uneven blocks, including an empty one.
                    let n = if ctx.rank() == 2 && round == 1 {
                        0
                    } else {
                        37 * (ctx.rank() + 1) + round as usize
                    };
                    let block: Vec<u8> = (0..n)
                        .map(|i| (i as u8) ^ (ctx.rank() as u8) ^ round)
                        .collect();
                    let (off, digests) = fh.write_ordered_summed(ctx, &block).unwrap();
                    assert!(!fh.take_peer_crashed());
                    outs.push((off, digests));
                }
                outs
            })
            .unwrap();
            let size = pfs.file_size("f").unwrap() as usize;
            let p2 = pfs.clone();
            let bytes = Machine::run(MachineConfig::functional(1), move |ctx| {
                let fh = p2.open(false, "f", OpenMode::Read).unwrap();
                let mut buf = vec![0u8; size];
                fh.read_at(ctx, 0, &mut buf).unwrap();
                buf
            })
            .unwrap()[0]
                .clone();
            (per_rank, bytes)
        };
        let direct = run(None);
        for aggs in [1, 2, 3, 6] {
            let aggregated = run(Some(CollectiveConfig {
                aggregators: aggs,
                stripe_align: true,
            }));
            assert_eq!(direct, aggregated, "aggregators = {aggs}");
        }
    }

    /// Aggregated reads return the same bytes and digests as direct.
    #[test]
    fn aggregated_read_matches_direct() {
        let run = |collective: Option<CollectiveConfig>| {
            let pfs = Pfs::new(4, DiskModel::paragon_pfs(), crate::Backend::Memory);
            let p = pfs.clone();
            let mut cfg = MachineConfig::functional(4);
            cfg.collective = collective;
            Machine::run(cfg, move |ctx| {
                let fh = p.open(ctx.is_root(), "f", OpenMode::Create).unwrap();
                let block: Vec<u8> = (0..200u32)
                    .map(|i| (i as u8).wrapping_mul(ctx.rank() as u8 + 3))
                    .collect();
                fh.write_ordered(ctx, &block).unwrap();
                // Read back a shifted, uneven decomposition.
                let len = if ctx.rank() == 3 { 0 } else { 150 + ctx.rank() };
                let off = 31 * ctx.rank() as u64;
                fh.read_ordered_summed(ctx, off, len).unwrap()
            })
            .unwrap()
        };
        let direct = run(None);
        for aggs in [1, 3, 4] {
            let aggregated = run(Some(CollectiveConfig {
                aggregators: aggs,
                stripe_align: true,
            }));
            assert_eq!(direct, aggregated, "aggregators = {aggs}");
        }
    }

    #[test]
    fn elect_aggregators_promotes_past_suspects() {
        let cc = CollectiveConfig {
            aggregators: 2,
            stripe_align: true,
        };
        let none = vec![false; 4];
        // No suspects: identical to the plain live set.
        assert_eq!(
            elect_aggregators(cc, 4, &none, &none),
            live_aggregators(cc, 4, &none)
        );
        // A suspect aggregator is replaced by the next usable rank.
        let mut ex = vec![false; 4];
        ex[2] = true;
        assert_eq!(elect_aggregators(cc, 4, &none, &ex), vec![0, 3]);
        // Promotion never double-elects: with 0 and 1 unusable, both
        // configured aggregators land on distinct survivors.
        let mut ex = vec![false; 4];
        ex[0] = true;
        ex[1] = true;
        let cc1 = CollectiveConfig {
            aggregators: 2,
            stripe_align: true,
        };
        let got = elect_aggregators(cc1, 4, &none, &ex);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|&r| r == 2 || r == 3));
        assert_ne!(got[0], got[1]);
        // Everyone unusable: no aggregators at all.
        let all = vec![true; 4];
        assert!(elect_aggregators(cc, 4, &none, &all).is_empty());
        // Crashed configured ranks are dropped, not replaced (matching
        // live_aggregators), so fault-free images never shift.
        let mut crashed = vec![false; 4];
        crashed[2] = true;
        assert_eq!(elect_aggregators(cc, 4, &crashed, &none), vec![0]);
    }

    #[test]
    fn suspicion_masks_round_trip() {
        let bits = vec![
            true, false, false, true, false, true, true, false, true, false,
        ];
        let m = pack_mask(&bits);
        for (r, &b) in bits.iter().enumerate() {
            assert_eq!(mask_bit(&m, r), b);
        }
        assert!(!mask_bit(&m, 99));
    }

    /// Failover tentpole: a data edge into an aggregator is severed
    /// mid-stream, the domain is re-elected to a reachable rank, unacked
    /// slices are replayed, and the durable file stays byte-identical to
    /// the fault-free run — with the record still sealable.
    #[test]
    fn aggregator_failover_keeps_file_byte_identical() {
        use dstreams_machine::{FaultPlan, MsgFaultPlan};
        let run = |msg: Option<MsgFaultPlan>| {
            let pfs = Pfs::new(4, DiskModel::paragon_pfs(), crate::Backend::Memory);
            let p = pfs.clone();
            let mut cfg = MachineConfig::functional(4);
            cfg.collective = Some(CollectiveConfig {
                aggregators: 2,
                stripe_align: true,
            });
            if let Some(m) = msg {
                cfg = cfg.with_faults(FaultPlan::seeded(3).with_msg(m));
            }
            let per_rank = Machine::run(cfg, move |ctx| {
                let fh = p.open(ctx.is_root(), "f", OpenMode::Create).unwrap();
                let mut outs = Vec::new();
                for round in 0..3u8 {
                    let block: Vec<u8> = (0..100)
                        .map(|i| (i as u8).wrapping_mul(7) ^ (ctx.rank() as u8) ^ round)
                        .collect();
                    let out = fh.write_ordered_summed(ctx, &block).unwrap();
                    assert!(!fh.take_peer_crashed(), "sealable record expected");
                    outs.push(out);
                }
                outs
            })
            .unwrap();
            let size = pfs.file_size("f").unwrap() as usize;
            let p2 = pfs.clone();
            let bytes = Machine::run(MachineConfig::functional(1), move |ctx| {
                let fh = p2.open(false, "f", OpenMode::Read).unwrap();
                let mut buf = vec![0u8; size];
                fh.read_at(ctx, 0, &mut buf).unwrap();
                buf
            })
            .unwrap()[0]
                .clone();
            (per_rank, bytes)
        };
        let clean = run(None);
        // Rank 3 feeds aggregator 2's domain; severing that edge forces
        // a re-election (2 is replaced by promotion) and a full replay.
        let failed_over = run(Some(MsgFaultPlan::seeded(11).cut_edge(3, 2, 0)));
        assert_eq!(clean, failed_over);
        // Chaos soup without cuts: retransmission and the sequence gate
        // absorb everything, same bytes, same offsets, same digests.
        let chaotic = run(Some(
            MsgFaultPlan::seeded(77)
                .drop_ppm(150_000)
                .dup_ppm(100_000)
                .delay_ppm(100_000)
                .reorder_ppm(100_000),
        ));
        assert_eq!(clean, chaotic);
    }

    /// A killed rank's block is unreachable from everyone: the write
    /// still completes machine-wide in bounded time (no hang), but the
    /// record is reported unsealable on every rank.
    #[test]
    fn killed_rank_write_completes_unsealed() {
        use dstreams_machine::{FaultPlan, MsgFaultPlan};
        let pfs = Pfs::new(4, DiskModel::paragon_pfs(), crate::Backend::Memory);
        let p = pfs.clone();
        let mut cfg = MachineConfig::functional(4);
        cfg.collective = Some(CollectiveConfig {
            aggregators: 2,
            stripe_align: true,
        });
        cfg = cfg.with_faults(FaultPlan::seeded(3).with_msg(MsgFaultPlan::seeded(5).kill_at(1, 0)));
        let flags = Machine::run(cfg, move |ctx| {
            let fh = p.open(ctx.is_root(), "f", OpenMode::Create).unwrap();
            let block = vec![ctx.rank() as u8 + 1; 64];
            fh.write_ordered_summed(ctx, &block).unwrap();
            fh.take_peer_crashed()
        })
        .unwrap();
        assert_eq!(flags, vec![true; 4], "every rank must suppress the seal");
    }

    /// Aggregation cuts the physical operation count to the aggregator
    /// count and coalesces stripes.
    #[test]
    fn aggregation_reduces_physical_ops() {
        let run = |collective: Option<CollectiveConfig>| {
            let pfs = Pfs::new(8, DiskModel::paragon_pfs(), crate::Backend::Memory);
            let p = pfs.clone();
            let sink = dstreams_trace::TraceSink::new(8);
            let mut cfg = MachineConfig::paragon(8).traced(sink.clone());
            cfg.collective = collective;
            let times = Machine::run(cfg, move |ctx| {
                let fh = p.open(ctx.is_root(), "f", OpenMode::Create).unwrap();
                fh.write_ordered(ctx, &[7u8; 128]).unwrap();
                ctx.now()
            })
            .unwrap();
            let counts = sink.take().op_counts();
            (counts.pfs_collective_ops, counts.stripes_touched, times[0])
        };
        let (direct_ops, direct_stripes, direct_t) = run(None);
        let (agg_ops, agg_stripes, agg_t) = run(Some(CollectiveConfig {
            aggregators: 2,
            stripe_align: true,
        }));
        assert_eq!(direct_ops, 8);
        assert_eq!(agg_ops, 2);
        assert!(agg_stripes <= direct_stripes);
        assert!(
            agg_t < direct_t,
            "aggregated {agg_t:?} vs direct {direct_t:?}"
        );
    }
}
