//! Order-sensitive, boundary-independent checksums.
//!
//! The d/stream commit seal must checksum bytes that different ranks hold
//! in different pieces: the writer hashes per-rank blocks, the reader
//! hashes whatever spans its decomposition assigns it, and the two
//! partitions rarely line up. A [`ChunkSum`] is therefore a *combinable*
//! digest: hashing `A ++ B` equals hashing `A` and `B` separately and
//! folding the pair, no matter where the boundary falls.
//!
//! Concretely it is the polynomial hash `H(s) = Σ (s[i] + 1) · r^i mod
//! 2^64` for a fixed odd multiplier `r`, carried together with `r^len`
//! so two chunks combine in O(1):
//!
//! `H(A ++ B) = H(A) + r^|A| · H(B)`,  `r^|A ++ B| = r^|A| · r^|B|`.
//!
//! The `+ 1` on each byte makes the digest length-sensitive (a trailing
//! run of zero bytes changes the hash), which is what torn-write
//! detection needs. This is an error-*detection* code against torn and
//! corrupted records, not a cryptographic MAC.

/// The fixed polynomial multiplier (odd, so powers never collapse to 0).
const MULTIPLIER: u64 = 0x9e37_79b9_7f4a_7c15;

/// A combinable digest over a byte chunk: the polynomial hash plus the
/// multiplier raised to the chunk length (both mod 2^64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSum {
    hash: u64,
    rpow: u64,
}

impl Default for ChunkSum {
    fn default() -> Self {
        ChunkSum::EMPTY
    }
}

impl ChunkSum {
    /// The digest of the empty chunk — the identity of [`ChunkSum::then`].
    pub const EMPTY: ChunkSum = ChunkSum { hash: 0, rpow: 1 };

    /// Digest a contiguous chunk of bytes.
    pub fn of(bytes: &[u8]) -> ChunkSum {
        let mut hash = 0u64;
        let mut rpow = 1u64;
        for &b in bytes {
            hash = hash.wrapping_add((b as u64 + 1).wrapping_mul(rpow));
            rpow = rpow.wrapping_mul(MULTIPLIER);
        }
        ChunkSum { hash, rpow }
    }

    /// The digest of this chunk followed immediately by `next`.
    #[must_use]
    pub fn then(self, next: ChunkSum) -> ChunkSum {
        ChunkSum {
            hash: self.hash.wrapping_add(self.rpow.wrapping_mul(next.hash)),
            rpow: self.rpow.wrapping_mul(next.rpow),
        }
    }

    /// The 64-bit hash value (what a seal stores).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The multiplier power `r^len` (what travels beside the hash when
    /// chunks are exchanged for folding).
    pub fn rpow(&self) -> u64 {
        self.rpow
    }

    /// Reassemble a digest from its two wire words.
    pub fn from_parts(hash: u64, rpow: u64) -> ChunkSum {
        ChunkSum { hash, rpow }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concatenation_is_boundary_independent() {
        let data: Vec<u8> = (0u16..300).map(|i| (i * 7 % 251) as u8).collect();
        let whole = ChunkSum::of(&data);
        for cut in [0, 1, 13, 150, 299, 300] {
            let split = ChunkSum::of(&data[..cut]).then(ChunkSum::of(&data[cut..]));
            assert_eq!(split, whole, "cut at {cut}");
        }
        // Three-way split, folded left-to-right.
        let three = ChunkSum::of(&data[..50])
            .then(ChunkSum::of(&data[50..200]))
            .then(ChunkSum::of(&data[200..]));
        assert_eq!(three, whole);
    }

    #[test]
    fn digest_is_order_and_length_sensitive() {
        assert_ne!(ChunkSum::of(b"ab").hash(), ChunkSum::of(b"ba").hash());
        // Trailing zeros change the digest — torn tails of a zero-filled
        // region are still detected.
        assert_ne!(ChunkSum::of(b"x").hash(), ChunkSum::of(b"x\0").hash());
        assert_ne!(ChunkSum::of(b"").hash(), ChunkSum::of(b"\0").hash());
    }

    #[test]
    fn empty_is_the_identity() {
        let c = ChunkSum::of(b"payload");
        assert_eq!(ChunkSum::EMPTY.then(c), c);
        assert_eq!(c.then(ChunkSum::EMPTY), c);
        assert_eq!(ChunkSum::of(b""), ChunkSum::EMPTY);
        assert_eq!(ChunkSum::default(), ChunkSum::EMPTY);
    }

    #[test]
    fn parts_roundtrip() {
        let c = ChunkSum::of(b"roundtrip");
        assert_eq!(ChunkSum::from_parts(c.hash(), c.rpow()), c);
    }
}
