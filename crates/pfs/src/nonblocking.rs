//! Nonblocking (split-collective) file operations.
//!
//! The begin-variants in this module are the PFS layer of the d/streams
//! asynchronous pipeline. Each one performs **all coordination and the
//! physical byte transfer at submission** — the file image and the
//! per-rank logical PFS op indices come out byte-identical to the
//! blocking variant — and defers only the *disk-service cost* onto the
//! submitting rank's pending-async-op queue ([`NodeCtx::async_submit`]).
//! The returned [`IoHandle`] carries the completion virtual time;
//! retiring it with [`IoHandle::wait`] synchronizes the rank's clock
//! forward to that instant (a no-op when the rank's own progress already
//! passed it — the fully overlapped case).
//!
//! Fault composition (PR 2's `FaultPlan`):
//!
//! * **Transient** faults are retired at submission, exactly like the
//!   blocking path, so surviving ranks stay in lockstep for the
//!   collective's internal communication. For the independent
//!   [`FileHandle::write_at_begin`] the retry backoff is folded into the
//!   deferred cost instead of stalling the submitter — the retries
//!   happen "in the background".
//! * **Torn** writes behave as in the blocking path: the call reports
//!   success, only a prefix hits storage, full cost is charged.
//! * **Crash** (power-cut) faults are *deferred*: the rank persists the
//!   seeded prefix and keeps participating in the collective's
//!   coordination (so peers are not stranded mid-plan), then is marked
//!   dead; the `RankCrashed` outcome surfaces when the handle is
//!   waited. The collective's closing synchronization doubles as a
//!   crash-flag reduction, so *every* rank learns whether any peer's
//!   transfer was cut — [`IoHandle::peer_crashed`] is how the d/stream
//!   layer knows it must not seal the in-flight record, leaving the torn
//!   tail detectable by recovery.

use std::sync::atomic::Ordering;

use dstreams_machine::wire::{frame_blocks, unframe_blocks};
use dstreams_machine::{AsyncOp, FaultDecision, MachineError, NodeCtx, VTime};
use dstreams_trace::{CollectiveRegime, EventKind, FaultKind, IndependentRegime, PfsOp};

use crate::checksum::ChunkSum;
use crate::error::PfsError;
use crate::file::{decode_u64, FileHandle};
use crate::model::Regime;

/// Handle to an in-flight nonblocking PFS operation.
///
/// Produced by [`FileHandle::write_ordered_begin_summed`],
/// [`FileHandle::read_ordered_begin_summed`] and
/// [`FileHandle::write_at_begin`]. The physical transfer already
/// happened; what is pending is the deferred disk-service cost (and,
/// possibly, a deferred fault outcome). Handles on one rank complete in
/// submission order — the rank's async queue models one serial disk
/// service channel.
#[derive(Debug)]
pub struct IoHandle {
    op: AsyncOp,
    /// Fault outcome deferred to wait-time (a power-cut injected on the
    /// transfer: the rank is already marked dead).
    deferred: Option<PfsError>,
    /// Some rank's transfer was cut by a power-cut during this
    /// collective (writes only).
    peer_crashed: bool,
}

impl IoHandle {
    /// Assemble a handle (used by the aggregation layer's begin-variants).
    pub(crate) fn new(op: AsyncOp, deferred: Option<PfsError>, peer_crashed: bool) -> Self {
        IoHandle {
            op,
            deferred,
            peer_crashed,
        }
    }

    /// Virtual time at which the deferred service cost completes.
    pub fn completion(&self) -> VTime {
        self.op.completion()
    }

    /// The deferred service cost.
    pub fn cost(&self) -> VTime {
        self.op.cost()
    }

    /// True when a power-cut fault fired on *some* rank (possibly this
    /// one) during the operation's physical transfer. A record whose
    /// data collective reports this must not be sealed: the unsealed
    /// tail is what keeps the crash detectable by recovery.
    pub fn peer_crashed(&self) -> bool {
        self.peer_crashed
    }

    /// Whether waiting will surface a deferred fault outcome.
    pub fn has_deferred_fault(&self) -> bool {
        self.deferred.is_some()
    }

    /// Retire the operation: synchronize this rank's clock forward to
    /// the completion virtual time and surface any deferred fault.
    pub fn wait(self, ctx: &NodeCtx) -> Result<(), PfsError> {
        ctx.async_complete(&self.op);
        match self.deferred {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl FileHandle {
    /// Deferred-cost accounting mirror of the independent charge path:
    /// identical event, traffic and stats bookkeeping, but the cost is
    /// queued instead of advancing the clock.
    fn submit_independent(
        &self,
        ctx: &NodeCtx,
        op: PfsOp,
        offset: u64,
        bytes: usize,
        extra: VTime,
    ) -> AsyncOp {
        let traffic = &self.pfs.rank_traffic[ctx.rank()];
        let before = traffic.load(Ordering::Relaxed);
        let regime = self
            .pfs
            .model
            .independent_regime(self.file.len(), ctx.nprocs());
        let cost = self.pfs.model.independent_cost(bytes, regime, ctx.nprocs());
        let handle = ctx.async_submit(cost + extra);
        ctx.emit_with(|| EventKind::PfsIndependent {
            op,
            file: self.file.name().to_string(),
            offset,
            bytes: bytes as u64,
            regime: match regime {
                Regime::Cached => IndependentRegime::Cached,
                Regime::Disk => IndependentRegime::Disk,
            },
            cost_ns: cost.as_nanos(),
        });
        traffic.store(before + bytes as u64, Ordering::Relaxed);
        self.pfs
            .stats
            .independent_ops
            .fetch_add(1, Ordering::Relaxed);
        self.pfs
            .stats
            .independent_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        if regime == Regime::Disk {
            self.pfs
                .stats
                .disk_regime_ops
                .fetch_add(1, Ordering::Relaxed);
        }
        handle
    }

    /// Nonblocking independent positioned write: the bytes land at
    /// submission, the service cost is deferred onto this rank's async
    /// queue. Injected transient failures are retried with the backoff
    /// folded into the deferred cost; a power-cut persists the seeded
    /// prefix, marks the rank dead and defers `RankCrashed` to the
    /// returned handle.
    pub fn write_at_begin(
        &self,
        ctx: &NodeCtx,
        offset: u64,
        data: &[u8],
    ) -> Result<IoHandle, PfsError> {
        let op = ctx.next_pfs_op();
        let mut attempt = 0u32;
        let mut folded_backoff = VTime::ZERO;
        loop {
            self.check_alive(ctx)?;
            match ctx.fault_decision(op, attempt, Some(data.len())) {
                FaultDecision::Proceed => {
                    self.file
                        .storage
                        .lock()
                        .write_at(offset, data, self.file.name())?;
                    return Ok(IoHandle {
                        op: self.submit_independent(
                            ctx,
                            PfsOp::Write,
                            offset,
                            data.len(),
                            folded_backoff,
                        ),
                        deferred: None,
                        peer_crashed: false,
                    });
                }
                FaultDecision::Transient => {
                    self.emit_fault(ctx, FaultKind::Transient, op, 0);
                    let policy = self.pfs.retry;
                    if attempt >= policy.max_retries {
                        return Err(Self::injected_transient(op));
                    }
                    let pause = policy.backoff(attempt);
                    folded_backoff += pause;
                    attempt += 1;
                    let next = attempt;
                    ctx.emit_with(|| EventKind::PfsRetry {
                        op_index: op,
                        attempt: next,
                        backoff_ns: pause.as_nanos(),
                    });
                }
                FaultDecision::Torn { keep } => {
                    let keep = keep.min(data.len());
                    self.emit_fault(ctx, FaultKind::Torn, op, keep as u64);
                    self.file
                        .storage
                        .lock()
                        .write_at(offset, &data[..keep], self.file.name())?;
                    return Ok(IoHandle {
                        op: self.submit_independent(
                            ctx,
                            PfsOp::Write,
                            offset,
                            data.len(),
                            folded_backoff,
                        ),
                        deferred: None,
                        peer_crashed: false,
                    });
                }
                FaultDecision::Crash { keep } => {
                    let k = keep.unwrap_or(0).min(data.len());
                    if k > 0 {
                        let _ =
                            self.file
                                .storage
                                .lock()
                                .write_at(offset, &data[..k], self.file.name());
                    }
                    self.emit_fault(ctx, FaultKind::Crash, op, k as u64);
                    ctx.fault_mark_dead();
                    // A dead disk serves nothing: zero deferred cost, the
                    // crash outcome rides the handle.
                    return Ok(IoHandle {
                        op: ctx.async_submit(VTime::ZERO),
                        deferred: Some(MachineError::RankCrashed { rank: ctx.rank() }.into()),
                        peer_crashed: true,
                    });
                }
            }
        }
    }

    /// Nonblocking [`FileHandle::write_ordered_summed`]: collective
    /// node-order append whose coordination and physical writes happen at
    /// submission, with the parallel-operation cost deferred per rank.
    /// Returns this rank's block offset, every rank's block digest, and
    /// the in-flight handle. The closing synchronization is a crash-flag
    /// reduction instead of a bare barrier — see [`IoHandle::peer_crashed`].
    pub fn write_ordered_begin_summed(
        &self,
        ctx: &NodeCtx,
        block: &[u8],
    ) -> Result<(u64, Vec<ChunkSum>, IoHandle), PfsError> {
        if let Some(cc) = ctx.config().collective {
            return self.agg_write_ordered_begin_summed(ctx, cc, block);
        }
        let _scope = ctx.collective_scope();
        let op = ctx.next_pfs_op();
        let fate = self.collective_fate(ctx, op, Some(block.len()))?;
        ctx.barrier()?;
        // Size/digest exchange and plan broadcast: identical to the
        // blocking variant, byte for byte.
        let my_sum = ChunkSum::of(block);
        let mut contrib = Vec::with_capacity(24);
        contrib.extend_from_slice(&(block.len() as u64).to_le_bytes());
        contrib.extend_from_slice(&my_sum.hash().to_le_bytes());
        contrib.extend_from_slice(&my_sum.rpow().to_le_bytes());
        let gathered = ctx.gather(0, contrib)?;
        let plan = if ctx.is_root() {
            let frames = gathered.expect("root gathers");
            let base = self.file.len();
            let mut blocks = Vec::with_capacity(frames.len() + 1);
            blocks.push(base.to_le_bytes().to_vec());
            for frame in &frames {
                if frame.len() != 24 {
                    return Err(PfsError::CollectiveMismatch(
                        "write_ordered_begin: malformed size/digest frame".into(),
                    ));
                }
                blocks.push(frame.clone());
            }
            frame_blocks(&blocks)
        } else {
            Vec::new()
        };
        let plan = ctx.broadcast(0, plan)?;
        let parts = unframe_blocks(&plan).ok_or_else(|| {
            PfsError::CollectiveMismatch("write_ordered_begin: malformed plan".into())
        })?;
        if parts.len() != ctx.nprocs() + 1 {
            return Err(PfsError::CollectiveMismatch(
                "write_ordered_begin: plan size mismatch".into(),
            ));
        }
        let base = decode_u64(&parts[0], "write_ordered_begin plan base")?;
        let mut sizes = Vec::with_capacity(ctx.nprocs());
        let mut digests = Vec::with_capacity(ctx.nprocs());
        for frame in &parts[1..] {
            if frame.len() != 24 {
                return Err(PfsError::CollectiveMismatch(
                    "write_ordered_begin: malformed plan frame".into(),
                ));
            }
            sizes.push(decode_u64(&frame[..8], "write_ordered_begin plan size")?);
            digests.push(ChunkSum::from_parts(
                decode_u64(&frame[8..16], "write_ordered_begin plan digest hash")?,
                decode_u64(&frame[16..24], "write_ordered_begin plan digest rpow")?,
            ));
        }
        if sizes[ctx.rank()] != block.len() as u64 {
            return Err(PfsError::CollectiveMismatch(
                "write_ordered_begin: my block size desynchronized".into(),
            ));
        }
        let my_off = base + sizes[..ctx.rank()].iter().sum::<u64>();
        let total: u64 = sizes.iter().sum();
        let max_block = sizes.iter().copied().max().unwrap_or(0);

        // Physical transfer, fault-aware. A power-cut persists the prefix
        // but — unlike the blocking path — the rank stays in the
        // collective so peers can finish coordination; death is deferred.
        let mut my_crash = false;
        match fate {
            FaultDecision::Proceed | FaultDecision::Transient => {
                if !block.is_empty() {
                    self.file
                        .storage
                        .lock()
                        .write_at(my_off, block, self.file.name())?;
                }
            }
            FaultDecision::Torn { keep } => {
                let keep = keep.min(block.len());
                self.emit_fault(ctx, FaultKind::Torn, op, keep as u64);
                self.file
                    .storage
                    .lock()
                    .write_at(my_off, &block[..keep], self.file.name())?;
            }
            FaultDecision::Crash { keep } => {
                let k = keep.unwrap_or(0).min(block.len());
                if k > 0 {
                    let _ =
                        self.file
                            .storage
                            .lock()
                            .write_at(my_off, &block[..k], self.file.name());
                }
                self.emit_fault(ctx, FaultKind::Crash, op, k as u64);
                my_crash = true;
            }
        }
        let cost = self
            .pfs
            .model
            .collective_cost(total, max_block, ctx.nprocs());
        let async_op = if my_crash {
            ctx.async_submit(VTime::ZERO)
        } else {
            ctx.async_submit(cost)
        };
        ctx.emit_with(|| EventKind::PfsCollective {
            op: PfsOp::Write,
            file: self.file.name().to_string(),
            offset: my_off,
            bytes: block.len() as u64,
            total_bytes: total,
            share_bytes: total / ctx.nprocs() as u64,
            stripes: self.pfs.model.stripes_touched(my_off, block.len() as u64),
            regime: if self.pfs.model.collective_knee(max_block) {
                CollectiveRegime::CacheKnee
            } else {
                CollectiveRegime::Streaming
            },
            cost_ns: cost.as_nanos(),
        });
        self.account_collective(ctx, total);
        // Closing synchronization: every rank learns whether any peer's
        // transfer was cut. Replaces the blocking variant's bare barrier
        // (an all-reduce synchronizes at least as strongly).
        let any_crash = ctx.all_reduce(my_crash as u64, |a, b| a | b)?;
        let deferred = if my_crash {
            ctx.fault_mark_dead();
            Some(MachineError::RankCrashed { rank: ctx.rank() }.into())
        } else {
            None
        };
        Ok((
            my_off,
            digests,
            IoHandle {
                op: async_op,
                deferred,
                peer_crashed: any_crash != 0,
            },
        ))
    }

    /// Nonblocking [`FileHandle::read_ordered_summed`]: the bytes and
    /// digests are materialized at submission (they are only *promised*
    /// to the caller — consuming them before the handle is waited would
    /// be reading the future), with the parallel-operation cost deferred.
    /// A power-cut on entry defers the rank's death to the handle so the
    /// collective itself stays well-formed for the peers.
    pub fn read_ordered_begin_summed(
        &self,
        ctx: &NodeCtx,
        offset: u64,
        len: usize,
    ) -> Result<(Vec<u8>, Vec<ChunkSum>, IoHandle), PfsError> {
        if let Some(cc) = ctx.config().collective {
            return self.agg_read_ordered_begin_summed(ctx, cc, offset, len);
        }
        let _scope = ctx.collective_scope();
        let op = ctx.next_pfs_op();
        let fate = self.collective_fate(ctx, op, None)?;
        let my_crash = matches!(fate, FaultDecision::Crash { .. });
        if my_crash {
            self.emit_fault(ctx, FaultKind::Crash, op, 0);
        }
        ctx.barrier()?;
        let mut buf = vec![0u8; len];
        let read_res = if len > 0 {
            self.file
                .storage
                .lock()
                .read_at(offset, &mut buf, self.file.name())
        } else {
            Ok(())
        };
        let my_sum = if read_res.is_ok() {
            ChunkSum::of(&buf)
        } else {
            ChunkSum::EMPTY
        };
        let mut contrib = Vec::with_capacity(24);
        contrib.extend_from_slice(&(len as u64).to_le_bytes());
        contrib.extend_from_slice(&my_sum.hash().to_le_bytes());
        contrib.extend_from_slice(&my_sum.rpow().to_le_bytes());
        let frames = ctx.all_gather(contrib)?;
        let mut sizes = Vec::with_capacity(ctx.nprocs());
        let mut digests = Vec::with_capacity(ctx.nprocs());
        for frame in &frames {
            if frame.len() != 24 {
                return Err(PfsError::CollectiveMismatch(
                    "read_ordered_begin: malformed size/digest frame".into(),
                ));
            }
            sizes.push(decode_u64(&frame[..8], "read_ordered_begin size frame")?);
            digests.push(ChunkSum::from_parts(
                decode_u64(&frame[8..16], "read_ordered_begin digest hash")?,
                decode_u64(&frame[16..24], "read_ordered_begin digest rpow")?,
            ));
        }
        read_res?;
        let total: u64 = sizes.iter().sum();
        let max_block = sizes.iter().copied().max().unwrap_or(0);
        let cost = self
            .pfs
            .model
            .collective_cost(total, max_block, ctx.nprocs());
        let async_op = if my_crash {
            ctx.async_submit(VTime::ZERO)
        } else {
            ctx.async_submit(cost)
        };
        ctx.emit_with(|| EventKind::PfsCollective {
            op: PfsOp::Read,
            file: self.file.name().to_string(),
            offset,
            bytes: len as u64,
            total_bytes: total,
            share_bytes: total / ctx.nprocs() as u64,
            stripes: self.pfs.model.stripes_touched(offset, len as u64),
            regime: if self.pfs.model.collective_knee(max_block) {
                CollectiveRegime::CacheKnee
            } else {
                CollectiveRegime::Streaming
            },
            cost_ns: cost.as_nanos(),
        });
        self.account_collective(ctx, total);
        let deferred = if my_crash {
            ctx.fault_mark_dead();
            Some(MachineError::RankCrashed { rank: ctx.rank() }.into())
        } else {
            None
        };
        Ok((
            buf,
            digests,
            IoHandle {
                op: async_op,
                deferred,
                peer_crashed: false,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use crate::pfs::{OpenMode, Pfs};
    use crate::DiskModel;
    use dstreams_machine::{Machine, MachineConfig, VTime};

    #[test]
    fn begin_variant_writes_the_same_bytes_as_blocking() {
        let run = |nonblocking: bool| {
            let pfs = Pfs::in_memory(3);
            let p = pfs.clone();
            Machine::run(MachineConfig::functional(3), move |ctx| {
                let fh = p.open(ctx.is_root(), "f", OpenMode::Create).unwrap();
                for round in 0..3u8 {
                    let block = vec![round * 10 + ctx.rank() as u8; ctx.rank() + 1];
                    if nonblocking {
                        let (off, digests, h) = fh.write_ordered_begin_summed(ctx, &block).unwrap();
                        assert_eq!(digests.len(), 3);
                        assert!(!h.peer_crashed());
                        let _ = off;
                        h.wait(ctx).unwrap();
                    } else {
                        fh.write_ordered(ctx, &block).unwrap();
                    }
                }
            })
            .unwrap();
            let p2 = pfs.clone();
            let size = pfs.file_size("f").unwrap() as usize;
            Machine::run(MachineConfig::functional(1), move |ctx| {
                let fh = p2.open(false, "f", OpenMode::Read).unwrap();
                let mut buf = vec![0u8; size];
                fh.read_at(ctx, 0, &mut buf).unwrap();
                buf
            })
            .unwrap()[0]
                .clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn deferred_cost_overlaps_with_compute() {
        // A rank that computes past the completion time stalls zero;
        // a rank that waits immediately stalls the full cost.
        let mut model = DiskModel::instant();
        model.coll_latency = VTime::from_millis(10);
        let pfs = Pfs::new(2, model, crate::Backend::Memory);
        let p = pfs.clone();
        let times = Machine::run(MachineConfig::functional(2), move |ctx| {
            let fh = p.open(ctx.is_root(), "f", OpenMode::Create).unwrap();
            let (_, _, h) = fh.write_ordered_begin_summed(ctx, &[1u8; 64]).unwrap();
            let submit_t = ctx.now();
            // Overlapped compute longer than the flush cost.
            ctx.advance(VTime::from_millis(50));
            let before_wait = ctx.now();
            h.wait(ctx).unwrap();
            (submit_t, before_wait, ctx.now())
        })
        .unwrap();
        for (submit_t, before_wait, after_wait) in times {
            assert!(submit_t + VTime::from_millis(10) <= before_wait);
            // Fully hidden: the wait was free.
            assert_eq!(before_wait, after_wait);
        }
    }

    #[test]
    fn wait_without_compute_pays_the_cost() {
        let mut model = DiskModel::instant();
        model.coll_latency = VTime::from_millis(10);
        let pfs = Pfs::new(1, model, crate::Backend::Memory);
        let p = pfs.clone();
        let times = Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p.open(true, "f", OpenMode::Create).unwrap();
            let (_, _, h) = fh.write_ordered_begin_summed(ctx, &[1u8; 64]).unwrap();
            let t0 = ctx.now();
            let completion = h.completion();
            h.wait(ctx).unwrap();
            (t0, completion, ctx.now())
        })
        .unwrap();
        let (t0, completion, t1) = times[0];
        assert_eq!(t1, completion);
        assert!(t1.saturating_since(t0) >= VTime::from_millis(10));
    }

    #[test]
    fn queued_submissions_serialize_on_one_rank() {
        let mut model = DiskModel::instant();
        model.coll_latency = VTime::from_millis(10);
        let pfs = Pfs::new(1, model, crate::Backend::Memory);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p.open(true, "f", OpenMode::Create).unwrap();
            let (_, _, h1) = fh.write_ordered_begin_summed(ctx, &[1u8; 8]).unwrap();
            let (_, _, h2) = fh.write_ordered_begin_summed(ctx, &[2u8; 8]).unwrap();
            // One serial service channel: the second op starts only when
            // the first completes.
            assert!(h2.completion() >= h1.completion() + VTime::from_millis(10));
            assert_eq!(ctx.async_in_flight(), 2);
            h1.wait(ctx).unwrap();
            h2.wait(ctx).unwrap();
            assert_eq!(ctx.async_in_flight(), 0);
        })
        .unwrap();
    }

    #[test]
    fn read_begin_returns_the_promised_bytes() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let fh = p.open(ctx.is_root(), "f", OpenMode::Create).unwrap();
            fh.write_ordered(ctx, &[ctx.rank() as u8 + 1; 4]).unwrap();
            let (buf, digests, h) = fh
                .read_ordered_begin_summed(ctx, ctx.rank() as u64 * 4, 4)
                .unwrap();
            h.wait(ctx).unwrap();
            assert_eq!(buf, vec![ctx.rank() as u8 + 1; 4]);
            assert_eq!(digests.len(), 2);
        })
        .unwrap();
    }
}
