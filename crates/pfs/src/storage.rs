//! Storage backends: in-memory (default, used with virtual-time
//! measurement) and real-disk (used by the wall-clock Criterion benches).

use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

use crate::error::PfsError;

/// Backend selection for a [`crate::Pfs`] instance.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Files live in host memory; timing comes from the cost model only.
    Memory,
    /// Files live on the host file system under the given directory;
    /// wall-clock timing is physically meaningful.
    Disk(PathBuf),
}

/// A single file's bytes.
#[derive(Debug)]
pub enum Storage {
    /// Growable in-memory image.
    Mem(Vec<u8>),
    /// Real file, accessed with positioned I/O.
    Disk {
        /// Open handle (read+write).
        file: File,
        /// Path, for error messages and cleanup.
        path: PathBuf,
        /// Cached logical size (kept in sync with writes).
        size: u64,
    },
}

impl Storage {
    /// Create an empty in-memory file.
    pub fn new_mem() -> Storage {
        Storage::Mem(Vec::new())
    }

    /// Create (truncating) a real file under `dir` with the given
    /// sanitized name.
    pub fn new_disk(dir: &Path, name: &str) -> Result<Storage, PfsError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(Self::flatten(name));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Storage::Disk {
            file,
            path,
            size: 0,
        })
    }

    /// Attach to an existing real file without truncating it (reopening a
    /// PFS directory from an earlier process).
    pub fn attach_disk(dir: &Path, name: &str) -> Result<Storage, PfsError> {
        let path = dir.join(Self::flatten(name));
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let size = file.metadata()?.len();
        Ok(Storage::Disk { file, path, size })
    }

    /// PFS names may contain arbitrary text; flatten anything path-like so
    /// files cannot escape the backing directory.
    fn flatten(name: &str) -> String {
        name.chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '.' || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    }

    /// Logical size in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Storage::Mem(v) => v.len() as u64,
            Storage::Disk { size, .. } => *size,
        }
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Write `data` at `offset`, growing the file as needed (zero-filling
    /// any gap). Offsets whose end position overflows `u64` (or `usize`
    /// for the in-memory backend) are rejected as out of bounds rather
    /// than wrapping.
    pub fn write_at(&mut self, offset: u64, data: &[u8], name: &str) -> Result<(), PfsError> {
        let oob = || PfsError::OutOfBounds {
            file: name.to_string(),
            offset,
            len: data.len(),
            size: self.len(),
        };
        // A hostile offset can make `offset + len` wrap; compute the end
        // position checked in u64 first, then ensure it is addressable.
        let end64 = offset.checked_add(data.len() as u64).ok_or_else(oob)?;
        match self {
            Storage::Mem(v) => {
                let end = usize::try_from(end64).map_err(|_| PfsError::OutOfBounds {
                    file: name.to_string(),
                    offset,
                    len: data.len(),
                    size: v.len() as u64,
                })?;
                if v.len() < end {
                    v.resize(end, 0);
                }
                v[end - data.len()..end].copy_from_slice(data);
                Ok(())
            }
            Storage::Disk { file, size, .. } => {
                use std::os::unix::fs::FileExt;
                file.write_all_at(data, offset)?;
                *size = (*size).max(end64);
                Ok(())
            }
        }
    }

    /// Read exactly `buf.len()` bytes starting at `offset`. Overflowing
    /// end positions are rejected as out of bounds, never wrapped.
    pub fn read_at(&self, offset: u64, buf: &mut [u8], name: &str) -> Result<(), PfsError> {
        let end = offset.checked_add(buf.len() as u64);
        if end.is_none() || end.unwrap() > self.len() {
            return Err(PfsError::OutOfBounds {
                file: name.to_string(),
                offset,
                len: buf.len(),
                size: self.len(),
            });
        }
        match self {
            Storage::Mem(v) => {
                buf.copy_from_slice(&v[offset as usize..offset as usize + buf.len()]);
                Ok(())
            }
            Storage::Disk { file, .. } => {
                use std::os::unix::fs::FileExt;
                file.read_exact_at(buf, offset)?;
                Ok(())
            }
        }
    }

    /// Truncate to zero length.
    pub fn truncate(&mut self) -> Result<(), PfsError> {
        self.truncate_to(0)
    }

    /// Truncate to `len` bytes, dropping everything past that point (the
    /// sealed-prefix recovery primitive). Lengths at or beyond the
    /// current size are a no-op — truncation never grows a file.
    pub fn truncate_to(&mut self, len: u64) -> Result<(), PfsError> {
        if len >= self.len() {
            return Ok(());
        }
        match self {
            Storage::Mem(v) => {
                v.truncate(len as usize);
                Ok(())
            }
            Storage::Disk { file, size, .. } => {
                file.set_len(len)?;
                *size = len;
                Ok(())
            }
        }
    }

    /// Remove backing resources (deletes the real file for Disk storage).
    pub fn destroy(self) -> Result<(), PfsError> {
        match self {
            Storage::Mem(_) => Ok(()),
            Storage::Disk { path, .. } => {
                std::fs::remove_file(path)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(mut s: Storage) {
        s.write_at(0, b"hello", "t").unwrap();
        s.write_at(10, b"world", "t").unwrap();
        assert_eq!(s.len(), 15);
        let mut buf = vec![0u8; 5];
        s.read_at(0, &mut buf, "t").unwrap();
        assert_eq!(&buf, b"hello");
        s.read_at(10, &mut buf, "t").unwrap();
        assert_eq!(&buf, b"world");
        // The gap is zero-filled.
        let mut gap = vec![9u8; 5];
        s.read_at(5, &mut gap, "t").unwrap();
        assert_eq!(gap, vec![0u8; 5]);
        // Out-of-bounds read fails.
        let mut big = vec![0u8; 16];
        assert!(matches!(
            s.read_at(0, &mut big, "t"),
            Err(PfsError::OutOfBounds { .. })
        ));
        s.truncate().unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn mem_storage_roundtrips() {
        roundtrip(Storage::new_mem());
    }

    #[test]
    fn truncate_to_keeps_the_prefix_and_never_grows() {
        let mut s = Storage::new_mem();
        s.write_at(0, b"sealed-data-torn-tail", "t").unwrap();
        s.truncate_to(11).unwrap();
        assert_eq!(s.len(), 11);
        let mut buf = vec![0u8; 11];
        s.read_at(0, &mut buf, "t").unwrap();
        assert_eq!(&buf, b"sealed-data");
        // At-or-past-size is a no-op, not growth.
        s.truncate_to(999).unwrap();
        assert_eq!(s.len(), 11);
    }

    #[test]
    fn hostile_offsets_are_rejected_not_wrapped() {
        let mut s = Storage::new_mem();
        s.write_at(0, b"data", "t").unwrap();
        // End position wraps u64 — must be OutOfBounds, not a wrap to a
        // tiny offset that corrupts the front of the file.
        assert!(matches!(
            s.write_at(u64::MAX - 1, b"xx", "t"),
            Err(PfsError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 2];
        assert!(matches!(
            s.read_at(u64::MAX - 1, &mut buf, "t"),
            Err(PfsError::OutOfBounds { .. })
        ));
        // The original contents are untouched.
        let mut got = [0u8; 4];
        s.read_at(0, &mut got, "t").unwrap();
        assert_eq!(&got, b"data");
    }

    #[test]
    fn disk_storage_roundtrips() {
        let dir = std::env::temp_dir().join(format!("dstreams-pfs-test-{}", std::process::id()));
        let s = Storage::new_disk(&dir, "file.bin").unwrap();
        roundtrip(s);
        let s2 = Storage::new_disk(&dir, "file.bin").unwrap();
        s2.destroy().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_names_are_sanitized() {
        let dir = std::env::temp_dir().join(format!("dstreams-pfs-sani-{}", std::process::id()));
        let s = Storage::new_disk(&dir, "../../etc/passwd").unwrap();
        if let Storage::Disk { ref path, .. } = s {
            assert!(path.starts_with(&dir), "path {path:?} escaped {dir:?}");
        } else {
            panic!("expected disk storage");
        }
        s.destroy().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
