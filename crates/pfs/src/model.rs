//! The disk cost model.
//!
//! This is the heart of the platform reproduction. The paper's benchmark
//! exposes three very different I/O regimes:
//!
//! 1. **independent small operations** (the "unbuffered I/O" baseline):
//!    every OS call pays a fixed service latency, the calls from all ranks
//!    contend for the shared I/O subsystem, and once the cumulative traffic
//!    exceeds the file-system buffer cache each call pays the full disk
//!    penalty — this is what makes unbuffered I/O collapse from 14.7 s to
//!    283 s between 2.8 MB and 5.6 MB on the Paragon (Tables 1–2);
//! 2. **collective bulk transfers** (manual buffering and pC++/streams):
//!    one parallel operation moves one contiguous block per node; cost is a
//!    startup latency plus total bytes over the aggregate PFS bandwidth,
//!    with a knee when a single node's block overflows its node-level
//!    buffering (the Paragon 4-processor 11.2 MB anomaly, Table 1);
//! 3. **shared-memory file systems** (SGI Challenge): low latency, high
//!    bandwidth, bandwidth that scales sublinearly with the number of
//!    processors issuing the I/O (Tables 3–4).
//!
//! All knobs live in [`DiskModel`]; the presets were calibrated against the
//! paper's tables (see EXPERIMENTS.md for the paper-vs-model comparison).

use dstreams_machine::VTime;

/// Cost regime of an operation, decided by cache occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Served by the file-system buffer cache.
    Cached,
    /// Forced to physical disk.
    Disk,
}

/// Cost model for the simulated storage subsystem.
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Fixed service time of an independent operation served from cache.
    pub op_latency_cached: VTime,
    /// Fixed service time of an independent operation that hits disk.
    pub op_latency_disk: VTime,
    /// Per-byte cost of independent operations served from cache (ns/B).
    pub ind_cached_ns_per_byte: f64,
    /// Per-byte cost of independent operations hitting disk (ns/B).
    pub ind_disk_ns_per_byte: f64,
    /// Shared I/O-subsystem cache: once the *working set* (the file's
    /// current bytes times `nprocs`, for symmetric per-rank files) exceeds
    /// this, independent ops fall into [`Regime::Disk`]. A dataset that
    /// fits the cache is also read back from the cache — which is why the
    /// Paragon's unbuffered collapse appears between 2.8 MB and 5.6 MB.
    pub io_cache_bytes: u64,
    /// Contention exponent for concurrent independent ops: an op's cost is
    /// multiplied by `nprocs^beta` (β = 1 models a fully serializing shared
    /// I/O node, β = 0 a perfectly parallel one).
    pub contention_beta: f64,

    /// Startup latency of a collective (parallel) operation moving at
    /// least [`DiskModel::coll_small_threshold`] bytes.
    pub coll_latency: VTime,
    /// Startup latency of a *small* collective operation (metadata
    /// writes): fewer stripes touched, much cheaper.
    pub coll_small_latency: VTime,
    /// Transfers below this many total bytes use the small startup.
    pub coll_small_threshold: u64,
    /// Additional startup cost per participating rank (large transfers).
    pub coll_latency_per_rank: VTime,
    /// Additional startup cost per participating rank (small transfers).
    pub coll_small_per_rank: VTime,
    /// Aggregate streaming bandwidth of the PFS for collective ops at one
    /// rank, ns per byte.
    pub coll_ns_per_byte: f64,
    /// Bandwidth scaling exponent: aggregate bandwidth grows as
    /// `nprocs^gamma` (γ = 0: a single shared channel; γ = 1: perfectly
    /// striped).
    pub coll_bw_gamma: f64,
    /// Per-node buffering for collective transfers: if any single rank's
    /// block exceeds this, the whole collective runs at the slow rate.
    pub node_cache_bytes: u64,
    /// Slow (post-knee) collective rate, ns per byte.
    pub coll_slow_ns_per_byte: f64,
    /// Physical stripe unit of the parallel file system: the granularity
    /// at which data is dealt across I/O nodes. Collective operations
    /// report how many distinct stripes they touched, and the aggregation
    /// layer aligns file-domain boundaries to this unit.
    pub stripe_bytes: u64,
}

impl DiskModel {
    /// A cost-free model for functional tests.
    pub fn instant() -> Self {
        DiskModel {
            op_latency_cached: VTime::ZERO,
            op_latency_disk: VTime::ZERO,
            ind_cached_ns_per_byte: 0.0,
            ind_disk_ns_per_byte: 0.0,
            io_cache_bytes: u64::MAX,
            contention_beta: 0.0,
            coll_latency: VTime::ZERO,
            coll_small_latency: VTime::ZERO,
            coll_small_threshold: 0,
            coll_latency_per_rank: VTime::ZERO,
            coll_small_per_rank: VTime::ZERO,
            coll_ns_per_byte: 0.0,
            coll_bw_gamma: 0.0,
            node_cache_bytes: u64::MAX,
            coll_slow_ns_per_byte: 0.0,
            stripe_bytes: 64 * 1024,
        }
    }

    /// Intel Paragon PFS (OSF/1, M_UNIX-style access), calibrated against
    /// Tables 1 and 2.
    pub fn paragon_pfs() -> Self {
        DiskModel {
            // ~1.74 ms per cached syscall; with β = 1 the effective cost at
            // P ranks is P × 1.74 ms, but each rank issues 1/P of the ops,
            // so the aggregate matches Table 1's 1.4 MB row (7.13 s for
            // 4096 ops) at any P — as the near-identical 4- and 8-node
            // unbuffered rows require.
            op_latency_cached: VTime::from_micros(1_740),
            // ~26.6 ms once the I/O node cache thrashes (the 283 s anomaly).
            op_latency_disk: VTime::from_micros(26_600),
            ind_cached_ns_per_byte: 1e9 / (20.0 * 1024.0 * 1024.0),
            ind_disk_ns_per_byte: 1e9 / (2.0 * 1024.0 * 1024.0),
            // The blow-up sits between 2.8 MB and 5.6 MB of data.
            io_cache_bytes: 4 * 1024 * 1024,
            // Unbuffered times are nearly identical on 4 and 8 nodes:
            // the shared I/O node fully serializes.
            contention_beta: 1.0,
            coll_latency: VTime::from_millis(200),
            // A small metadata operation touches one stripe, not all.
            coll_small_latency: VTime::from_millis(60),
            coll_small_threshold: 256 * 1024,
            coll_latency_per_rank: VTime::from_millis(50),
            coll_small_per_rank: VTime::from_millis(10),
            // ~2.2 MB/s aggregate streaming through the PFS.
            coll_ns_per_byte: 1e9 / (2.2 * 1024.0 * 1024.0),
            coll_bw_gamma: 0.0,
            // 4-processor, 11.2 MB case: 2.8 MB per node overflows the
            // node-level buffering and collapses throughput ~10x.
            node_cache_bytes: 2 * 1024 * 1024,
            coll_slow_ns_per_byte: 1e9 / (0.45 * 1024.0 * 1024.0),
            // PFS dealt files across I/O nodes in 64 KB stripe units.
            stripe_bytes: 64 * 1024,
        }
    }

    /// SGI Challenge local file system (XFS-class), calibrated against
    /// Tables 3 and 4.
    pub fn sgi_challenge_fs() -> Self {
        DiskModel {
            // ~0.1 ms per call, linear to 112 MB — no observable knee.
            op_latency_cached: VTime::from_micros(95),
            op_latency_disk: VTime::from_micros(95),
            ind_cached_ns_per_byte: 1e9 / (80.0 * 1024.0 * 1024.0),
            ind_disk_ns_per_byte: 1e9 / (80.0 * 1024.0 * 1024.0),
            io_cache_bytes: u64::MAX,
            // 8 processors gain ~3x on unbuffered I/O (Table 4 vs 3).
            contention_beta: 0.47,
            coll_latency: VTime::from_millis(22),
            coll_small_latency: VTime::from_millis(50),
            coll_small_threshold: 256 * 1024,
            coll_latency_per_rank: VTime::from_millis(2),
            coll_small_per_rank: VTime::ZERO,
            // ~11 MB/s from one processor...
            coll_ns_per_byte: 1e9 / (11.0 * 1024.0 * 1024.0),
            // ...scaling to ~50 MB/s with 8 (Table 4, 5.6 MB row).
            coll_bw_gamma: 0.74,
            node_cache_bytes: u64::MAX,
            coll_slow_ns_per_byte: 1e9 / (11.0 * 1024.0 * 1024.0),
            // Local XFS-class FS: extent-sized allocation units.
            stripe_bytes: 64 * 1024,
        }
    }

    /// TMC CM-5 scalable file system (coarse model; the paper reports no
    /// CM-5 numbers, only that the library runs there).
    pub fn cm5_sfs() -> Self {
        DiskModel {
            op_latency_cached: VTime::from_micros(800),
            op_latency_disk: VTime::from_micros(20_000),
            ind_cached_ns_per_byte: 1e9 / (10.0 * 1024.0 * 1024.0),
            ind_disk_ns_per_byte: 1e9 / (1.5 * 1024.0 * 1024.0),
            io_cache_bytes: 8 * 1024 * 1024,
            contention_beta: 0.8,
            coll_latency: VTime::from_millis(120),
            coll_small_latency: VTime::from_millis(40),
            coll_small_threshold: 256 * 1024,
            coll_latency_per_rank: VTime::from_millis(8),
            coll_small_per_rank: VTime::from_millis(4),
            coll_ns_per_byte: 1e9 / (3.0 * 1024.0 * 1024.0),
            coll_bw_gamma: 0.1,
            node_cache_bytes: 4 * 1024 * 1024,
            coll_slow_ns_per_byte: 1e9 / (0.8 * 1024.0 * 1024.0),
            stripe_bytes: 32 * 1024,
        }
    }

    /// Number of distinct stripes a transfer of `bytes` starting at
    /// `offset` touches (0 for an empty transfer).
    pub fn stripes_touched(&self, offset: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let stripe = self.stripe_bytes.max(1);
        let last = offset + bytes - 1;
        last / stripe - offset / stripe + 1
    }

    /// Regime of an independent op, given the file's current size on this
    /// rank and the machine size.
    ///
    /// The shared-cache working set is estimated as `file_bytes * nprocs`
    /// (SPMD workloads put symmetric per-rank files through the cache),
    /// which keeps the decision local to the rank and therefore
    /// deterministic. While a file is being written it is "cached" until
    /// the aggregate outgrows the cache; reading a file that outgrew the
    /// cache misses on every call.
    pub fn independent_regime(&self, file_bytes: u64, nprocs: usize) -> Regime {
        if file_bytes.saturating_mul(nprocs as u64) < self.io_cache_bytes {
            Regime::Cached
        } else {
            Regime::Disk
        }
    }

    /// Cost of one independent operation of `bytes` at the given regime,
    /// including the contention multiplier for `nprocs` concurrent issuers.
    pub fn independent_cost(&self, bytes: usize, regime: Regime, nprocs: usize) -> VTime {
        let (lat, per_byte) = match regime {
            Regime::Cached => (self.op_latency_cached, self.ind_cached_ns_per_byte),
            Regime::Disk => (self.op_latency_disk, self.ind_disk_ns_per_byte),
        };
        let base_ns = lat.as_nanos() as f64 + bytes as f64 * per_byte;
        let mult = (nprocs as f64).powf(self.contention_beta);
        VTime::from_nanos((base_ns * mult).round() as u64)
    }

    /// Whether a collective transfer whose largest single-rank block is
    /// `max_block` bytes overflows the per-node buffering and falls into
    /// the slow (post-knee) rate.
    pub fn collective_knee(&self, max_block: u64) -> bool {
        max_block > self.node_cache_bytes
    }

    /// Duration of a collective transfer moving `total_bytes` across all
    /// ranks, where the largest single rank's block is `max_block` bytes.
    pub fn collective_cost(&self, total_bytes: u64, max_block: u64, nprocs: usize) -> VTime {
        let (base, per_rank) = if total_bytes < self.coll_small_threshold {
            (self.coll_small_latency, self.coll_small_per_rank)
        } else {
            (self.coll_latency, self.coll_latency_per_rank)
        };
        let startup = base + VTime::from_nanos(per_rank.as_nanos() * nprocs as u64);
        let per_byte = if self.collective_knee(max_block) {
            self.coll_slow_ns_per_byte
        } else {
            self.coll_ns_per_byte / (nprocs as f64).powf(self.coll_bw_gamma)
        };
        startup + VTime::from_nanos((total_bytes as f64 * per_byte).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_model_is_free() {
        let m = DiskModel::instant();
        assert_eq!(m.independent_cost(1 << 20, Regime::Disk, 8).as_nanos(), 0);
        assert_eq!(m.collective_cost(1 << 30, 1 << 30, 8).as_nanos(), 0);
    }

    #[test]
    fn regime_flips_at_the_cache_boundary() {
        let m = DiskModel::paragon_pfs();
        // 4 ranks with 0.9 MB files => 3.6 MB working set < 4 MB cache.
        assert_eq!(m.independent_regime(900 * 1024, 4), Regime::Cached);
        // 4 ranks with 1.5 MB files => 6 MB > 4 MB cache.
        assert_eq!(m.independent_regime(1536 * 1024, 4), Regime::Disk);
    }

    #[test]
    fn small_collectives_use_the_cheap_startup() {
        let m = DiskModel::paragon_pfs();
        let meta = m.collective_cost(8 * 1024, 2 * 1024, 4);
        let data = m.collective_cost(8 * 1024 * 1024, 2 * 1024 * 1024, 4);
        assert!(meta < data);
        assert!(meta < m.coll_latency + VTime::from_millis(50 * 4 + 1));
    }

    #[test]
    fn disk_regime_is_much_slower_on_paragon() {
        let m = DiskModel::paragon_pfs();
        let fast = m.independent_cost(5600, Regime::Cached, 4);
        let slow = m.independent_cost(5600, Regime::Disk, 4);
        assert!(
            slow.as_nanos() > 10 * fast.as_nanos(),
            "the Paragon cache knee must be catastrophic ({fast} vs {slow})"
        );
    }

    #[test]
    fn paragon_contention_fully_serializes() {
        let m = DiskModel::paragon_pfs();
        let c4 = m.independent_cost(100, Regime::Cached, 4);
        let c8 = m.independent_cost(100, Regime::Cached, 8);
        // Twice the ranks, twice the per-op cost: aggregate unchanged.
        let ratio = c8.as_nanos() as f64 / c4.as_nanos() as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn sgi_collective_bandwidth_scales_with_ranks() {
        let m = DiskModel::sgi_challenge_fs();
        let one = m.collective_cost(5_600_000, 5_600_000, 1);
        let eight = m.collective_cost(5_600_000, 700_000, 8);
        assert!(
            eight.as_nanos() * 3 < one.as_nanos(),
            "8 processors should cut collective time at least 3x ({one} vs {eight})"
        );
    }

    #[test]
    fn paragon_node_cache_knee_hits_collectives() {
        let m = DiskModel::paragon_pfs();
        // 11.2 MB over 4 nodes: 2.8 MB per node > 2 MB node cache -> slow.
        let slow = m.collective_cost(11_200_000, 2_800_000, 4);
        // 11.2 MB over 8 nodes: 1.4 MB per node -> fast.
        let fast = m.collective_cost(11_200_000, 1_400_000, 8);
        assert!(
            slow.as_nanos() > 3 * fast.as_nanos(),
            "Table 1 vs 2 anomaly: {slow} vs {fast}"
        );
    }

    #[test]
    fn stripe_counting_spans_boundaries() {
        let m = DiskModel::paragon_pfs();
        let s = m.stripe_bytes;
        assert_eq!(m.stripes_touched(0, 0), 0);
        assert_eq!(m.stripes_touched(0, 1), 1);
        assert_eq!(m.stripes_touched(0, s), 1);
        assert_eq!(m.stripes_touched(0, s + 1), 2);
        // A 2-byte write straddling a boundary touches both stripes.
        assert_eq!(m.stripes_touched(s - 1, 2), 2);
        assert_eq!(m.stripes_touched(3 * s, 2 * s), 2);
    }

    #[test]
    fn collective_startup_grows_with_ranks() {
        let m = DiskModel::paragon_pfs();
        let a = m.collective_cost(0, 0, 4);
        let b = m.collective_cost(0, 0, 8);
        assert!(b > a);
    }
}
