//! Element serialization: the `StreamData` trait and the
//! [`Inserter`]/[`Extractor`] visitors.
//!
//! In pC++ the library overloads `operator<<`/`operator>>` per type, and
//! the *stream-gen* tool writes those operators for user-defined classes.
//! In Rust the same role is played by the [`StreamData`] trait: `insert`
//! decomposes a value into primitive insertions, `extract` mirrors it. The
//! `dstreams-streamgen` crate generates `StreamData` impls from struct
//! declarations; the [`impl_stream_data!`](crate::impl_stream_data) macro
//! derives them inline.
//!
//! ### Checked mode
//!
//! The paper's format stores only per-element byte sizes; pairing each
//! extract with the right insert is the programmer's obligation. Because
//! d/streams are pitched for *debugging* workflows, this implementation
//! adds an optional checked mode that embeds a type tag and count with
//! every primitive insertion and validates them on extraction. It is off
//! by default (matching the paper's overhead profile) and recorded in the
//! file so reader and writer cannot disagree silently.

use crate::error::StreamError;

/// A primitive type that d/streams can move: fixed-width, little-endian.
pub trait Prim: Copy {
    /// Width in bytes.
    const WIDTH: usize;
    /// Human-readable tag (checked mode diagnostics).
    const NAME: &'static str;
    /// Numeric tag stored in checked mode.
    const TAG: u8;
    /// Append the little-endian image to `out`.
    fn put(self, out: &mut Vec<u8>);
    /// Decode from exactly `WIDTH` bytes.
    fn get(b: &[u8]) -> Self;
}

macro_rules! impl_prim {
    ($($t:ty => $tag:expr),* $(,)?) => {$(
        impl Prim for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = stringify!($t);
            const TAG: u8 = $tag;
            fn put(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn get(b: &[u8]) -> Self {
                <$t>::from_le_bytes(b.try_into().expect("exact width"))
            }
        }
    )*};
}

impl_prim! {
    u8 => 1, i8 => 2, u16 => 3, i16 => 4,
    u32 => 5, i32 => 6, u64 => 7, i64 => 8,
    f32 => 9, f64 => 10,
}

/// Name for a checked-mode tag byte (diagnostics).
pub(crate) fn tag_name(tag: u8) -> &'static str {
    match tag {
        1 => "u8",
        2 => "i8",
        3 => "u16",
        4 => "i16",
        5 => "u32",
        6 => "i32",
        7 => "u64",
        8 => "i64",
        9 => "f32",
        10 => "f64",
        _ => "unknown",
    }
}

/// Receives the decomposition of one element during insertion.
///
/// An `Inserter` appends to the per-element chunk owned by the output
/// stream; field order here defines the byte order in the file and must be
/// mirrored exactly by the extraction function.
pub struct Inserter<'a> {
    buf: &'a mut Vec<u8>,
    checked: bool,
}

impl<'a> Inserter<'a> {
    pub(crate) fn new(buf: &'a mut Vec<u8>, checked: bool) -> Self {
        Inserter { buf, checked }
    }

    fn mark<T: Prim>(&mut self, count: usize) {
        if self.checked {
            self.buf.push(T::TAG);
            self.buf.extend_from_slice(&(count as u32).to_le_bytes());
        }
    }

    /// Insert a single primitive value.
    pub fn prim<T: Prim>(&mut self, v: T) {
        self.mark::<T>(1);
        v.put(self.buf);
    }

    /// Insert a slice of primitives with *no* length header — the length
    /// must be recoverable at extract time (e.g. from a previously
    /// inserted count field), exactly like the paper's
    /// `s << array(p.mass, p.numberOfParticles)`.
    pub fn slice<T: Prim>(&mut self, s: &[T]) {
        self.mark::<T>(s.len());
        self.buf.reserve(s.len() * T::WIDTH);
        for &v in s {
            v.put(self.buf);
        }
    }

    /// Insert a length-prefixed vector (u64 count, then elements) — the
    /// Rust-idiomatic self-describing variant.
    pub fn vec<T: Prim>(&mut self, v: &[T]) {
        self.prim(v.len() as u64);
        self.slice(v);
    }

    /// Insert raw bytes (no length header).
    pub fn bytes(&mut self, b: &[u8]) {
        self.mark::<u8>(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Insert a nested `StreamData` value.
    pub fn nested<T: StreamData>(&mut self, v: &T) {
        v.insert(self);
    }

    /// Bytes appended so far (across all insertions into this element).
    pub fn bytes_written(&self) -> usize {
        self.buf.len()
    }
}

/// Supplies the decomposition of one element during extraction.
pub struct Extractor<'a> {
    buf: &'a [u8],
    pos: usize,
    element: usize,
    checked: bool,
}

impl<'a> Extractor<'a> {
    pub(crate) fn new(buf: &'a [u8], pos: usize, element: usize, checked: bool) -> Self {
        Extractor {
            buf,
            pos,
            element,
            checked,
        }
    }

    /// Cursor position (consumed by the stream to persist progress).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StreamError> {
        let available = self.buf.len() - self.pos;
        if n > available {
            return Err(StreamError::ExtractOverrun {
                element: self.element,
                wanted: n,
                available,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn check_mark<T: Prim>(&mut self, count: usize) -> Result<(), StreamError> {
        if !self.checked {
            return Ok(());
        }
        let hdr = self.take(5)?;
        let tag = hdr[0];
        let wrote = u32::from_le_bytes(hdr[1..5].try_into().expect("4 bytes")) as usize;
        if tag != T::TAG {
            return Err(StreamError::TypeMismatch {
                wrote: tag_name(tag),
                read: T::NAME,
            });
        }
        if wrote != count {
            return Err(StreamError::CountMismatch { wrote, read: count });
        }
        Ok(())
    }

    /// Extract a single primitive value.
    pub fn prim<T: Prim>(&mut self) -> Result<T, StreamError> {
        self.check_mark::<T>(1)?;
        Ok(T::get(self.take(T::WIDTH)?))
    }

    /// Extract `count` primitives into `out` (cleared first) — the mirror
    /// of [`Inserter::slice`].
    pub fn slice_into<T: Prim>(
        &mut self,
        out: &mut Vec<T>,
        count: usize,
    ) -> Result<(), StreamError> {
        self.check_mark::<T>(count)?;
        let raw = self.take(count * T::WIDTH)?;
        out.clear();
        out.reserve(count);
        for chunk in raw.chunks_exact(T::WIDTH) {
            out.push(T::get(chunk));
        }
        Ok(())
    }

    /// Extract a length-prefixed vector — the mirror of [`Inserter::vec`].
    pub fn vec<T: Prim>(&mut self) -> Result<Vec<T>, StreamError> {
        let n = self.prim::<u64>()? as usize;
        // Sanity bound: a corrupt length cannot exceed the element's data
        // (checked before any allocation; saturating to survive absurd n).
        let available = self.buf.len() - self.pos;
        if n.saturating_mul(T::WIDTH) > available + 5 {
            return Err(StreamError::ExtractOverrun {
                element: self.element,
                wanted: n.saturating_mul(T::WIDTH),
                available,
            });
        }
        let mut out = Vec::new();
        self.slice_into(&mut out, n)?;
        Ok(out)
    }

    /// Extract `len` raw bytes — the mirror of [`Inserter::bytes`].
    pub fn bytes(&mut self, len: usize) -> Result<Vec<u8>, StreamError> {
        self.check_mark::<u8>(len)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Extract a nested `StreamData` value into `v`.
    pub fn nested<T: StreamData>(&mut self, v: &mut T) -> Result<(), StreamError> {
        v.extract(self)
    }

    /// Bytes remaining in this element's data.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// A type that can be inserted into and extracted from a d/stream.
///
/// `extract` must consume exactly the bytes `insert` produced, in the same
/// order — the file stores per-element sizes, not field boundaries
/// (enable checked mode on the stream while debugging a new impl).
pub trait StreamData {
    /// Decompose `self` into primitive insertions.
    fn insert(&self, ins: &mut Inserter<'_>);
    /// Rebuild `self` from primitive extractions, mirroring `insert`.
    fn extract(&mut self, ext: &mut Extractor<'_>) -> Result<(), StreamError>;
}

/// Serialize one value with the d/stream element encoding, outside any
/// stream (unit tests, manual buffering baselines, local files).
pub fn to_bytes<T: StreamData>(v: &T, checked: bool) -> Vec<u8> {
    let mut buf = Vec::new();
    v.insert(&mut Inserter::new(&mut buf, checked));
    buf
}

/// Inverse of [`to_bytes`]: rebuild `v` from `bytes`, requiring full
/// consumption (leftover bytes indicate an insert/extract mismatch).
pub fn from_bytes<T: StreamData>(
    v: &mut T,
    bytes: &[u8],
    checked: bool,
) -> Result<(), StreamError> {
    let mut ext = Extractor::new(bytes, 0, 0, checked);
    v.extract(&mut ext)?;
    if ext.remaining() != 0 {
        return Err(StreamError::CorruptRecord(format!(
            "{} bytes left after extraction",
            ext.remaining()
        )));
    }
    Ok(())
}

macro_rules! impl_stream_data_prim {
    ($($t:ty),*) => {$(
        impl StreamData for $t {
            fn insert(&self, ins: &mut Inserter<'_>) {
                ins.prim(*self);
            }
            fn extract(&mut self, ext: &mut Extractor<'_>) -> Result<(), StreamError> {
                *self = ext.prim()?;
                Ok(())
            }
        }
    )*};
}

impl_stream_data_prim!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl<T: Prim> StreamData for Vec<T> {
    fn insert(&self, ins: &mut Inserter<'_>) {
        ins.vec(self);
    }
    fn extract(&mut self, ext: &mut Extractor<'_>) -> Result<(), StreamError> {
        *self = ext.vec()?;
        Ok(())
    }
}

impl<T: Prim> StreamData for dstreams_collections::GridRow<T> {
    fn insert(&self, ins: &mut Inserter<'_>) {
        ins.vec(&self.cells);
    }
    fn extract(&mut self, ext: &mut Extractor<'_>) -> Result<(), StreamError> {
        self.cells = ext.vec()?;
        Ok(())
    }
}

impl<T: StreamData, const N: usize> StreamData for [T; N] {
    fn insert(&self, ins: &mut Inserter<'_>) {
        for v in self {
            v.insert(ins);
        }
    }
    fn extract(&mut self, ext: &mut Extractor<'_>) -> Result<(), StreamError> {
        for v in self {
            v.extract(ext)?;
        }
        Ok(())
    }
}

/// Derive a [`StreamData`] impl for a struct from a field recipe.
///
/// Field kinds:
/// * `prim name` — a primitive field;
/// * `slice name: T [len_field]` — a `Vec<T>` whose length equals another
///   (already listed) primitive field, stored *without* a length prefix
///   (paper-style `array(ptr, count)`);
/// * `vec name` — a `Vec<Prim>` stored with a length prefix;
/// * `nested name` — a field that itself implements `StreamData`.
///
/// ```
/// use dstreams_core::{impl_stream_data, StreamData};
///
/// #[derive(Default, Clone, PartialEq, Debug)]
/// struct ParticleList {
///     number_of_particles: i64,
///     mass: Vec<f64>,
///     tags: Vec<u32>,
/// }
///
/// impl_stream_data!(ParticleList {
///     prim number_of_particles,
///     slice mass: f64 [number_of_particles],
///     vec tags,
/// });
/// ```
#[macro_export]
macro_rules! impl_stream_data {
    ($ty:ty { $($body:tt)* }) => {
        impl $crate::StreamData for $ty {
            fn insert(&self, ins: &mut $crate::Inserter<'_>) {
                $crate::impl_stream_data!(@insert self, ins, $($body)*);
            }
            fn extract(
                &mut self,
                ext: &mut $crate::Extractor<'_>,
            ) -> Result<(), $crate::StreamError> {
                $crate::impl_stream_data!(@extract self, ext, $($body)*);
                Ok(())
            }
        }
    };

    // ---- insert arms ----
    (@insert $self:ident, $ins:ident, prim $f:ident, $($rest:tt)*) => {
        $ins.prim($self.$f);
        $crate::impl_stream_data!(@insert $self, $ins, $($rest)*);
    };
    (@insert $self:ident, $ins:ident, slice $f:ident : $t:ty [$len:ident], $($rest:tt)*) => {
        debug_assert_eq!($self.$f.len(), $self.$len as usize,
            concat!("slice field ", stringify!($f), " length must equal ", stringify!($len)));
        $ins.slice::<$t>(&$self.$f);
        $crate::impl_stream_data!(@insert $self, $ins, $($rest)*);
    };
    (@insert $self:ident, $ins:ident, vec $f:ident, $($rest:tt)*) => {
        $ins.vec(&$self.$f);
        $crate::impl_stream_data!(@insert $self, $ins, $($rest)*);
    };
    (@insert $self:ident, $ins:ident, nested $f:ident, $($rest:tt)*) => {
        $ins.nested(&$self.$f);
        $crate::impl_stream_data!(@insert $self, $ins, $($rest)*);
    };
    (@insert $self:ident, $ins:ident,) => {};

    // ---- extract arms ----
    (@extract $self:ident, $ext:ident, prim $f:ident, $($rest:tt)*) => {
        $self.$f = $ext.prim()?;
        $crate::impl_stream_data!(@extract $self, $ext, $($rest)*);
    };
    (@extract $self:ident, $ext:ident, slice $f:ident : $t:ty [$len:ident], $($rest:tt)*) => {
        let count = $self.$len as usize;
        $ext.slice_into::<$t>(&mut $self.$f, count)?;
        $crate::impl_stream_data!(@extract $self, $ext, $($rest)*);
    };
    (@extract $self:ident, $ext:ident, vec $f:ident, $($rest:tt)*) => {
        $self.$f = $ext.vec()?;
        $crate::impl_stream_data!(@extract $self, $ext, $($rest)*);
    };
    (@extract $self:ident, $ext:ident, nested $f:ident, $($rest:tt)*) => {
        $ext.nested(&mut $self.$f)?;
        $crate::impl_stream_data!(@extract $self, $ext, $($rest)*);
    };
    (@extract $self:ident, $ext:ident,) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: StreamData + Default + PartialEq + std::fmt::Debug>(v: &T, checked: bool) {
        let mut buf = Vec::new();
        v.insert(&mut Inserter::new(&mut buf, checked));
        let mut out = T::default();
        let mut ext = Extractor::new(&buf, 0, 0, checked);
        out.extract(&mut ext).unwrap();
        assert_eq!(&out, v);
        assert_eq!(ext.remaining(), 0, "extract must consume everything");
    }

    #[test]
    fn primitives_roundtrip_in_both_modes() {
        for checked in [false, true] {
            roundtrip(&42i32, checked);
            roundtrip(&-7i64, checked);
            roundtrip(&3.5f64, checked);
            roundtrip(&255u8, checked);
            roundtrip(&vec![1.0f32, 2.0, 3.0], checked);
            roundtrip(&[1u16, 2, 3], checked);
        }
    }

    #[test]
    fn unchecked_layout_is_raw_little_endian() {
        let mut buf = Vec::new();
        let mut ins = Inserter::new(&mut buf, false);
        ins.prim(0x0102_0304u32);
        ins.slice(&[1.0f64]);
        assert_eq!(buf.len(), 4 + 8, "no hidden headers in unchecked mode");
        assert_eq!(&buf[..4], &[4, 3, 2, 1]);
    }

    #[test]
    fn checked_mode_adds_tags_and_catches_type_errors() {
        let mut buf = Vec::new();
        Inserter::new(&mut buf, true).prim(1.5f64);
        // Extracting as i64 must be caught.
        let err = Extractor::new(&buf, 0, 0, true).prim::<i64>().unwrap_err();
        assert!(matches!(
            err,
            StreamError::TypeMismatch {
                wrote: "f64",
                read: "i64"
            }
        ));
    }

    #[test]
    fn checked_mode_catches_count_errors() {
        let mut buf = Vec::new();
        Inserter::new(&mut buf, true).slice(&[1u32, 2, 3]);
        let mut out = Vec::new();
        let err = Extractor::new(&buf, 0, 0, true)
            .slice_into::<u32>(&mut out, 2)
            .unwrap_err();
        assert!(matches!(
            err,
            StreamError::CountMismatch { wrote: 3, read: 2 }
        ));
    }

    #[test]
    fn overrun_is_reported_with_element_context() {
        let mut buf = Vec::new();
        Inserter::new(&mut buf, false).prim(7u8);
        let err = Extractor::new(&buf, 0, 42, false)
            .prim::<u64>()
            .unwrap_err();
        assert!(matches!(
            err,
            StreamError::ExtractOverrun {
                element: 42,
                wanted: 8,
                available: 1
            }
        ));
    }

    #[test]
    fn corrupt_vec_length_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        Inserter::new(&mut buf, false).prim(u64::MAX); // absurd length
        let err = Extractor::new(&buf, 0, 0, false).vec::<f64>().unwrap_err();
        assert!(matches!(err, StreamError::ExtractOverrun { .. }));
    }

    #[derive(Default, Clone, PartialEq, Debug)]
    struct Particles {
        n: i64,
        mass: Vec<f64>,
        label: Vec<u8>,
    }
    impl_stream_data!(Particles {
        prim n,
        slice mass: f64 [n],
        vec label,
    });

    #[test]
    fn macro_derived_struct_roundtrips() {
        let p = Particles {
            n: 3,
            mass: vec![1.0, 2.0, 3.0],
            label: b"halo".to_vec(),
        };
        for checked in [false, true] {
            roundtrip(&p, checked);
        }
    }

    #[derive(Default, Clone, PartialEq, Debug)]
    struct Nested {
        id: u32,
        inner: Particles,
    }
    impl_stream_data!(Nested {
        prim id,
        nested inner,
    });

    #[test]
    fn nested_structs_roundtrip() {
        let v = Nested {
            id: 9,
            inner: Particles {
                n: 2,
                mass: vec![0.5, 0.25],
                label: vec![],
            },
        };
        roundtrip(&v, false);
        roundtrip(&v, true);
    }

    /// Recursively structured data (paper: "recursively structured data
    /// types such as trees can be output naturally using recursive
    /// insertion functions").
    #[derive(Default, Clone, PartialEq, Debug)]
    struct Tree {
        value: f64,
        children: Vec<Tree>,
    }

    impl StreamData for Tree {
        fn insert(&self, ins: &mut Inserter<'_>) {
            ins.prim(self.value);
            ins.prim(self.children.len() as u64);
            for c in &self.children {
                c.insert(ins);
            }
        }
        fn extract(&mut self, ext: &mut Extractor<'_>) -> Result<(), StreamError> {
            self.value = ext.prim()?;
            let n = ext.prim::<u64>()? as usize;
            self.children.clear();
            for _ in 0..n {
                let mut child = Tree::default();
                child.extract(ext)?;
                self.children.push(child);
            }
            Ok(())
        }
    }

    #[test]
    fn recursive_tree_roundtrips() {
        let tree = Tree {
            value: 1.0,
            children: vec![
                Tree {
                    value: 2.0,
                    children: vec![Tree {
                        value: 4.0,
                        children: vec![],
                    }],
                },
                Tree {
                    value: 3.0,
                    children: vec![],
                },
            ],
        };
        roundtrip(&tree, false);
        roundtrip(&tree, true);
    }
}
