//! The append-stream segment namespace: file naming and the manifest.
//!
//! An unbounded append stream is a sequence of *segments*, each an
//! ordinary format-v2 d/stream file named [`segment_file_name`]. The
//! open segment carries [`crate::FileHeader::FLAG_ACTIVE_APPEND`] until
//! the producer seals it; sealed segments are immutable snapshots that
//! tail readers consume and retention eventually compacts away.
//!
//! The source of truth tying the segments together is the *manifest*, a
//! small side file named [`manifest_file_name`] that the producer
//! rewrites (root rank) at every state transition: which segments are
//! sealed (with their sizes), which one is open, how far retention has
//! compacted, and where every attached reader's consumption cursor
//! stands. The encoding is a self-contained little-endian binary format
//! so offline tools (`dsdump --tail`) can summarize a stream without a
//! machine.

use crate::error::StreamError;

/// Magic bytes opening every stream manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"DSMF1\0\0\0";
/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// File name of segment `index` of append stream `stream`.
///
/// The zero-padded index keeps lexicographic listings in segment order.
pub fn segment_file_name(stream: &str, index: u64) -> String {
    format!("{stream}.seg{index:06}")
}

/// File name of the manifest of append stream `stream`.
pub fn manifest_file_name(stream: &str) -> String {
    format!("{stream}.stream")
}

/// One sealed segment the manifest still tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Segment index (monotonic from 0 over the stream's lifetime).
    pub index: u64,
    /// Records committed into the segment.
    pub records: u64,
    /// Payload bytes committed into the segment (its file size).
    pub bytes: u64,
}

/// One tail reader the manifest tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReaderEntry {
    /// Reader id (unique per stream).
    pub id: u32,
    /// Next segment index this reader will consume; everything below it
    /// (and at or above its attach point) has been consumed.
    pub next_segment: u64,
    /// Whether the reader detached; a detached cursor no longer holds
    /// back retention.
    pub detached: bool,
}

/// The manifest of one append stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamManifest {
    /// Every segment index below this has been compacted away.
    pub compacted_before: u64,
    /// The currently open (active-append) segment, if any.
    pub open_segment: Option<u64>,
    /// Sealed, not-yet-compacted segments in ascending index order.
    pub sealed: Vec<SegmentEntry>,
    /// Attached (and detached) tail readers in attach order.
    pub readers: Vec<ReaderEntry>,
}

impl StreamManifest {
    /// One past the highest sealed segment index (the exclusive upper
    /// bound of what a tail reader may consume right now).
    pub fn sealed_end(&self) -> u64 {
        self.sealed
            .last()
            .map_or(self.compacted_before, |s| s.index + 1)
    }

    /// Index the next created segment will take.
    pub fn next_segment_index(&self) -> u64 {
        match self.open_segment {
            Some(open) => open + 1,
            None => self.sealed_end(),
        }
    }

    /// The lowest consumption cursor over *live* (attached, not
    /// detached) readers — retention must never compact a segment at or
    /// above it. `None` when no live reader is attached.
    pub fn live_floor(&self) -> Option<u64> {
        self.readers
            .iter()
            .filter(|r| !r.detached)
            .map(|r| r.next_segment)
            .min()
    }

    /// Total payload bytes across the sealed, not-yet-compacted segments.
    pub fn sealed_bytes(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes).sum()
    }

    /// The tracked reader with the given id.
    pub fn reader(&self, id: u32) -> Option<&ReaderEntry> {
        self.readers.iter().find(|r| r.id == id)
    }

    /// Mutable access to the tracked reader with the given id.
    pub fn reader_mut(&mut self, id: u32) -> Option<&mut ReaderEntry> {
        self.readers.iter_mut().find(|r| r.id == id)
    }

    /// Encode to the on-file binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(
            MANIFEST_MAGIC.len()
                + 4
                + 8
                + 8
                + 4
                + self.sealed.len() * 24
                + 4
                + self.readers.len() * 13,
        );
        v.extend_from_slice(&MANIFEST_MAGIC);
        v.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        v.extend_from_slice(&self.compacted_before.to_le_bytes());
        v.extend_from_slice(&self.open_segment.unwrap_or(u64::MAX).to_le_bytes());
        v.extend_from_slice(&(self.sealed.len() as u32).to_le_bytes());
        for s in &self.sealed {
            v.extend_from_slice(&s.index.to_le_bytes());
            v.extend_from_slice(&s.records.to_le_bytes());
            v.extend_from_slice(&s.bytes.to_le_bytes());
        }
        v.extend_from_slice(&(self.readers.len() as u32).to_le_bytes());
        for r in &self.readers {
            v.extend_from_slice(&r.id.to_le_bytes());
            v.extend_from_slice(&r.next_segment.to_le_bytes());
            v.push(u8::from(r.detached));
        }
        v
    }

    /// Decode the on-file binary form.
    pub fn decode(b: &[u8]) -> Result<StreamManifest, StreamError> {
        let corrupt = |why: &str| StreamError::CorruptRecord(format!("stream manifest: {why}"));
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], StreamError> {
            let end = pos.checked_add(n).ok_or_else(|| corrupt("overflow"))?;
            let s = b.get(pos..end).ok_or_else(|| corrupt("truncated"))?;
            pos = end;
            Ok(s)
        };
        if take(MANIFEST_MAGIC.len())? != MANIFEST_MAGIC {
            return Err(StreamError::BadMagic);
        }
        let version = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
        if version != MANIFEST_VERSION {
            return Err(StreamError::UnsupportedVersion(version));
        }
        let compacted_before = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let open_raw = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let open_segment = (open_raw != u64::MAX).then_some(open_raw);
        let n_sealed = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
        let mut sealed = Vec::with_capacity(n_sealed.min(1 << 16));
        for _ in 0..n_sealed {
            sealed.push(SegmentEntry {
                index: u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")),
                records: u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")),
                bytes: u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")),
            });
        }
        let n_readers = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
        let mut readers = Vec::with_capacity(n_readers.min(1 << 16));
        for _ in 0..n_readers {
            readers.push(ReaderEntry {
                id: u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")),
                next_segment: u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")),
                detached: take(1)?[0] != 0,
            });
        }
        if pos != b.len() {
            return Err(corrupt("trailing bytes"));
        }
        if sealed.windows(2).any(|w| w[0].index >= w[1].index) {
            return Err(corrupt("sealed segments out of order"));
        }
        Ok(StreamManifest {
            compacted_before,
            open_segment,
            sealed,
            readers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamManifest {
        StreamManifest {
            compacted_before: 2,
            open_segment: Some(5),
            sealed: vec![
                SegmentEntry {
                    index: 2,
                    records: 3,
                    bytes: 100,
                },
                SegmentEntry {
                    index: 3,
                    records: 1,
                    bytes: 40,
                },
                SegmentEntry {
                    index: 4,
                    records: 2,
                    bytes: 60,
                },
            ],
            readers: vec![
                ReaderEntry {
                    id: 1,
                    next_segment: 4,
                    detached: false,
                },
                ReaderEntry {
                    id: 2,
                    next_segment: 3,
                    detached: true,
                },
            ],
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        assert_eq!(StreamManifest::decode(&m.encode()).unwrap(), m);
        let empty = StreamManifest::default();
        assert_eq!(StreamManifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn derived_quantities() {
        let m = sample();
        assert_eq!(m.sealed_end(), 5);
        assert_eq!(m.next_segment_index(), 6);
        // Only reader 1 is live; detached reader 2's lower cursor is ignored.
        assert_eq!(m.live_floor(), Some(4));
        assert_eq!(m.sealed_bytes(), 200);
        assert_eq!(m.reader(2).unwrap().next_segment, 3);
        let empty = StreamManifest::default();
        assert_eq!(empty.sealed_end(), 0);
        assert_eq!(empty.next_segment_index(), 0);
        assert_eq!(empty.live_floor(), None);
    }

    #[test]
    fn decode_rejects_damage() {
        let m = sample().encode();
        assert!(StreamManifest::decode(&m[..m.len() - 1]).is_err());
        assert!(matches!(
            StreamManifest::decode(b"not a manifest at all"),
            Err(StreamError::BadMagic)
        ));
        let mut wrong_version = m.clone();
        wrong_version[8] = 9;
        assert!(matches!(
            StreamManifest::decode(&wrong_version),
            Err(StreamError::UnsupportedVersion(9))
        ));
        let mut trailing = m;
        trailing.push(0);
        assert!(StreamManifest::decode(&trailing).is_err());
    }

    #[test]
    fn names_sort_in_segment_order() {
        assert_eq!(segment_file_name("log", 7), "log.seg000007");
        assert!(segment_file_name("log", 9) < segment_file_name("log", 10));
        assert_eq!(manifest_file_name("log"), "log.stream");
    }
}
