//! Replicated-local I/O (paper §4.2).
//!
//! Besides collection I/O, pC++ supports C-stdio-style I/O on *local* data
//! that is replicated on every node: "the pC++ compiler automatically
//! transforms programs to insure that local data is output and input by
//! only one node. For input, the data is broadcast to the rest of the
//! nodes after it is read." [`LocalFile`] provides exactly those
//! semantics as library calls: every rank calls the same operations with
//! the same (replicated) values; physically, only rank 0 touches the file.

use dstreams_machine::NodeCtx;
use dstreams_pfs::{FileHandle, OpenMode, Pfs};

use crate::error::StreamError;

/// A file accessed with replicated-local semantics.
pub struct LocalFile<'a> {
    ctx: &'a NodeCtx,
    fh: FileHandle,
    /// Logical cursor, identical on every rank.
    cursor: u64,
}

impl<'a> LocalFile<'a> {
    /// Open (creating if needed). Collective.
    pub fn create(ctx: &'a NodeCtx, pfs: &Pfs, name: &str) -> Result<Self, StreamError> {
        let fh = pfs.open(ctx.is_root(), name, OpenMode::Create)?;
        ctx.barrier()?;
        Ok(LocalFile { ctx, fh, cursor: 0 })
    }

    /// Open an existing file for reading. Collective.
    pub fn open(ctx: &'a NodeCtx, pfs: &Pfs, name: &str) -> Result<Self, StreamError> {
        let fh = pfs.open(false, name, OpenMode::Read)?;
        ctx.barrier()?;
        Ok(LocalFile { ctx, fh, cursor: 0 })
    }

    /// Current logical position.
    pub fn pos(&self) -> u64 {
        self.cursor
    }

    /// Move the logical position (every rank must seek identically).
    pub fn seek(&mut self, pos: u64) {
        self.cursor = pos;
    }

    /// File size.
    pub fn len(&self) -> u64 {
        self.fh.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.fh.is_empty()
    }

    /// Write replicated data: every rank passes the same bytes; rank 0
    /// performs the single physical write.
    pub fn write(&mut self, data: &[u8]) -> Result<(), StreamError> {
        if self.ctx.is_root() {
            self.fh.write_at(self.ctx, self.cursor, data)?;
        }
        self.cursor += data.len() as u64;
        // Publish before anyone reads; also equalizes virtual clocks, as
        // the single writer made everyone wait in reality too.
        self.ctx.barrier()?;
        Ok(())
    }

    /// Read `len` bytes: rank 0 performs the physical read, the result is
    /// broadcast to all ranks. A failed physical read is broadcast too, so
    /// every rank returns the error instead of rank 0 abandoning the
    /// collective (which would deadlock the others).
    pub fn read(&mut self, len: usize) -> Result<Vec<u8>, StreamError> {
        let blob = if self.ctx.is_root() {
            let mut buf = vec![0u8; len + 1];
            buf[0] = 0; // status: ok
            match self.fh.read_at(self.ctx, self.cursor, &mut buf[1..]) {
                Ok(()) => buf,
                Err(_) => vec![1u8], // status: failed
            }
        } else {
            Vec::new()
        };
        let blob = self.ctx.broadcast(0, blob)?;
        match blob.first() {
            Some(0) if blob.len() == len + 1 => {
                self.cursor += len as u64;
                Ok(blob[1..].to_vec())
            }
            _ => Err(StreamError::CorruptRecord(format!(
                "replicated read of {len} bytes at {} failed",
                self.cursor
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_machine::{Machine, MachineConfig};
    use dstreams_pfs::Pfs;

    #[test]
    fn replicated_write_happens_once_and_reads_broadcast() {
        let pfs = Pfs::in_memory(4);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(4), move |ctx| {
            let mut f = LocalFile::create(ctx, &p, "params").unwrap();
            // Every rank "writes" the same replicated configuration.
            f.write(b"nbody=1000;dt=0.01").unwrap();
            assert_eq!(f.pos(), 18);

            let mut g = LocalFile::open(ctx, &p, "params").unwrap();
            let data = g.read(18).unwrap();
            assert_eq!(&data, b"nbody=1000;dt=0.01");
        })
        .unwrap();
        // Physically only rank 0 wrote: exactly one independent write op.
        // (Reads: one independent op by rank 0 for the read.)
        assert_eq!(pfs.file_size("params").unwrap(), 18);
        assert_eq!(pfs.stats().independent_ops, 2);
    }

    #[test]
    fn seek_and_partial_reads_work() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let mut f = LocalFile::create(ctx, &p, "s").unwrap();
            f.write(b"0123456789").unwrap();
            f.seek(4);
            assert_eq!(f.pos(), 4);
            let mut r = LocalFile::open(ctx, &p, "s").unwrap();
            r.seek(4);
            assert_eq!(r.read(3).unwrap(), b"456");
            assert_eq!(r.pos(), 7);
        })
        .unwrap();
    }

    #[test]
    fn read_past_end_fails_on_every_rank() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let mut f = LocalFile::create(ctx, &p, "short").unwrap();
            f.write(b"ab").unwrap();
            let mut r = LocalFile::open(ctx, &p, "short").unwrap();
            assert!(r.read(10).is_err());
        })
        .unwrap();
    }
}
