//! Output d/streams.
//!
//! An [`OStream`] is the write side of the d/stream abstraction: data from
//! distributed collections is *inserted* into the stream's buffer and later
//! *written* to the file in one (or a few) parallel file-system operations.
//!
//! The state machine of the paper's Figure 2 is enforced at run time:
//! `open → (insert⁺ → write)* → close`, with the interleaving constraint
//! that all inserts between two writes cover collections of the same shape.

use dstreams_collections::Collection;
use dstreams_collections::Layout;
use dstreams_machine::{MemoryModel, NodeCtx, SharedBuffer};
use dstreams_pfs::{ChunkSum, FileHandle, IoHandle, OpenMode, Pfs};
use dstreams_redist::DistView;
use dstreams_trace::{EventKind, StreamPhase};

use crate::data::{Inserter, StreamData};
use crate::error::StreamError;
use crate::format::{encode_sizes, FileHeader, MetaMode, RecordHeader, RecordSeal, FORMAT_VERSION};

/// How an output stream chooses its metadata strategy (paper §4.1 step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaPolicy {
    /// Gather to node 0 below `small_threshold` elements, parallel above —
    /// the adaptive strategy the paper describes.
    Auto {
        /// Collections smaller than this use [`MetaMode::Gathered`].
        small_threshold: usize,
    },
    /// Always use the given mode (ablation benches use this).
    Force(MetaMode),
}

impl Default for MetaPolicy {
    fn default() -> Self {
        // Crossover measured by benches/ablation_metadata.rs on the
        // Paragon model: gathering beats the extra parallel operation up
        // to ~8 K elements (64 KB of size info); stay a bit below it.
        MetaPolicy::Auto {
            small_threshold: 8192,
        }
    }
}

/// Options for opening streams.
#[derive(Debug, Clone, Default)]
pub struct StreamOptions {
    /// Embed type tags with every insertion and validate them on
    /// extraction (debugging aid; adds 5 bytes per primitive insertion).
    pub checked: bool,
    /// Metadata strategy.
    pub meta_policy: MetaPolicy,
    /// Shared-memory single-buffer variant (paper §4: on multiprocessors
    /// "the per-node d/stream buffers can be reduced to one"): ranks pack
    /// their blocks into one shared staging buffer in parallel and a
    /// single processor issues one plain write. Only legal on machines
    /// with `MemoryModel::Shared`; the file image is identical to the
    /// per-node variant, so any reader works.
    pub smp_single_buffer: bool,
}

/// A split-collective write in flight: the record's bytes are already
/// on the file (coordination and physical transfer happen at
/// [`OStream::write_begin`]), but the parallel operation's service cost
/// is still elapsing in background virtual time. Pass it back to
/// [`OStream::write_end`] to retire the flush; several may be
/// outstanding at once — they complete in submission order on each
/// rank's serial async queue.
#[derive(Debug)]
pub struct PendingWrite {
    /// Metadata collective handle ([`MetaMode::Parallel`] records only).
    meta: Option<IoHandle>,
    /// Data collective handle.
    data: IoHandle,
    /// Commit-seal write handle (root only; absent when a peer's
    /// power-cut fault left the record intentionally unsealed).
    seal: Option<IoHandle>,
}

impl PendingWrite {
    /// Virtual time at which the whole flush (data and, on the root,
    /// the commit seal) completes.
    pub fn completion(&self) -> dstreams_machine::VTime {
        let mut t = self.data.completion();
        if let Some(s) = &self.seal {
            t = t.max(s.completion());
        }
        t
    }

    /// True when a power-cut fault on some rank left this record
    /// unsealed (recovery will truncate it away).
    pub fn crashed(&self) -> bool {
        self.data.peer_crashed()
    }
}

/// An output d/stream bound to one file and one collection layout.
pub struct OStream<'a> {
    ctx: &'a NodeCtx,
    layout: Layout,
    fh: FileHandle,
    opts: StreamOptions,
    /// Per-local-slot accumulated bytes for the current interleave group.
    group: Vec<Vec<u8>>,
    /// Shared staging buffer (single-buffer SMP variant only).
    scratch: Option<SharedBuffer>,
    n_inserts: u32,
    records_written: usize,
    /// Whether the on-file format version has been validated for appending.
    version_checked: bool,
    /// Split-collective writes begun but not yet retired by `write_end`.
    in_flight: usize,
    /// Whether the lazily-written file header declares active-append
    /// state (an open append-stream segment; cleared by
    /// [`OStream::seal_segment`]).
    active_append: bool,
}

impl<'a> OStream<'a> {
    /// Open an output stream on `name` for collections placed by `layout`.
    ///
    /// Collective: every rank must call it. If the file is empty, the
    /// d/stream file header is written; otherwise records append after the
    /// existing content (this is how several streams with differing
    /// layouts share one file, paper §4.1).
    pub fn create(
        ctx: &'a NodeCtx,
        pfs: &Pfs,
        layout: &Layout,
        name: &str,
    ) -> Result<Self, StreamError> {
        Self::create_with(ctx, pfs, layout, name, StreamOptions::default())
    }

    /// [`OStream::create`] with explicit options.
    pub fn create_with(
        ctx: &'a NodeCtx,
        pfs: &Pfs,
        layout: &Layout,
        name: &str,
        opts: StreamOptions,
    ) -> Result<Self, StreamError> {
        if layout.nprocs() != ctx.nprocs() {
            return Err(StreamError::LayoutMismatch(format!(
                "layout built for {} procs, machine has {}",
                layout.nprocs(),
                ctx.nprocs()
            )));
        }
        if opts.smp_single_buffer && ctx.memory_model() != MemoryModel::Shared {
            return Err(StreamError::violation(
                "open",
                "single-buffer mode requires a shared-memory machine",
            ));
        }
        let fh = pfs.open(ctx.is_root(), name, OpenMode::Create)?;
        let scratch = opts
            .smp_single_buffer
            .then(|| pfs.scratch(&format!("__ostream_smp__{name}")));
        // Open is collective; the file header itself is written lazily
        // with the first record's metadata operation, so `open` costs no
        // parallel I/O (matching the paper's oStream constructor, which
        // only sets up state).
        ctx.barrier()?;
        let local_count = layout.local_count(ctx.rank());
        Ok(OStream {
            ctx,
            layout: layout.clone(),
            fh,
            opts,
            group: (0..local_count).map(|_| Vec::new()).collect(),
            scratch,
            n_inserts: 0,
            records_written: 0,
            version_checked: false,
            in_flight: 0,
            active_append: false,
        })
    }

    /// [`OStream::create`] for an *open append-stream segment*: the
    /// lazily-written file header carries
    /// [`FileHeader::FLAG_ACTIVE_APPEND`], declaring that a producer may
    /// still be appending. While the flag is set, `IStream::open`
    /// refuses the file and `recovery_scan` refuses to truncate it;
    /// [`OStream::seal_segment`] clears it, turning the segment into a
    /// consistent snapshot boundary tail readers may consume. Collective.
    pub fn create_append(
        ctx: &'a NodeCtx,
        pfs: &Pfs,
        layout: &Layout,
        name: &str,
    ) -> Result<Self, StreamError> {
        Self::create_append_with(ctx, pfs, layout, name, StreamOptions::default())
    }

    /// [`OStream::create_append`] with explicit options.
    pub fn create_append_with(
        ctx: &'a NodeCtx,
        pfs: &Pfs,
        layout: &Layout,
        name: &str,
        opts: StreamOptions,
    ) -> Result<Self, StreamError> {
        let mut s = Self::create_with(ctx, pfs, layout, name, opts)?;
        s.active_append = true;
        Ok(s)
    }

    /// Whether this stream writes an active-append (open segment) header.
    pub fn is_active_append(&self) -> bool {
        self.active_append
    }

    /// Seal the segment: clear [`FileHeader::FLAG_ACTIVE_APPEND`] from
    /// the on-file header with an in-place flags write, making the file
    /// an ordinary sealed d/stream that readers and recovery may touch.
    ///
    /// Every record must already be durable: inserts pending without a
    /// `write` or split-collective writes still in flight are state
    /// violations. A segment that never wrote a record gets its (sealed)
    /// file header here, so even an empty segment closes into a valid,
    /// readable stream. If a peer crashed during the segment's writes,
    /// the flag is left set — the torn segment stays quarantined for
    /// recovery instead of being published to tail readers. Collective.
    pub fn seal_segment(&mut self) -> Result<(), StreamError> {
        if !self.active_append {
            return Err(StreamError::violation(
                "seal_segment",
                "the stream was not created in append mode",
            ));
        }
        if self.n_inserts > 0 {
            return Err(StreamError::violation(
                "seal_segment",
                format!("{} inserts pending without a write()", self.n_inserts),
            ));
        }
        if self.in_flight > 0 {
            return Err(StreamError::violation(
                "seal_segment",
                format!(
                    "{} split-collective writes in flight without write_end()",
                    self.in_flight
                ),
            ));
        }
        self.ctx.barrier()?;
        if self.fh.take_peer_crashed() {
            // A crashed peer may have left a torn record: keep the
            // active-append flag so nothing downstream trusts the file.
            return Ok(());
        }
        if self.ctx.is_root() {
            let flags = if self.opts.checked {
                FileHeader::FLAG_CHECKED
            } else {
                0
            };
            if self.fh.is_empty() {
                let header = FileHeader {
                    version: FORMAT_VERSION,
                    flags,
                }
                .encode();
                self.fh.write_at(self.ctx, 0, &header)?;
            } else {
                self.fh
                    .write_at(self.ctx, FileHeader::FLAGS_OFFSET, &flags.to_le_bytes())?;
            }
        }
        self.ctx.barrier()?;
        self.active_append = false;
        Ok(())
    }

    /// The stream's layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Inserts pending in the current interleave group.
    pub fn pending_inserts(&self) -> u32 {
        self.n_inserts
    }

    /// Records written so far through this stream.
    pub fn records_written(&self) -> usize {
        self.records_written
    }

    /// Insert an entire collection: the Rust spelling of `s << g`.
    pub fn insert_collection<T: StreamData>(
        &mut self,
        c: &Collection<T>,
    ) -> Result<(), StreamError> {
        self.insert_with(c, |e, ins| e.insert(ins))
    }

    /// Insert a projection of each element: the Rust spelling of
    /// `s << g.numberOfParticles`. The closure decomposes whatever part of
    /// the element should be inserted.
    pub fn insert_with<T>(
        &mut self,
        c: &Collection<T>,
        f: impl Fn(&T, &mut Inserter<'_>),
    ) -> Result<(), StreamError> {
        if c.layout() != &self.layout {
            if c.len() != self.layout.len() {
                // Distinguish the interleave-shape error the paper calls
                // out from a general placement mismatch.
                return Err(StreamError::InterleaveMismatch {
                    expected: self.layout.len(),
                    got: c.len(),
                });
            }
            return Err(StreamError::LayoutMismatch(
                "inserted collection is not aligned with the stream".into(),
            ));
        }
        let mut added = 0usize;
        for (slot, (_gid, elem)) in c.iter().enumerate() {
            let buf = &mut self.group[slot];
            let before = buf.len();
            let mut ins = Inserter::new(buf, self.opts.checked);
            f(elem, &mut ins);
            added += buf.len() - before;
        }
        // This serialization pass is the single data copy of the paper's
        // pointer-list design (there the copy happens at write()).
        self.ctx.charge_memcpy(added);
        self.n_inserts += 1;
        Ok(())
    }

    /// Stage the current interleave group for emission: everything a
    /// write record needs short of the file operations themselves —
    /// the metadata exchange, the packing pass, and the lazily-written
    /// file header. Shared verbatim by the blocking [`OStream::write`]
    /// and the split-collective [`OStream::write_begin`] so both produce
    /// identical file bytes.
    #[allow(clippy::type_complexity)]
    fn stage_record(
        &mut self,
    ) -> Result<(MetaMode, RecordHeader, Vec<u8>, Vec<u64>, Vec<u8>), StreamError> {
        if self.n_inserts == 0 {
            return Err(StreamError::EmptyWrite);
        }
        let local_sizes: Vec<u64> = self.group.iter().map(|b| b.len() as u64).collect();
        let local_bytes: u64 = local_sizes.iter().sum();
        let data_len = self.ctx.all_reduce(local_bytes, |a, b| a + b)?;

        // Pack this rank's data block: local elements in slot order, insert
        // chunks already interleaved per element.
        let pack = crate::phase::span(self.ctx, StreamPhase::Pack);
        let mut data = Vec::with_capacity(local_bytes as usize);
        for chunk in &self.group {
            data.extend_from_slice(chunk);
        }
        self.ctx.charge_memcpy(data.len());
        drop(pack);

        let (mode, header, file_prefix) = self.stage_header(self.n_inserts, data_len)?;
        Ok((mode, header, file_prefix, local_sizes, data))
    }

    /// The layout- and file-level half of staging a record: pick the
    /// metadata mode, build the record header, and (for a still-empty
    /// file) the root's d/stream file-header prefix. Shared by the
    /// insert-buffer path ([`OStream::stage_record`]) and the zero-copy
    /// view path ([`OStream::write_view`]).
    fn stage_header(
        &mut self,
        n_inserts: u32,
        data_len: u64,
    ) -> Result<(MetaMode, RecordHeader, Vec<u8>), StreamError> {
        let n = self.layout.len();
        let mode = match self.opts.meta_policy {
            MetaPolicy::Auto { small_threshold } => {
                if n < small_threshold {
                    MetaMode::Gathered
                } else {
                    MetaMode::Parallel
                }
            }
            MetaPolicy::Force(m) => m,
        };

        let header = RecordHeader {
            n_elements: n as u64,
            n_inserts,
            flags: if self.opts.checked {
                RecordHeader::FLAG_CHECKED
            } else {
                0
            },
            meta_mode: mode,
            layout: self.layout.descriptor(),
            data_len,
        };

        // If the file is still empty (consistent across ranks thanks to
        // the barrier at the head of every collective PFS op), the root
        // prefixes the d/stream file header to its metadata block.
        self.ctx.barrier()?;
        if !self.fh.is_empty() && !self.version_checked {
            self.check_appendable()?;
        }
        self.version_checked = true;
        let file_prefix = if self.fh.is_empty() && self.ctx.is_root() {
            let mut flags = if self.opts.checked {
                FileHeader::FLAG_CHECKED
            } else {
                0
            };
            if self.active_append {
                flags |= FileHeader::FLAG_ACTIVE_APPEND;
            }
            FileHeader {
                version: FORMAT_VERSION,
                flags,
            }
            .encode()
        } else {
            Vec::new()
        };
        Ok((mode, header, file_prefix))
    }

    /// Reset the interleave group after a record has been emitted (or
    /// submitted — `write_begin` copies the data out, so the buffers are
    /// immediately reusable).
    fn finish_record(&mut self) {
        for chunk in &mut self.group {
            chunk.clear();
        }
        self.n_inserts = 0;
        self.records_written += 1;
    }

    /// Flush the current interleave group to the file as one write record
    /// (the d/stream `write` primitive). Collective.
    pub fn write(&mut self) -> Result<(), StreamError> {
        let (mode, header, file_prefix, local_sizes, data) = self.stage_record()?;
        if let Some(scratch) = self.scratch.clone() {
            self.write_smp(&scratch, &header, file_prefix, &local_sizes, &data)?;
        } else {
            self.write_per_node(mode, &header, file_prefix, &local_sizes, &data)?;
        }
        self.finish_record();
        Ok(())
    }

    /// Emit one record whose data comes straight from a [`DistView`] —
    /// the zero-copy re-export path. The view's per-slot bytes are the
    /// already-serialized insert group of some earlier record (typically
    /// [`crate::IStream::view`] on a record just read), so no `insert`
    /// pass and no re-serialization happen; when the view's segments tile
    /// their buffer contiguously, even the pack copy is skipped and the
    /// borrowed buffer goes to the I/O layer directly. `n_inserts` must
    /// be the insert count the viewed bytes were built with (readers
    /// enforce extract/insert parity per record). Collective.
    pub fn write_view(&mut self, view: &DistView<'_>, n_inserts: u32) -> Result<(), StreamError> {
        if self.n_inserts != 0 {
            return Err(StreamError::violation(
                "write_view",
                "the interleave group already holds inserted data — write it first",
            ));
        }
        if n_inserts == 0 {
            return Err(StreamError::EmptyWrite);
        }
        let local_ids = self.layout.local_elements(self.ctx.rank());
        if view.len() != local_ids.len()
            || (0..view.len()).any(|slot| view.id(slot) != local_ids[slot])
        {
            return Err(StreamError::LayoutMismatch(
                "view elements are not this rank's elements in slot order".into(),
            ));
        }
        let local_sizes = view.sizes();
        let local_bytes: u64 = local_sizes.iter().sum();
        let data_len = self.ctx.all_reduce(local_bytes, |a, b| a + b)?;
        let (mode, header, file_prefix) = self.stage_header(n_inserts, data_len)?;

        let gathered;
        let data: &[u8] = match view.as_contiguous() {
            Some(bytes) => bytes,
            None => {
                let pack = crate::phase::span(self.ctx, StreamPhase::Pack);
                let mut buf = Vec::with_capacity(local_bytes as usize);
                for (_id, bytes) in view.iter() {
                    buf.extend_from_slice(bytes);
                }
                self.ctx.charge_memcpy(buf.len());
                drop(pack);
                gathered = buf;
                &gathered
            }
        };
        if let Some(scratch) = self.scratch.clone() {
            self.write_smp(&scratch, &header, file_prefix, &local_sizes, data)?;
        } else {
            self.write_per_node(mode, &header, file_prefix, &local_sizes, data)?;
        }
        self.records_written += 1;
        Ok(())
    }

    /// Begin a split-collective write of the current interleave group:
    /// the write-behind half of the asynchronous pipeline. Coordination
    /// and the physical byte transfer happen here — on return the record
    /// (and, barring faults, its commit seal) is on the file and the
    /// group buffers are reusable — but the parallel operation's service
    /// cost elapses in background virtual time. Retire the returned
    /// [`PendingWrite`] with [`OStream::write_end`]; compute performed in
    /// between is hidden behind the flush. Several writes may be in
    /// flight at once (they complete in submission order); `close`
    /// refuses while any are outstanding.
    ///
    /// A power-cut fault injected on any rank's transfer leaves the
    /// record unsealed (the crash stays detectable by recovery) and
    /// surfaces `RankCrashed` from the crashed rank's `write_end`.
    ///
    /// Collective. Not available in single-buffer SMP mode, whose single
    /// plain write has no collective cost to defer.
    pub fn write_begin(&mut self) -> Result<PendingWrite, StreamError> {
        if self.scratch.is_some() {
            return Err(StreamError::violation(
                "write_begin",
                "split-collective writes require per-node buffers \
                 (single-buffer SMP mode is synchronous-only)",
            ));
        }
        let (mode, header, file_prefix, local_sizes, data) = self.stage_record()?;
        self.ctx.emit_with(|| EventKind::PhaseBegin {
            phase: StreamPhase::WriteBehind,
        });
        let prefix_len = file_prefix.len();
        let pending = match mode {
            MetaMode::Gathered => {
                let meta_span = crate::phase::span(self.ctx, StreamPhase::Metadata);
                let gathered = self.ctx.gather(0, encode_sizes(&local_sizes))?;
                let (block, meta_sum) = if let Some(tables) = gathered {
                    let mut b = file_prefix;
                    b.extend_from_slice(&header.encode());
                    for t in &tables {
                        b.extend_from_slice(t);
                    }
                    let meta_sum = ChunkSum::of(&b[prefix_len..]);
                    b.extend_from_slice(&data);
                    (b, meta_sum)
                } else {
                    (data.clone(), ChunkSum::EMPTY)
                };
                drop(meta_span);
                let data_span = crate::phase::span(self.ctx, StreamPhase::Data);
                let (_, digests, h) = self.fh.write_ordered_begin_summed(self.ctx, &block)?;
                drop(data_span);
                let seal = if self.ctx.is_root() && !h.peer_crashed() {
                    let mut digest = meta_sum.then(ChunkSum::of(&data));
                    for d in &digests[1..] {
                        digest = digest.then(*d);
                    }
                    Some(self.seal_record_begin(&header, digest)?)
                } else {
                    None
                };
                PendingWrite {
                    meta: None,
                    data: h,
                    seal,
                }
            }
            MetaMode::Parallel => {
                let mut meta = file_prefix;
                if self.ctx.is_root() {
                    meta.extend_from_slice(&header.encode());
                }
                meta.extend_from_slice(&encode_sizes(&local_sizes));
                let st = crate::phase::span(self.ctx, StreamPhase::SizeTable);
                let (_, meta_digests, mh) = self.fh.write_ordered_begin_summed(self.ctx, &meta)?;
                drop(st);
                let data_span = crate::phase::span(self.ctx, StreamPhase::Data);
                let (_, data_digests, dh) = self.fh.write_ordered_begin_summed(self.ctx, &data)?;
                drop(data_span);
                let crashed = mh.peer_crashed() || dh.peer_crashed();
                let seal = if self.ctx.is_root() && !crashed {
                    let mut digest = ChunkSum::of(&meta[prefix_len..]);
                    for d in &meta_digests[1..] {
                        digest = digest.then(*d);
                    }
                    for d in &data_digests {
                        digest = digest.then(*d);
                    }
                    Some(self.seal_record_begin(&header, digest)?)
                } else {
                    None
                };
                PendingWrite {
                    meta: Some(mh),
                    data: dh,
                    seal,
                }
            }
        };
        self.finish_record();
        self.in_flight += 1;
        Ok(pending)
    }

    /// Retire a split-collective write: synchronize this rank's clock
    /// forward to the flush's completion virtual time (free when the
    /// compute performed since `write_begin` already covered it) and
    /// surface any deferred fault outcome. Handles complete in
    /// submission order, so retiring the oldest pending write first
    /// never over-waits.
    pub fn write_end(&mut self, pending: PendingWrite) -> Result<(), StreamError> {
        let PendingWrite { meta, data, seal } = pending;
        let mut first_err: Option<dstreams_pfs::PfsError> = None;
        if let Some(h) = meta {
            if let Err(e) = h.wait(self.ctx) {
                first_err.get_or_insert(e);
            }
        }
        if let Err(e) = data.wait(self.ctx) {
            first_err.get_or_insert(e);
        }
        if let Some(h) = seal {
            if let Err(e) = h.wait(self.ctx) {
                first_err.get_or_insert(e);
            }
        }
        self.in_flight -= 1;
        self.ctx.emit_with(|| EventKind::PhaseEnd {
            phase: StreamPhase::WriteBehind,
        });
        match first_err {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Split-collective writes begun but not yet retired.
    pub fn writes_in_flight(&self) -> usize {
        self.in_flight
    }

    /// Validate that an existing file can legally take version-2 records:
    /// sealed and unsealed records must not mix, so appending to a
    /// version-1 file is refused. Collective (root reads, verdict is
    /// broadcast).
    fn check_appendable(&self) -> Result<(), StreamError> {
        let verdict = if self.ctx.is_root() {
            let mut head = vec![0u8; FileHeader::LEN];
            match self.fh.read_at(self.ctx, 0, &mut head) {
                Ok(()) => match FileHeader::decode(&head) {
                    Ok(h) if h.version == FORMAT_VERSION => vec![0],
                    Ok(h) => {
                        let mut v = vec![2];
                        v.extend_from_slice(&h.version.to_le_bytes());
                        v
                    }
                    Err(StreamError::UnsupportedVersion(v)) => {
                        let mut b = vec![2];
                        b.extend_from_slice(&v.to_le_bytes());
                        b
                    }
                    Err(_) => vec![1],
                },
                Err(_) => vec![1],
            }
        } else {
            Vec::new()
        };
        let verdict = self.ctx.broadcast(0, verdict)?;
        match verdict.first() {
            Some(0) => Ok(()),
            Some(2) if verdict.len() == 5 => Err(StreamError::UnsupportedVersion(
                u32::from_le_bytes(verdict[1..5].try_into().expect("4 bytes")),
            )),
            _ => Err(StreamError::BadMagic),
        }
    }

    /// Append the commit seal for the record just written (root only): the
    /// record becomes durable — a crash before this point leaves a
    /// detectable torn tail, never a silently short record.
    fn seal_record(&self, header: &RecordHeader, digest: ChunkSum) -> Result<(), StreamError> {
        debug_assert!(self.ctx.is_root());
        let record_len = RecordHeader::LEN as u64 + header.n_elements * 8 + header.data_len;
        let seal = RecordSeal {
            record_len,
            checksum: digest.hash(),
        }
        .encode();
        let base = self.fh.len();
        self.fh.write_at(self.ctx, base, &seal)?;
        Ok(())
    }

    /// Nonblocking [`OStream::seal_record`]: the seal bytes land now —
    /// so the next record's append base is already correct — with the
    /// service cost deferred behind the data collective's on this rank's
    /// serial async queue. The seal therefore *completes* strictly after
    /// the data it certifies.
    fn seal_record_begin(
        &self,
        header: &RecordHeader,
        digest: ChunkSum,
    ) -> Result<IoHandle, StreamError> {
        debug_assert!(self.ctx.is_root());
        let record_len = RecordHeader::LEN as u64 + header.n_elements * 8 + header.data_len;
        let seal = RecordSeal {
            record_len,
            checksum: digest.hash(),
        }
        .encode();
        let base = self.fh.len();
        Ok(self.fh.write_at_begin(self.ctx, base, &seal)?)
    }

    /// Per-node-buffer emission (distributed-memory machines, and the
    /// default everywhere): collective parallel operations.
    fn write_per_node(
        &mut self,
        mode: MetaMode,
        header: &RecordHeader,
        file_prefix: Vec<u8>,
        local_sizes: &[u64],
        data: &[u8],
    ) -> Result<(), StreamError> {
        let prefix_len = file_prefix.len();
        match mode {
            MetaMode::Gathered => {
                // Size info travels to node 0 and is written at the head
                // of its per-node buffer: a single parallel operation.
                let meta = crate::phase::span(self.ctx, StreamPhase::Metadata);
                let gathered = self.ctx.gather(0, encode_sizes(local_sizes))?;
                let (block, meta_sum) = if let Some(tables) = gathered {
                    let mut b = file_prefix;
                    b.extend_from_slice(&header.encode());
                    for t in &tables {
                        b.extend_from_slice(t);
                    }
                    // Digest of the record's metadata span (header +
                    // size tables, excluding any file prefix).
                    let meta_sum = ChunkSum::of(&b[prefix_len..]);
                    b.extend_from_slice(data);
                    (b, meta_sum)
                } else {
                    (data.to_vec(), ChunkSum::EMPTY)
                };
                drop(meta);
                let data_span = crate::phase::span(self.ctx, StreamPhase::Data);
                let (_, digests) = self.fh.write_ordered_summed(self.ctx, &block)?;
                drop(data_span);
                // Under collective buffering a peer's power-cut completes
                // the collective on the survivors (the aggregation layer's
                // closing crash-flag all-reduce); the record must then stay
                // unsealed so recovery truncates it away.
                if self.fh.take_peer_crashed() {
                    return Ok(());
                }
                if self.ctx.is_root() {
                    // Record digest in file order: metadata, then rank 0's
                    // data (hashed locally — its collective block includes
                    // the metadata), then the other ranks' blocks.
                    let mut digest = meta_sum.then(ChunkSum::of(data));
                    for d in &digests[1..] {
                        digest = digest.then(*d);
                    }
                    self.seal_record(header, digest)?;
                }
            }
            MetaMode::Parallel => {
                // Two parallel operations: metadata (record header from
                // the root, size-table slices from all nodes — one
                // node-order write yields header-then-sizes), then data.
                let mut meta = file_prefix;
                if self.ctx.is_root() {
                    meta.extend_from_slice(&header.encode());
                }
                meta.extend_from_slice(&encode_sizes(local_sizes));
                let st = crate::phase::span(self.ctx, StreamPhase::SizeTable);
                let (_, meta_digests) = self.fh.write_ordered_summed(self.ctx, &meta)?;
                drop(st);
                let data_span = crate::phase::span(self.ctx, StreamPhase::Data);
                let (_, data_digests) = self.fh.write_ordered_summed(self.ctx, data)?;
                drop(data_span);
                // Sticky across both collectives of this record; see the
                // gathered arm.
                if self.fh.take_peer_crashed() {
                    return Ok(());
                }
                if self.ctx.is_root() {
                    let mut digest = ChunkSum::of(&meta[prefix_len..]);
                    for d in &meta_digests[1..] {
                        digest = digest.then(*d);
                    }
                    for d in &data_digests {
                        digest = digest.then(*d);
                    }
                    self.seal_record(header, digest)?;
                }
            }
        }
        Ok(())
    }

    /// Single-buffer emission (shared-memory machines): every rank packs
    /// its block into one shared staging buffer in parallel, then rank 0
    /// issues a single plain write of the whole record. Produces exactly
    /// the same file bytes as [`OStream::write_per_node`].
    fn write_smp(
        &mut self,
        scratch: &SharedBuffer,
        header: &RecordHeader,
        file_prefix: Vec<u8>,
        local_sizes: &[u64],
        data: &[u8],
    ) -> Result<(), StreamError> {
        let ctx = self.ctx;
        let prefix_len = file_prefix.len();
        let meta_span = crate::phase::span(ctx, StreamPhase::Metadata);
        // Everyone learns every rank's data length (for offsets).
        let framed = ctx.all_gather((data.len() as u64).to_le_bytes().to_vec())?;
        let data_lens: Vec<u64> = framed
            .iter()
            .map(|b| {
                Ok(u64::from_le_bytes(b.as_slice().try_into().map_err(
                    |_| StreamError::CorruptRecord("smp write: bad length frame".into()),
                )?))
            })
            .collect::<Result<_, StreamError>>()?;
        // Size tables travel to rank 0, which assembles the metadata and
        // reserves the whole record in the shared buffer.
        let gathered = ctx.gather(0, encode_sizes(local_sizes))?;
        let meta_len = if let Some(tables) = gathered {
            let mut meta = file_prefix;
            meta.extend_from_slice(&header.encode());
            for t in &tables {
                meta.extend_from_slice(t);
            }
            let total: u64 = data_lens.iter().sum();
            scratch.clear();
            scratch.reserve(meta.len() + total as usize);
            scratch.write_at(0, &meta);
            ctx.charge_memcpy(meta.len());
            (meta.len() as u64).to_le_bytes().to_vec()
        } else {
            Vec::new()
        };
        // The broadcast doubles as the "buffer is reserved" signal.
        let meta_len = ctx.broadcast(0, meta_len)?;
        let meta_len =
            u64::from_le_bytes(meta_len.as_slice().try_into().map_err(|_| {
                StreamError::CorruptRecord("smp write: bad metadata length".into())
            })?);
        drop(meta_span);
        let _data_span = crate::phase::span(ctx, StreamPhase::Data);
        let my_off = meta_len + data_lens[..ctx.rank()].iter().sum::<u64>();
        scratch.write_at(my_off as usize, data);
        ctx.charge_memcpy(data.len());
        // All packing done before the single write.
        ctx.barrier()?;
        if ctx.is_root() {
            let mut image = scratch.to_vec();
            // Seal folded into the same single write: the record and its
            // commit seal land atomically, preserving the one-write-per-
            // record property of this mode. (A torn tail can still cut the
            // image short, which is exactly what the seal detects.)
            let digest = ChunkSum::of(&image[prefix_len..]);
            image.extend_from_slice(
                &RecordSeal {
                    record_len: (image.len() - prefix_len) as u64,
                    checksum: digest.hash(),
                }
                .encode(),
            );
            // The lone writer pays for streaming the whole image through
            // one processor — the reason this variant loses to parallel
            // per-node writes at large sizes.
            ctx.charge_memcpy(image.len());
            let base = self.fh.len();
            self.fh.write_at(ctx, base, &image)?;
        }
        ctx.barrier()?;
        Ok(())
    }

    /// The d/stream `close` primitive. Errors if inserts are pending
    /// without a `write` (in pC++ the destructor closes implicitly; Rust
    /// surfaces the missing-write bug instead of dropping data).
    pub fn close(self) -> Result<(), StreamError> {
        if self.n_inserts > 0 {
            return Err(StreamError::violation(
                "close",
                format!("{} inserts pending without a write()", self.n_inserts),
            ));
        }
        if self.in_flight > 0 {
            return Err(StreamError::violation(
                "close",
                format!(
                    "{} split-collective writes in flight without write_end()",
                    self.in_flight
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_collections::DistKind;
    use dstreams_machine::{Machine, MachineConfig};

    fn with_machine(np: usize, f: impl Fn(&NodeCtx, &Pfs) + Sync) {
        let pfs = Pfs::in_memory(np);
        Machine::run(MachineConfig::functional(np), move |ctx| f(ctx, &pfs)).unwrap();
    }

    #[test]
    fn file_header_is_written_once_with_the_first_record() {
        let pfs = Pfs::in_memory(2);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(2), move |ctx| {
            let layout = Layout::dense(4, 2, DistKind::Block).unwrap();
            // Creating (and closing) streams alone writes nothing.
            let s = OStream::create(ctx, &p, &layout, "f").unwrap();
            s.close().unwrap();
            assert_eq!(p.file_size("f").unwrap(), 0);
            // Two streams, two records: exactly one file header.
            let c = Collection::new(ctx, layout.clone(), |g| g as u8).unwrap();
            let mut s1 = OStream::create(ctx, &p, &layout, "f").unwrap();
            let mut s2 = OStream::create(ctx, &p, &layout, "f").unwrap();
            s1.insert_collection(&c).unwrap();
            s1.write().unwrap();
            s2.insert_collection(&c).unwrap();
            s2.write().unwrap();
            s1.close().unwrap();
            s2.close().unwrap();
        })
        .unwrap();
        use crate::format::RecordHeader;
        // header + sizes + data + commit seal
        let record = (RecordHeader::LEN + 4 * 8 + 4 + RecordSeal::LEN) as u64;
        assert_eq!(
            pfs.file_size("f").unwrap(),
            FileHeader::LEN as u64 + 2 * record
        );
    }

    #[test]
    fn write_without_insert_is_rejected() {
        with_machine(2, |ctx, pfs| {
            let layout = Layout::dense(4, 2, DistKind::Block).unwrap();
            let mut s = OStream::create(ctx, pfs, &layout, "f").unwrap();
            assert!(matches!(s.write(), Err(StreamError::EmptyWrite)));
        });
    }

    #[test]
    fn close_with_pending_inserts_is_rejected() {
        with_machine(2, |ctx, pfs| {
            let layout = Layout::dense(4, 2, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u64).unwrap();
            let mut s = OStream::create(ctx, pfs, &layout, "f").unwrap();
            s.insert_collection(&c).unwrap();
            assert!(matches!(
                s.close(),
                Err(StreamError::StateViolation { op: "close", .. })
            ));
        });
    }

    #[test]
    fn misaligned_collection_is_rejected() {
        with_machine(2, |ctx, pfs| {
            let layout = Layout::dense(4, 2, DistKind::Block).unwrap();
            let other = Layout::dense(4, 2, DistKind::Cyclic).unwrap();
            let wrong_len = Layout::dense(6, 2, DistKind::Block).unwrap();
            let c_other = Collection::new(ctx, other, |g| g as u64).unwrap();
            let c_len = Collection::new(ctx, wrong_len, |g| g as u64).unwrap();
            let mut s = OStream::create(ctx, pfs, &layout, "f").unwrap();
            assert!(matches!(
                s.insert_collection(&c_other),
                Err(StreamError::LayoutMismatch(_))
            ));
            assert!(matches!(
                s.insert_collection(&c_len),
                Err(StreamError::InterleaveMismatch {
                    expected: 4,
                    got: 6
                })
            ));
        });
    }

    #[test]
    fn gathered_and_parallel_modes_produce_identical_bytes() {
        let run = |mode: MetaMode| {
            let pfs = Pfs::in_memory(3);
            let p = pfs.clone();
            Machine::run(MachineConfig::functional(3), move |ctx| {
                let layout = Layout::dense(7, 3, DistKind::Cyclic).unwrap();
                let c = Collection::new(ctx, layout.clone(), |g| vec![g as u8; g + 1]).unwrap();
                let opts = StreamOptions {
                    checked: false,
                    meta_policy: MetaPolicy::Force(mode),
                    ..Default::default()
                };
                let mut s = OStream::create_with(ctx, &p, &layout, "f", opts).unwrap();
                s.insert_collection(&c).unwrap();
                s.write().unwrap();
                s.close().unwrap();
            })
            .unwrap();
            // Snapshot the file image.
            let size = pfs.file_size("f").unwrap() as usize;
            let p2 = pfs.clone();
            let bytes = Machine::run(MachineConfig::functional(1), move |ctx| {
                let fh = p2.open(false, "f", OpenMode::Read).unwrap();
                let mut buf = vec![0u8; size];
                fh.read_at(ctx, 0, &mut buf).unwrap();
                buf
            })
            .unwrap();
            bytes[0].clone()
        };
        let a = run(MetaMode::Gathered);
        let b = run(MetaMode::Parallel);
        // Identical except the meta-mode field in the record header (and
        // therefore the seal checksum that covers it): mask both.
        assert_eq!(a.len(), b.len());
        let mm_off = FileHeader::LEN + 4 + 8 + 4 + 4; // header + magic + n_elems + n_inserts + flags
        let ck_off = a.len() - 8; // seal checksum is the final 8 bytes
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        for buf in [&mut a2, &mut b2] {
            buf[mm_off..mm_off + 4].fill(0);
            buf[ck_off..].fill(0);
        }
        assert_eq!(
            a2, b2,
            "both metadata strategies must lay out bytes identically"
        );
    }

    #[test]
    fn multiple_writes_append_records() {
        with_machine(2, |ctx, pfs| {
            let layout = Layout::dense(4, 2, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u32).unwrap();
            let mut s = OStream::create(ctx, pfs, &layout, "multi").unwrap();
            for _ in 0..3 {
                s.insert_collection(&c).unwrap();
                s.write().unwrap();
            }
            assert_eq!(s.records_written(), 3);
            s.close().unwrap();
        });
    }

    #[test]
    fn interleaved_inserts_group_per_element() {
        // Two inserts before one write: each element's chunks must be
        // adjacent in the file (checked byte-exactly for 1 rank).
        let pfs = Pfs::in_memory(1);
        let p = pfs.clone();
        Machine::run(MachineConfig::functional(1), move |ctx| {
            let layout = Layout::dense(2, 1, DistKind::Block).unwrap();
            let c = Collection::new(ctx, layout.clone(), |g| g as u8).unwrap();
            let mut s = OStream::create(ctx, &p, &layout, "il").unwrap();
            // Insert the element value, then a second field 10+value.
            s.insert_with(&c, |e, ins| ins.prim(*e)).unwrap();
            s.insert_with(&c, |e, ins| ins.prim(*e + 10)).unwrap();
            s.write().unwrap();
            s.close().unwrap();
        })
        .unwrap();
        let p2 = pfs.clone();
        let bytes = Machine::run(MachineConfig::functional(1), move |ctx| {
            let fh = p2.open(false, "il", OpenMode::Read).unwrap();
            let size = fh.len() as usize;
            let mut buf = vec![0u8; size];
            fh.read_at(ctx, 0, &mut buf).unwrap();
            buf
        })
        .unwrap();
        // Data region sits just before the seal: e0 chunks (0, 10) then
        // e1 (1, 11).
        let end = bytes[0].len() - RecordSeal::LEN;
        let data = &bytes[0][end - 4..end];
        assert_eq!(data, &[0, 10, 1, 11]);
    }
}
