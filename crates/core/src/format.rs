//! The self-describing d/stream file format.
//!
//! Layout of a d/stream file (paper §4.1: "information about the
//! distribution … and about the size of the data to be output from each
//! element needs to be written to the file prior to the actual data"):
//!
//! ```text
//! FileHeader                     -- once, at offset 0
//! WriteRecord*                   -- one per write()
//!
//! WriteRecord :=
//!   RecordHeader                 -- fixed 80 bytes
//!   SizeTable                    -- u64 per element, in writer node order
//!   Data                         -- element chunks, in writer node order;
//!                                -- within an element, insert chunks in
//!                                -- insert order (interleaving)
//!   RecordSeal                   -- version 2: 20-byte commit seal
//! ```
//!
//! Everything a reader needs — writer processor count, distribution,
//! alignment, element count, per-element sizes — is in the file, which is
//! why `read()` takes no metadata from the programmer and works across
//! changes of processor count or distribution.
//!
//! **Version history.** Version 1 ends each record at its data. Version 2
//! appends a [`RecordSeal`] — magic, the record's length and a checksum
//! over header ++ size table ++ data — written *after* the data lands, so
//! a crash mid-record leaves a detectably unsealed tail instead of a
//! silently short file. Version-1 files remain readable (no seals, no
//! verification); version-2 writers refuse to append to version-1 files.

use dstreams_collections::{Layout, LayoutDescriptor};

use crate::error::StreamError;

/// Magic bytes opening every d/stream file.
pub const FILE_MAGIC: [u8; 8] = *b"DSTRM1\0\0";
/// Current format version (the one new files are written with).
pub const FORMAT_VERSION: u32 = 2;
/// Oldest format version this library still reads.
pub const MIN_SUPPORTED_VERSION: u32 = 1;
/// Magic bytes opening every write record.
pub const RECORD_MAGIC: [u8; 4] = *b"DREC";
/// Magic bytes opening every record seal (version 2).
pub const SEAL_MAGIC: [u8; 4] = *b"DSEA";

/// Fixed-size file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHeader {
    /// Format version.
    pub version: u32,
    /// Flag bits (bit 0: checked mode).
    pub flags: u32,
}

impl FileHeader {
    /// Serialized length.
    pub const LEN: usize = 16;

    /// Flag bit: stream was written in checked mode.
    pub const FLAG_CHECKED: u32 = 1;

    /// Flag bit: the file is an *open* append-stream segment. Set when
    /// the segment is created and cleared by the segment seal, so a set
    /// bit means a producer may still be appending: tail readers must
    /// not open the file and `recovery_scan` must not truncate it.
    pub const FLAG_ACTIVE_APPEND: u32 = 2;

    /// Byte offset of the `flags` word inside the encoded header (the
    /// segment seal clears [`Self::FLAG_ACTIVE_APPEND`] with a 4-byte
    /// in-place write at this offset).
    pub const FLAGS_OFFSET: u64 = 12;

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(Self::LEN);
        v.extend_from_slice(&FILE_MAGIC);
        v.extend_from_slice(&self.version.to_le_bytes());
        v.extend_from_slice(&self.flags.to_le_bytes());
        v
    }

    /// Decode and validate.
    pub fn decode(b: &[u8]) -> Result<FileHeader, StreamError> {
        if b.len() < Self::LEN || b[..8] != FILE_MAGIC {
            return Err(StreamError::BadMagic);
        }
        let version = u32::from_le_bytes(b[8..12].try_into().expect("4 bytes"));
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(StreamError::UnsupportedVersion(version));
        }
        let flags = u32::from_le_bytes(b[12..16].try_into().expect("4 bytes"));
        Ok(FileHeader { version, flags })
    }

    /// Whether checked mode was on.
    pub fn checked(&self) -> bool {
        self.flags & Self::FLAG_CHECKED != 0
    }

    /// Whether records in this file carry commit seals (version ≥ 2).
    pub fn sealed(&self) -> bool {
        self.version >= 2
    }

    /// Whether the file declares active-append state (an unsealed
    /// append-stream segment a producer may still be writing).
    pub fn active_append(&self) -> bool {
        self.flags & Self::FLAG_ACTIVE_APPEND != 0
    }
}

/// The commit seal closing every version-2 write record.
///
/// Written *after* the record's data has landed, it is the record's
/// durability point: a record whose seal is present, well-formed and
/// whose checksum matches is committed; anything after the last sealed
/// record is a torn tail that a crash left behind, which
/// [`crate::recovery_scan`] finds and `dsdump --recover` truncates away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSeal {
    /// Length of the sealed span: record header + size table + data.
    pub record_len: u64,
    /// [`dstreams_pfs::ChunkSum`] hash over the sealed span.
    pub checksum: u64,
}

impl RecordSeal {
    /// Serialized length.
    pub const LEN: usize = 4 + 8 + 8;

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(Self::LEN);
        v.extend_from_slice(&SEAL_MAGIC);
        v.extend_from_slice(&self.record_len.to_le_bytes());
        v.extend_from_slice(&self.checksum.to_le_bytes());
        v
    }

    /// Decode and validate.
    pub fn decode(b: &[u8]) -> Result<RecordSeal, StreamError> {
        if b.len() < Self::LEN {
            return Err(StreamError::CorruptRecord(format!(
                "record seal truncated: {} of {} bytes",
                b.len(),
                Self::LEN
            )));
        }
        if b[..4] != SEAL_MAGIC {
            return Err(StreamError::CorruptRecord(
                "record seal magic missing".into(),
            ));
        }
        Ok(RecordSeal {
            record_len: u64::from_le_bytes(b[4..12].try_into().expect("8 bytes")),
            checksum: u64::from_le_bytes(b[12..20].try_into().expect("8 bytes")),
        })
    }
}

/// How the metadata (size table) of a record was produced — an ablation
/// knob exposed because the paper discusses both strategies (§4.1 step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaMode {
    /// Size information written from all nodes concurrently in a separate
    /// parallel operation (large collections).
    Parallel,
    /// Size information gathered to node 0 and written at the head of its
    /// per-node buffer (small collections, saves the latency of the extra
    /// parallel operation).
    Gathered,
}

impl MetaMode {
    fn code(self) -> u32 {
        match self {
            MetaMode::Parallel => 0,
            MetaMode::Gathered => 1,
        }
    }

    fn from_code(c: u32) -> Option<MetaMode> {
        match c {
            0 => Some(MetaMode::Parallel),
            1 => Some(MetaMode::Gathered),
            _ => None,
        }
    }
}

/// Fixed-size header of one write record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordHeader {
    /// Number of elements in the collection(s) of this record.
    pub n_elements: u64,
    /// Number of inserts in the interleave group.
    pub n_inserts: u32,
    /// Flag bits (bit 0: checked mode).
    pub flags: u32,
    /// Metadata strategy used (informational; the byte layout is the same).
    pub meta_mode: MetaMode,
    /// Placement of the writing collection.
    pub layout: LayoutDescriptor,
    /// Total bytes in the data region (sum of the size table).
    pub data_len: u64,
}

impl RecordHeader {
    /// Serialized length.
    pub const LEN: usize = 4 + 8 + 4 + 4 + 4 + LayoutDescriptor::WIRE_LEN + 8;

    /// Flag bit: record written in checked mode.
    pub const FLAG_CHECKED: u32 = 1;

    /// Encode to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(Self::LEN);
        v.extend_from_slice(&RECORD_MAGIC);
        v.extend_from_slice(&self.n_elements.to_le_bytes());
        v.extend_from_slice(&self.n_inserts.to_le_bytes());
        v.extend_from_slice(&self.flags.to_le_bytes());
        v.extend_from_slice(&self.meta_mode.code().to_le_bytes());
        v.extend_from_slice(&self.layout.encode());
        v.extend_from_slice(&self.data_len.to_le_bytes());
        debug_assert_eq!(v.len(), Self::LEN);
        v
    }

    /// Decode and validate.
    pub fn decode(b: &[u8]) -> Result<RecordHeader, StreamError> {
        if b.len() < Self::LEN {
            return Err(StreamError::CorruptRecord(format!(
                "record header truncated: {} of {} bytes",
                b.len(),
                Self::LEN
            )));
        }
        if b[..4] != RECORD_MAGIC {
            return Err(StreamError::CorruptRecord(
                "record magic missing (file position desynchronized?)".into(),
            ));
        }
        let u64_at = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        let u32_at = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().expect("4 bytes"));
        let n_elements = u64_at(4);
        let n_inserts = u32_at(12);
        let flags = u32_at(16);
        let meta_mode = MetaMode::from_code(u32_at(20))
            .ok_or_else(|| StreamError::CorruptRecord("unknown metadata mode".into()))?;
        let layout = LayoutDescriptor::decode(&b[24..24 + LayoutDescriptor::WIRE_LEN])
            .ok_or_else(|| StreamError::CorruptRecord("bad layout descriptor".into()))?;
        let data_len = u64_at(24 + LayoutDescriptor::WIRE_LEN);
        Ok(RecordHeader {
            n_elements,
            n_inserts,
            flags,
            meta_mode,
            layout,
            data_len,
        })
    }

    /// Whether checked mode was on.
    pub fn checked(&self) -> bool {
        self.flags & Self::FLAG_CHECKED != 0
    }
}

/// Encode a size table (u64 per element, writer node order).
pub fn encode_sizes(sizes: &[u64]) -> Vec<u8> {
    let mut v = Vec::with_capacity(sizes.len() * 8);
    for s in sizes {
        v.extend_from_slice(&s.to_le_bytes());
    }
    v
}

/// Decode a size table of exactly `n` entries.
pub fn decode_sizes(b: &[u8], n: usize) -> Result<Vec<u64>, StreamError> {
    if b.len() != n * 8 {
        return Err(StreamError::CorruptRecord(format!(
            "size table is {} bytes, expected {}",
            b.len(),
            n * 8
        )));
    }
    Ok(b.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

/// One element's placement in a record's data region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileEntry {
    /// Global element index.
    pub global_id: usize,
    /// Offset within the data region.
    pub offset: u64,
    /// Chunk size in bytes (sum over the interleave group's inserts).
    pub size: u64,
}

/// Map a size table (writer node order) back to per-element file
/// positions, using the writer's layout recovered from the record header.
/// Entries are returned in **file order**.
pub fn build_file_map(
    writer_layout: &Layout,
    sizes_node_order: &[u64],
) -> Result<Vec<FileEntry>, StreamError> {
    if sizes_node_order.len() != writer_layout.len() {
        return Err(StreamError::CorruptRecord(format!(
            "size table has {} entries for {} elements",
            sizes_node_order.len(),
            writer_layout.len()
        )));
    }
    let mut entries = Vec::with_capacity(writer_layout.len());
    let mut offset = 0u64;
    let mut idx = 0usize;
    for w in 0..writer_layout.nprocs() {
        for global_id in writer_layout.local_elements(w) {
            let size = sizes_node_order[idx];
            entries.push(FileEntry {
                global_id,
                offset,
                size,
            });
            offset += size;
            idx += 1;
        }
    }
    debug_assert_eq!(idx, sizes_node_order.len());
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstreams_collections::DistKind;

    #[test]
    fn file_header_roundtrips() {
        let h = FileHeader {
            version: FORMAT_VERSION,
            flags: FileHeader::FLAG_CHECKED,
        };
        let b = h.encode();
        assert_eq!(b.len(), FileHeader::LEN);
        let h2 = FileHeader::decode(&b).unwrap();
        assert_eq!(h, h2);
        assert!(h2.checked());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut b = FileHeader {
            version: FORMAT_VERSION,
            flags: 0,
        }
        .encode();
        b[0] = b'X';
        assert!(matches!(FileHeader::decode(&b), Err(StreamError::BadMagic)));

        let mut b = FileHeader {
            version: FORMAT_VERSION,
            flags: 0,
        }
        .encode();
        b[8] = 99;
        assert!(matches!(
            FileHeader::decode(&b),
            Err(StreamError::UnsupportedVersion(99))
        ));
        assert!(matches!(
            FileHeader::decode(&[0u8; 4]),
            Err(StreamError::BadMagic)
        ));
    }

    #[test]
    fn version_1_files_are_still_readable() {
        let mut b = FileHeader {
            version: FORMAT_VERSION,
            flags: 0,
        }
        .encode();
        b[8..12].copy_from_slice(&1u32.to_le_bytes());
        let h = FileHeader::decode(&b).unwrap();
        assert_eq!(h.version, 1);
        assert!(!h.sealed());
        assert!(FileHeader {
            version: FORMAT_VERSION,
            flags: 0
        }
        .sealed());
    }

    #[test]
    fn record_seal_roundtrips_and_rejects_damage() {
        let s = RecordSeal {
            record_len: 12345,
            checksum: 0xdead_beef_cafe_f00d,
        };
        let b = s.encode();
        assert_eq!(b.len(), RecordSeal::LEN);
        assert_eq!(RecordSeal::decode(&b).unwrap(), s);
        assert!(RecordSeal::decode(&b[..10]).is_err());
        let mut bad = b.clone();
        bad[0] = b'X';
        assert!(RecordSeal::decode(&bad).is_err());
    }

    fn sample_record() -> RecordHeader {
        let layout = Layout::dense(12, 4, DistKind::Cyclic).unwrap();
        RecordHeader {
            n_elements: 12,
            n_inserts: 3,
            flags: 0,
            meta_mode: MetaMode::Gathered,
            layout: layout.descriptor(),
            data_len: 4096,
        }
    }

    #[test]
    fn record_header_roundtrips() {
        let r = sample_record();
        let b = r.encode();
        assert_eq!(b.len(), RecordHeader::LEN);
        let r2 = RecordHeader::decode(&b).unwrap();
        assert_eq!(r, r2);
        assert!(!r2.checked());
    }

    #[test]
    fn truncated_or_desynced_record_is_rejected() {
        let b = sample_record().encode();
        assert!(matches!(
            RecordHeader::decode(&b[..10]),
            Err(StreamError::CorruptRecord(_))
        ));
        let mut bad = b.clone();
        bad[0] = b'Z';
        assert!(matches!(
            RecordHeader::decode(&bad),
            Err(StreamError::CorruptRecord(_))
        ));
    }

    #[test]
    fn size_table_roundtrips_and_validates_length() {
        let sizes = vec![0u64, 17, 5600, u64::from(u32::MAX) + 7];
        let b = encode_sizes(&sizes);
        assert_eq!(decode_sizes(&b, 4).unwrap(), sizes);
        assert!(decode_sizes(&b, 5).is_err());
        assert!(decode_sizes(&b[1..], 4).is_err());
    }

    #[test]
    fn file_map_follows_node_order() {
        // 5 elements CYCLIC over 2 ranks: rank 0 owns 0,2,4; rank 1 owns 1,3.
        let layout = Layout::dense(5, 2, DistKind::Cyclic).unwrap();
        let sizes = vec![10, 20, 30, 40, 50]; // node order: e0,e2,e4,e1,e3
        let map = build_file_map(&layout, &sizes).unwrap();
        let ids: Vec<usize> = map.iter().map(|e| e.global_id).collect();
        assert_eq!(ids, vec![0, 2, 4, 1, 3]);
        let offsets: Vec<u64> = map.iter().map(|e| e.offset).collect();
        assert_eq!(offsets, vec![0, 10, 30, 60, 100]);
        assert_eq!(map[4].size, 50);
    }

    #[test]
    fn file_map_rejects_wrong_size_count() {
        let layout = Layout::dense(5, 2, DistKind::Block).unwrap();
        assert!(build_file_map(&layout, &[1, 2, 3]).is_err());
    }
}
